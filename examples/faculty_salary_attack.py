"""Faculty salary attack: the paper's Section-VI experiment at full scale.

This example rebuilds the paper's experimental setting (a university releases
k-anonymized performance reviews with employee names; an insider fuses the
release with faculty web pages to estimate salaries) on the synthetic faculty
population, and quantifies how much the web channel is worth to the adversary
at several anonymization levels.

Run with::

    python examples/faculty_salary_attack.py
"""

from __future__ import annotations

from repro import MDAVAnonymizer
from repro.data import corpus_for_faculty, generate_faculty
from repro.data.faculty import FacultyConfig
from repro.fusion import AttackConfig, WebFusionAttack
from repro.metrics import (
    breach_rate,
    dissimilarity_after_fusion,
    dissimilarity_before_fusion,
    mean_absolute_error,
    rank_correlation,
)


def main() -> None:
    population = generate_faculty(FacultyConfig(count=60, seed=13))
    private = population.private
    corpus = corpus_for_faculty(population)
    print(f"Faculty population: {private.num_rows} records")
    print(f"Simulated web corpus: {corpus.size} pages "
          f"(coverage of the faculty: {corpus.coverage_of([str(n) for n in private.identifier_column()]):.0%})")
    print()

    config = AttackConfig(
        release_inputs=(
            "research_score",
            "teaching_score",
            "service_score",
            "years_of_service",
        ),
        auxiliary_inputs=("property_holdings", "employment_seniority"),
        output_name="salary",
        output_universe=population.assumed_salary_range,
        input_ranges={
            "research_score": (1.0, 10.0),
            "teaching_score": (1.0, 10.0),
            "service_score": (1.0, 10.0),
            "years_of_service": (0.0, 40.0),
            "employment_seniority": (0.0, 45.0),
            "property_holdings": (100_000.0, 900_000.0),
        },
        engine="mamdani",
    )

    truth = private.sensitive_vector()
    print(f"{'k':>3} {'P o P_before':>14} {'P o P_after':>14} {'gain':>12} "
          f"{'MAE($)':>10} {'breach@10%':>10} {'rank corr':>9}")
    for k in (2, 4, 8, 12, 16):
        anonymization = MDAVAnonymizer().anonymize(private, k)
        release = anonymization.release
        attack = WebFusionAttack(corpus, config)
        result = attack.run(release)

        before = dissimilarity_before_fusion(
            private, release, population.assumed_salary_range
        )
        after = dissimilarity_after_fusion(private, release, result.estimates)
        print(
            f"{k:>3} {before:>14.4g} {after:>14.4g} {before - after:>12.4g} "
            f"{mean_absolute_error(truth, result.estimates):>10,.0f} "
            f"{breach_rate(truth, result.estimates, tolerance=0.10):>10.0%} "
            f"{rank_correlation(truth, result.estimates):>9.2f}"
        )

    print()
    print("The dissimilarity after fusion stays well below the before-fusion value")
    print("at every k: whatever the anonymization level, the web channel hands the")
    print("adversary a strictly better estimate of the salaries — the paper's core claim.")

    # Show what the adversary actually sees for one person.
    release = MDAVAnonymizer().anonymize(private, 8).release
    attack = WebFusionAttack(corpus, config)
    result = attack.run(release)
    name = str(release.identifier_column()[0])
    pages = corpus.search(name)
    print()
    print(f"What the adversary sees for {name!r}:")
    print(f"  release row : {release.row(0)}")
    if pages:
        print(f"  web page    : {pages[0].source} (linkage confidence {pages[0].confidence:.2f})")
        print(f"  harvested   : {dict(pages[0].attributes)}")
    print(f"  estimate    : ${result.estimates[0]:,.0f}  (true: ${truth[0]:,.0f})")


if __name__ == "__main__":
    main()
