"""Quickstart: the paper's Section-I walkthrough on the 4-customer example.

This script reproduces the narrative of the paper's introduction end to end:

1. start from the enterprise customer database (Table II) — identifiers,
   investment indices, customer valuation and the sensitive personal income;
2. k-anonymize the quasi-identifiers and drop the income column to obtain the
   internal release (Table III);
3. play the insider adversary: use the customer names in the release to search
   a (simulated) web for auxiliary data (Table IV), fuse the release with the
   harvested attributes through a fuzzy inference system, and estimate every
   customer's income;
4. compare the estimates with the true incomes the release was supposed to
   protect.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import MDAVAnonymizer
from repro.data import adversary_auxiliary_example, enterprise_customers_example
from repro.fusion import AttackConfig, SimulatedWebCorpus, WebFusionAttack
from repro.metrics import breach_rate, rank_correlation, relative_errors


def main() -> None:
    # ------------------------------------------------------------------ step 1
    private = enterprise_customers_example()
    print("Enterprise data (Table II) — what the institution holds:")
    print(private.to_text())
    print()

    # ------------------------------------------------------------------ step 2
    anonymization = MDAVAnonymizer().anonymize(private, k=2)
    release = anonymization.release
    print("Anonymized internal release (Table III) — income removed, QIs generalized:")
    print(release.to_text())
    print()

    # ------------------------------------------------------------------ step 3
    # The simulated web: one page per customer exposing employment and property
    # holdings (the auxiliary data of Table IV).
    auxiliary = adversary_auxiliary_example()
    profiles = [
        {
            "name": row["name"],
            "position": row["employment"],
            "property_holdings": float(row["property_holdings"]),
        }
        for row in auxiliary.rows()
    ]
    web = SimulatedWebCorpus.from_profiles(
        profiles=profiles,
        attribute_names=("property_holdings",),
        noise_level=0.0,
        coverage=1.0,
        name_variant_probability=0.0,
        seed=1,
    )

    config = AttackConfig(
        release_inputs=("invst_vol", "invst_amt", "valuation"),
        auxiliary_inputs=("property_holdings",),
        output_name="income",
        output_universe=(40_000.0, 100_000.0),
        # The adversary's domain knowledge of the income classes (Section I).
        output_ranges={
            "low": (40_000.0, 60_000.0),
            "medium": (60_000.0, 80_000.0),
            "high": (80_000.0, 100_000.0),
        },
        input_ranges={
            "invst_vol": (1.0, 10.0),
            "invst_amt": (1.0, 10.0),
            "valuation": (1.0, 10.0),
            "property_holdings": (500.0, 6_000.0),
        },
    )
    attack = WebFusionAttack(web, config)
    result = attack.run(release)

    print("Auxiliary data harvested by the adversary (Table IV):")
    print(result.auxiliary.to_text())
    print()

    # ------------------------------------------------------------------ step 4
    truth = {str(row["name"]): float(row["income"]) for row in private.rows()}
    names = [str(n) for n in release.identifier_column()]
    true_values = [truth[name] for name in names]
    estimates = list(result.estimates)

    print("Adversary's income estimates vs the truth the release was meant to hide:")
    print(f"{'customer':<12} {'estimated':>12} {'true':>12} {'rel. error':>10}")
    for name, estimate, true_value, error in zip(
        names, estimates, true_values, relative_errors(true_values, estimates)
    ):
        print(f"{name:<12} {estimate:>12,.0f} {true_value:>12,.0f} {error:>9.1%}")
    print()
    print(
        f"breach rate (within 25% of the true income): "
        f"{breach_rate(true_values, estimates, tolerance=0.25):.0%}"
    )
    print(
        f"rank correlation between estimates and true incomes: "
        f"{rank_correlation(true_values, estimates):.2f}"
    )
    print()
    print(
        "Even though the release dropped every income value, fusing it with a"
        " handful of web facts recovers the income ordering and close estimates"
        " for the extreme customers — the Web-Based Information-Fusion Attack."
    )


if __name__ == "__main__":
    main()
