"""FRED tuning: pick the fusion-resilient anonymization level (Algorithm 1).

This example runs the paper's FRED Anonymization end to end: sweep the
anonymization level, simulate the web-based information-fusion attack at each
level, measure protection (post-fusion dissimilarity) and utility
(inverse discernibility), and select the level maximizing the weighted sum of
the two subject to the protection threshold ``Tp`` and utility threshold
``Tu``.  It then shows how the selected level shifts as the publisher moves
weight between protection and utility.

Run with::

    python examples/fred_tuning.py
"""

from __future__ import annotations

from repro import FREDAnonymizer, FREDConfig, WeightedObjective
from repro.experiments import default_setup, derive_thresholds, run_sweep


def main() -> None:
    # Reuse the default experimental setup so the thresholds derived here match
    # the ones used for Figure 8.
    setup = default_setup()
    population = setup.population
    sweep = run_sweep(setup)
    protection_threshold, utility_threshold = derive_thresholds(sweep)
    print(
        f"Thresholds derived from the observed sweep: "
        f"Tp = {protection_threshold:.4g}, Tu = {utility_threshold:.4g}"
    )
    print()

    for protection_weight in (0.25, 0.5, 0.75):
        utility_weight = 1.0 - protection_weight
        config = FREDConfig(
            levels=setup.levels,
            protection_threshold=protection_threshold,
            utility_threshold=utility_threshold,
            objective=WeightedObjective(protection_weight, utility_weight),
            stop_below_utility=False,
        )
        fred = FREDAnonymizer(
            source=setup.corpus, attack_config=setup.attack_config, config=config
        )
        result = fred.run(population.private)
        print(
            f"W1={protection_weight:.2f} W2={utility_weight:.2f}  "
            f"feasible band k={result.feasible_levels()[0]}..{result.feasible_levels()[-1]}  "
            f"optimal k={result.optimal_level}"
        )

    print()
    print("Full trace for the balanced publisher (W1 = W2 = 0.5):")
    balanced = FREDConfig(
        levels=setup.levels,
        protection_threshold=protection_threshold,
        utility_threshold=utility_threshold,
        objective=WeightedObjective(0.5, 0.5),
        stop_below_utility=False,
    )
    fred = FREDAnonymizer(setup.corpus, setup.attack_config, balanced)
    result = fred.run(population.private)
    print(result.summary())
    print()
    print("Recommended fusion-resilient release (first 5 rows):")
    print(result.optimal_release.to_text(max_rows=5))


if __name__ == "__main__":
    main()
