"""Adversary ablation: how much does each ingredient of the attack matter?

The paper's attack has three ingredients: the anonymized release, the web
auxiliary channel, and the fusion engine.  This example ablates each one on
the financial-customer population:

* fusion engine — Mamdani (paper) vs Sugeno vs an unsupervised rank-scaling
  estimator vs the midpoint guess (no information);
* web channel quality — full coverage / noisy / mostly missing;
* rule source — hand-written domain rules vs automatically induced monotone
  rules.

Run with::

    python examples/adversary_ablation.py
"""

from __future__ import annotations

from repro import MDAVAnonymizer
from repro.data import generate_customers
from repro.data.customers import CustomerConfig
from repro.data.webgen import corpus_for_customers
from repro.fusion import (
    AttackConfig,
    MidpointEstimator,
    RankScalingEstimator,
    WebFusionAttack,
)
from repro.metrics import mean_absolute_error, rank_correlation, root_mean_square_error

RELEASE_INPUTS = ("invst_vol", "invst_amt", "valuation")
AUX_INPUTS = ("property_holdings", "employment_seniority")
INPUT_RANGES = {
    "invst_vol": (1.0, 10.0),
    "invst_amt": (1.0, 10.0),
    "valuation": (1.0, 10.0),
    "property_holdings": (100.0, 6_200.0),
    "employment_seniority": (0.0, 40.0),
}

DOMAIN_RULES = [
    "IF valuation IS high AND property_holdings IS high THEN income IS high",
    "IF valuation IS low AND property_holdings IS low THEN income IS low",
    "IF invst_amt IS high AND employment_seniority IS high THEN income IS high",
    "IF invst_vol IS medium THEN income IS medium",
    "IF valuation IS medium THEN income IS medium",
    "IF property_holdings IS low AND invst_amt IS low THEN income IS low",
]


def attack_config(**overrides: object) -> AttackConfig:
    """The shared attack configuration with per-ablation overrides."""
    base: dict[str, object] = {
        "release_inputs": RELEASE_INPUTS,
        "auxiliary_inputs": AUX_INPUTS,
        "output_name": "income",
        "output_universe": (40_000.0, 160_000.0),
        "input_ranges": INPUT_RANGES,
        "engine": "mamdani",
    }
    base.update(overrides)
    return AttackConfig(**base)  # type: ignore[arg-type]


def main() -> None:
    population = generate_customers(CustomerConfig(count=300, seed=11))
    private = population.private
    truth = private.sensitive_vector()
    release = MDAVAnonymizer().anonymize(private, k=5).release
    corpus = corpus_for_customers(population)

    print("=== Fusion engine ablation (k = 5 release, same web corpus) ===")
    engines = {
        "mamdani (paper)": attack_config(engine="mamdani"),
        "sugeno": attack_config(engine="sugeno"),
        "rank scaling": attack_config(
            engine="custom",
            estimator=RankScalingEstimator(
                feature_names=RELEASE_INPUTS + AUX_INPUTS,
                output_universe=(40_000.0, 160_000.0),
            ),
        ),
        "midpoint guess": attack_config(
            engine="custom",
            estimator=MidpointEstimator(output_universe=(40_000.0, 160_000.0)),
        ),
    }
    print(f"{'engine':<18} {'RMSE($)':>12} {'MAE($)':>12} {'rank corr':>10}")
    for label, config in engines.items():
        estimates = WebFusionAttack(corpus, config).run(release).estimates
        print(
            f"{label:<18} {root_mean_square_error(truth, estimates):>12,.0f} "
            f"{mean_absolute_error(truth, estimates):>12,.0f} "
            f"{rank_correlation(truth, estimates):>10.2f}"
        )
    print()

    print("=== Web channel quality ablation (Mamdani engine) ===")
    channels = {
        "clean, full coverage": corpus_for_customers(population, noise_level=0.0, coverage=1.0),
        "default (noisy)": corpus,
        "very noisy": corpus_for_customers(population, noise_level=0.4, coverage=0.9),
        "sparse (30% coverage)": corpus_for_customers(population, coverage=0.3),
    }
    print(f"{'web channel':<24} {'match rate':>10} {'RMSE($)':>12} {'rank corr':>10}")
    for label, channel in channels.items():
        result = WebFusionAttack(channel, attack_config()).run(release)
        print(
            f"{label:<24} {result.match_rate:>10.0%} "
            f"{root_mean_square_error(truth, result.estimates):>12,.0f} "
            f"{rank_correlation(truth, result.estimates):>10.2f}"
        )
    print()

    print("=== Rule source ablation (Mamdani engine, default web channel) ===")
    rule_sources = {
        "auto monotone rules": attack_config(),
        "hand-written domain rules": attack_config(rule_texts=DOMAIN_RULES),
    }
    print(f"{'rule source':<28} {'RMSE($)':>12} {'rank corr':>10}")
    for label, config in rule_sources.items():
        estimates = WebFusionAttack(corpus, config).run(release).estimates
        print(
            f"{label:<28} {root_mean_square_error(truth, estimates):>12,.0f} "
            f"{rank_correlation(truth, estimates):>10.2f}"
        )
    print()
    print("Takeaway: the breach is not an artifact of the fuzzy engine — any")
    print("reasonable fusion of the release with the web channel beats the")
    print("no-information midpoint guess, and its quality tracks the quality of")
    print("the auxiliary channel, exactly as the paper's threat model assumes.")


if __name__ == "__main__":
    main()
