"""The anonymization service core: registry, cached artifacts, async jobs.

:class:`AnonymizationService` is the framework-free heart of the serving
tier.  It is driven directly by tests and benchmarks and wrapped by the thin
JSON/HTTP layer in :mod:`repro.service.http`:

* **register** a dataset once (from an in-memory table or a streamed
  CSV/JSONL body) — its :attr:`~repro.dataset.table.Table.fingerprint`
  becomes the dataset id, so registering identical content twice is a no-op;
* request an anonymized **release** at level *k* under any registered
  algorithm (MDAV, Mondrian, Datafly, greedy clustering, plain suppression) —
  releases are memoized in the two-tier cache, so a repeat request is an O(1)
  dictionary hit; the CSV rendering is lazy and cached on the artifact, so
  attack/FRED requests that only need estimates never render it, while every
  client fetching the CSV receives byte-identical text;
* run the web-based **fusion attack** against a release (memoized the same
  way) — the linkage **harvest** is memoized separately, keyed by
  (identifier-column fingerprint, auxiliary-corpus fingerprint), so repeated
  attack/FRED requests over the same identifiers skip record linkage
  entirely regardless of algorithm, level or engine;
* launch a **FRED sweep** as an asynchronous job and poll it, with the sweep
  itself fanned out over :class:`~repro.core.fred.FREDConfig` worker pools;
* **append** streamed rows onto a registered dataset without re-uploading it:
  the result is registered under the *chained* content fingerprint
  (:func:`~repro.dataset.table.chain_fingerprints`, O(delta) hashing), the
  old fingerprint is superseded — a tombstone in the shared dataset store
  tells every sibling worker of a multi-process front to drop its private
  copy — and exactly the cached artifacts derived from the old fingerprint
  are invalidated, in memory and in the shared spill tier, so no worker can
  serve a pre-append release under a post-append identity.

All public methods are thread-safe; the cache's single-flight discipline
guarantees that concurrent identical requests compute each artifact exactly
once (see :mod:`repro.service.cache`).
"""

from __future__ import annotations

import hashlib
import math
import os
import threading
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.anonymize.clustering import GreedyClusterAnonymizer
from repro.anonymize.datafly import DataflyAnonymizer
from repro.anonymize.mdav import MDAVAnonymizer
from repro.anonymize.mondrian import MondrianAnonymizer
from repro.core.fred import FREDAnonymizer, FREDConfig
from repro.core.objective import WeightedObjective
from repro.dataset.io import render_csv, stream_csv, stream_jsonl
from repro.dataset.table import Table
from repro.exceptions import ServiceError, UnknownDatasetError
from repro.fusion.attack import AttackConfig, WebFusionAttack, harvest_auxiliary
from repro.fusion.auxiliary import TableAuxiliarySource
from repro.service.cache import TwoTierCache
from repro.service.codec import SPILL_CONTAINER_SUFFIX, decode_entry, encode_entry
from repro.service.jobs import JobManager
from repro.service.jobstore import JobStore

__all__ = ["AnonymizationService", "ReleaseArtifact", "ServiceConfig", "ALGORITHMS"]


def _suppression_anonymizer() -> DataflyAnonymizer:
    # Pure suppression-to-k: with the suppression budget uncapped, Datafly
    # performs zero generalization steps and suppresses exactly the rows whose
    # verbatim quasi-identifier combination occurs fewer than k times.
    return DataflyAnonymizer(max_suppression_fraction=1.0)


#: Algorithm name -> zero-argument anonymizer factory.
ALGORITHMS: dict[str, Callable[[], object]] = {
    "mdav": MDAVAnonymizer,
    "mondrian": MondrianAnonymizer,
    "datafly": DataflyAnonymizer,
    "greedy-cluster": GreedyClusterAnonymizer,
    "suppression": _suppression_anonymizer,
}

_RELEASE_STYLES = ("interval", "centroid")


def _identifier_fingerprint(names: Sequence[str]) -> str:
    """A stable content fingerprint of an identifier column (sha256 hex).

    Harvests are keyed by this rather than the full dataset fingerprint:
    two datasets sharing an identifier column (e.g. the same people with
    refreshed quasi-identifiers) hit the same cached harvest.
    """
    hasher = hashlib.sha256()
    for name in names:
        encoded = str(name).encode("utf-8", "surrogatepass")
        # Length-prefixed so the encoding is injective even when a name
        # contains NUL bytes (reachable via JSONL ingest).
        hasher.update(len(encoded).to_bytes(8, "big"))
        hasher.update(encoded)
    return hasher.hexdigest()


class ReleaseArtifact:
    """A memoized release: the table plus its lazily cached CSV rendering.

    The CSV is **not** rendered when the release is computed — attack and
    FRED requests that only need estimates never pay for it.  The first
    access to :attr:`csv_bytes` renders and UTF-8 encodes once, caching the
    encoded bytes on the artifact (handlers serve those bytes directly and
    never re-encode); :func:`~repro.dataset.io.render_csv` is deterministic,
    which keeps concurrent first renders byte-identical too.

    Artifacts loaded back from a container spill
    (:mod:`repro.service.codec`) are **lazy**: ``table`` is a zero-argument
    loader that decodes the memory-mapped columns on first use (single-flight
    — concurrent first touches run the loader exactly once), and
    ``csv_bytes`` may arrive as a :class:`memoryview` straight over the
    mapping — a worker that only serves the cached CSV, or summaries via
    :meth:`info` (whose row count rides in the manifest), never rebuilds the
    table at all.
    """

    __slots__ = (
        "dataset",
        "algorithm",
        "k",
        "style",
        "class_sizes",
        "_table",
        "_csv",
        "_rows",
        "_table_lock",
    )

    def __init__(
        self,
        dataset: str,
        algorithm: str,
        k: int,
        style: str,
        table: Table | Callable[[], Table],
        class_sizes: tuple[int, ...],
        csv_bytes: bytes | memoryview | None = None,
        lazy: bool = False,
        rows: int | None = None,
    ) -> None:
        del lazy  # laziness is implied by passing a loader as ``table``
        self.dataset = dataset
        self.algorithm = algorithm
        self.k = k
        self.style = style
        self.class_sizes = tuple(class_sizes)
        self._table = table
        self._csv = csv_bytes
        if rows is None and isinstance(table, Table):
            rows = table.num_rows
        self._rows = rows
        self._table_lock = threading.Lock()

    @property
    def table(self) -> Table:
        """The release table (decoded from the spill mapping on first use)."""
        materialized = self._table
        if not isinstance(materialized, Table):
            # Single-flight: decoding a spilled million-row table takes
            # seconds, so a herd of request threads each running the loader
            # concurrently would multiply that by the thread count (they all
            # share the GIL).  One thread decodes, the rest wait on the lock.
            with self._table_lock:
                materialized = self._table
                if not isinstance(materialized, Table):
                    materialized = materialized()
                    self._rows = materialized.num_rows
                    self._table = materialized
        return materialized

    @property
    def num_rows(self) -> int:
        """Row count without forcing a decode (the spill manifest knows it)."""
        if self._rows is not None:
            return self._rows
        return self.table.num_rows

    def peek_table(self) -> Table:
        """The table, forcing materialization (used by the spill codec)."""
        return self.table

    @property
    def csv_bytes_cache(self) -> bytes | memoryview | None:
        """The cached CSV encoding if one exists, without rendering."""
        return self._csv

    @property
    def csv_bytes(self) -> bytes | memoryview:
        """The UTF-8 encoded CSV rendering (rendered on first use, cached)."""
        if self._csv is None:
            self._csv = render_csv(self.table).encode("utf-8")
        return self._csv

    @property
    def csv_text(self) -> str:
        """The release rendered to CSV (decoded from :attr:`csv_bytes`)."""
        return bytes(self.csv_bytes).decode("utf-8")

    @property
    def minimum_class_size(self) -> int:
        """The achieved anonymity (size of the smallest equivalence class)."""
        return min(self.class_sizes)

    def info(self) -> dict[str, object]:
        """JSON-able summary (everything but the payload)."""
        return {
            "dataset": self.dataset,
            "algorithm": self.algorithm,
            "k": self.k,
            "style": self.style,
            "rows": self.num_rows,
            "classes": len(self.class_sizes),
            "minimum_class_size": self.minimum_class_size,
        }

    def __repr__(self) -> str:
        return (
            f"ReleaseArtifact(dataset={self.dataset!r}, algorithm={self.algorithm!r}, "
            f"k={self.k}, style={self.style!r}, classes={len(self.class_sizes)})"
        )

    def __getstate__(self) -> dict[str, object]:
        # Pickle (the cache's fallback spill codec) materializes the table and
        # detaches the CSV bytes from any memory mapping they may view.
        return {
            "dataset": self.dataset,
            "algorithm": self.algorithm,
            "k": self.k,
            "style": self.style,
            "class_sizes": self.class_sizes,
            "table": self.table,
            "csv": bytes(self._csv) if self._csv is not None else None,
        }

    def __setstate__(self, state: dict[str, object]) -> None:
        self.dataset = state["dataset"]
        self.algorithm = state["algorithm"]
        self.k = state["k"]
        self.style = state["style"]
        self.class_sizes = state["class_sizes"]
        self._table = state["table"]
        self._csv = state["csv"]
        self._rows = state["table"].num_rows
        self._table_lock = threading.Lock()


@dataclass(frozen=True)
class _DatasetEntry:
    table: Table
    label: str


@dataclass(frozen=True)
class ServiceConfig:
    """Picklable construction recipe for :class:`AnonymizationService`.

    The multi-process front (:class:`~repro.service.http.ServiceServer` with
    ``workers > 1``) ships this to each spawned worker so every process
    builds an identical service sharing one ``cache_dir`` — the spill
    directory is the common cache tier and the dataset store, while the
    in-memory single-flight tier stays per-process.
    """

    cache_capacity: int = 128
    cache_dir: str | None = None
    job_workers: int = 2
    job_retention: int = 256
    max_datasets: int | None = None
    fred_parallelism: int = 1
    max_spill_bytes: int | None = None
    max_spill_entries: int | None = None
    job_heartbeat_seconds: float = 1.0
    job_stale_after_seconds: float = 10.0


class AnonymizationService:
    """Long-lived, thread-safe façade over the anonymization pipeline.

    Parameters
    ----------
    cache_capacity:
        In-memory LRU entry budget of the artifact cache.
    cache_dir:
        Optional spill directory; cached artifacts survive eviction and
        restarts when set.
    job_workers:
        Worker threads executing asynchronous FRED jobs.
    job_retention:
        Maximum finished jobs kept for polling (oldest evicted first).
    max_datasets:
        Optional cap on concurrently registered datasets; registration past
        the cap is rejected with :class:`~repro.exceptions.ServiceError`
        (clients free slots via :meth:`unregister` / ``DELETE /datasets/<fp>``).
        ``None`` (the default) leaves the registry unbounded.
    fred_parallelism:
        Default per-sweep level parallelism handed to
        :class:`~repro.core.fred.FREDConfig` for jobs that do not specify
        their own.
    max_spill_bytes / max_spill_entries:
        Spill-directory garbage-collection budget, passed through to
        :class:`~repro.service.cache.TwoTierCache`.
    job_heartbeat_seconds / job_stale_after_seconds:
        Owner-liveness knobs of the shared job store (active only with a
        ``cache_dir``): the owning worker heartbeats every
        ``job_heartbeat_seconds``, and a poll that finds the owner silent for
        more than ``job_stale_after_seconds`` reports its non-terminal jobs
        as ``failed`` instead of letting clients poll a dead worker's job
        forever.
    """

    def __init__(
        self,
        cache_capacity: int = 128,
        cache_dir: str | Path | None = None,
        job_workers: int = 2,
        job_retention: int = 256,
        max_datasets: int | None = None,
        fred_parallelism: int = 1,
        max_spill_bytes: int | None = None,
        max_spill_entries: int | None = None,
        job_heartbeat_seconds: float = 1.0,
        job_stale_after_seconds: float = 10.0,
    ) -> None:
        if fred_parallelism < 1:
            raise ServiceError(f"fred parallelism must be >= 1, got {fred_parallelism}")
        if max_datasets is not None and max_datasets < 1:
            raise ServiceError(f"max datasets must be >= 1, got {max_datasets}")
        self._max_datasets = max_datasets
        self._datasets: dict[str, _DatasetEntry] = {}
        self._datasets_lock = threading.Lock()
        self._cache = TwoTierCache(
            capacity=cache_capacity,
            spill_dir=cache_dir,
            max_spill_bytes=max_spill_bytes,
            max_spill_entries=max_spill_entries,
        )
        # With a cache directory the service also keeps a shared dataset
        # store: the in-memory registry is per-process, so sibling workers of
        # a multi-process front find datasets registered elsewhere by mapping
        # the stored container (zero-copy, shared pages).
        self._dataset_store: Path | None = None
        job_store: JobStore | None = None
        if cache_dir is not None:
            self._dataset_store = Path(cache_dir) / "datasets"
            self._dataset_store.mkdir(parents=True, exist_ok=True)
            # A spill directory also hosts the shared job store: every
            # lifecycle transition of an async job is published under
            # ``jobs/`` so sibling workers of a multi-process front can
            # answer polls for jobs they did not accept.
            job_store = JobStore(
                Path(cache_dir) / "jobs",
                heartbeat_seconds=job_heartbeat_seconds,
                stale_after_seconds=job_stale_after_seconds,
            )
        self._jobs = JobManager(
            max_workers=job_workers, max_retained=job_retention, store=job_store
        )
        self._fred_parallelism = fred_parallelism
        # Appends are serialized per process: two concurrent appends to the
        # same base must chain (A then B), not race (both off A, one lost).
        self._append_lock = threading.Lock()
        self._appends = 0
        self._append_rows = 0
        self._append_invalidated = 0
        self._closed = False

    @classmethod
    def from_config(cls, config: ServiceConfig) -> "AnonymizationService":
        """Build a service from a picklable :class:`ServiceConfig` recipe."""
        return cls(**asdict(config))

    # Dataset registry ----------------------------------------------------------

    def register(self, table: Table, label: str = "") -> dict[str, object]:
        """Register an in-memory table; its content fingerprint is the id.

        Registering content that is already present is idempotent (the
        existing entry and ``created=False`` are returned), so many clients
        can upload the same dataset without coordination.
        """
        if table.num_rows == 0:
            raise ServiceError("cannot register an empty dataset")
        fingerprint = table.fingerprint
        with self._datasets_lock:
            existing = self._datasets.get(fingerprint)
            if existing is None:
                if (
                    self._max_datasets is not None
                    and len(self._datasets) >= self._max_datasets
                ):
                    raise ServiceError(
                        f"dataset registry is full ({self._max_datasets} datasets); "
                        "unregister one to free a slot"
                    )
                self._datasets[fingerprint] = _DatasetEntry(table=table, label=label)
                created = True
            else:
                created = False
        if self._dataset_store is not None:
            if created:
                self._store_dataset(fingerprint, table, label)
            # Re-registering content that an append once superseded makes the
            # fingerprint live again; clear any tombstone so lookups succeed.
            self._tombstone_path(fingerprint).unlink(missing_ok=True)
        info = self._dataset_info(fingerprint)
        info["created"] = created
        return info

    def _store_dataset(self, fingerprint: str, table: Table, label: str) -> None:
        """Publish a registered table to the shared on-disk dataset store."""
        payload = encode_entry((fingerprint, label), table, force=True)
        assert payload is not None  # force=True always yields a container
        path = self._dataset_store / f"{fingerprint}{SPILL_CONTAINER_SUFFIX}"
        temp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        try:
            temp.write_bytes(payload)
            os.replace(temp, path)
        finally:
            temp.unlink(missing_ok=True)

    def _tombstone_path(self, fingerprint: str) -> Path:
        assert self._dataset_store is not None
        return self._dataset_store / f"{fingerprint}.superseded"

    def _write_tombstone(self, fingerprint: str, successor: str) -> None:
        """Mark ``fingerprint`` as superseded by ``successor`` (atomic)."""
        path = self._tombstone_path(fingerprint)
        temp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        try:
            temp.write_text(successor, encoding="ascii")
            os.replace(temp, path)
        finally:
            temp.unlink(missing_ok=True)

    def _superseded_by(self, fingerprint: str) -> str | None:
        """The successor fingerprint if an append superseded this one."""
        if self._dataset_store is None:
            return None
        try:
            text = self._tombstone_path(fingerprint).read_text(encoding="ascii")
        except OSError:
            return None
        return text.strip() or None

    def _load_stored_dataset(self, fingerprint: str) -> _DatasetEntry | None:
        """Adopt a dataset published to the store by a sibling worker.

        The stored container is memory-mapped, so the adopted table's columns
        are read-only views over pages shared with every other worker.
        """
        if self._dataset_store is None:
            return None
        path = self._dataset_store / f"{fingerprint}{SPILL_CONTAINER_SUFFIX}"
        ok, key, value = decode_entry(path)
        if not ok or not isinstance(value, Table):
            return None
        if not isinstance(key, tuple) or not key or key[0] != fingerprint:
            return None
        label = str(key[1]) if len(key) > 1 else ""
        entry = _DatasetEntry(table=value, label=label)
        with self._datasets_lock:
            return self._datasets.setdefault(fingerprint, entry)

    def unregister(self, fingerprint: str) -> dict[str, object]:
        """Remove a registered dataset, releasing its registry slot and memory.

        Cached artifacts derived from the dataset are left in the cache (they
        are keyed by content, so re-registering the same data later still
        hits them); unknown fingerprints raise
        :class:`~repro.exceptions.UnknownDatasetError`.
        """
        with self._datasets_lock:
            entry = self._datasets.pop(fingerprint, None)
        stored = False
        if self._dataset_store is not None:
            path = self._dataset_store / f"{fingerprint}{SPILL_CONTAINER_SUFFIX}"
            stored = path.exists()
            path.unlink(missing_ok=True)
            self._tombstone_path(fingerprint).unlink(missing_ok=True)
        if entry is None and not stored:
            raise UnknownDatasetError(f"unknown dataset: {fingerprint!r}")
        label = entry.label if entry is not None else ""
        return {"fingerprint": fingerprint, "label": label, "removed": True}

    def register_stream(
        self, lines: Iterable[str], fmt: str = "csv", label: str = ""
    ) -> dict[str, object]:
        """Register a dataset from streamed CSV/JSONL text lines."""
        if fmt == "csv":
            table = stream_csv(lines, source=f"<upload:{label or 'csv'}>")
        elif fmt == "jsonl":
            table = stream_jsonl(lines, source=f"<upload:{label or 'jsonl'}>")
        else:
            raise ServiceError(f"unknown upload format {fmt!r}; options: ['csv', 'jsonl']")
        return self.register(table, label=label)

    def dataset(self, fingerprint: str) -> Table:
        """The registered table with this fingerprint.

        Falls through to the shared dataset store (when a cache directory is
        configured) so a worker process finds datasets registered by a
        sibling worker of the same multi-process front.  Fingerprints that an
        append superseded — possibly in a *sibling* worker — are refused (and
        any stale private copy dropped) with an error naming the successor,
        so no worker of a multi-process front serves pre-append content.
        """
        with self._datasets_lock:
            entry = self._datasets.get(fingerprint)
        successor = self._superseded_by(fingerprint)
        if successor is not None:
            with self._datasets_lock:
                self._datasets.pop(fingerprint, None)
            raise UnknownDatasetError(
                f"dataset {fingerprint!r} was superseded by an append; "
                f"the current fingerprint is {successor!r}"
            )
        if entry is None:
            entry = self._load_stored_dataset(fingerprint)
        if entry is None:
            raise UnknownDatasetError(f"unknown dataset: {fingerprint!r}")
        return entry.table

    def _dataset_info(self, fingerprint: str) -> dict[str, object]:
        with self._datasets_lock:
            entry = self._datasets[fingerprint]
        return {
            "fingerprint": fingerprint,
            "label": entry.label,
            "rows": entry.table.num_rows,
            "columns": list(entry.table.schema.names),
        }

    def dataset_info(self, fingerprint: str) -> dict[str, object]:
        """JSON-able description of one registered dataset."""
        self.dataset(fingerprint)  # raises UnknownDatasetError
        return self._dataset_info(fingerprint)

    def list_datasets(self) -> list[dict[str, object]]:
        """Descriptions of every registered dataset (registration order)."""
        with self._datasets_lock:
            fingerprints = list(self._datasets)
        return [self._dataset_info(fp) for fp in fingerprints]

    # Incremental ingest --------------------------------------------------------

    def _parse_delta(self, lines: Iterable[str], fmt: str) -> Table:
        if fmt == "csv":
            delta = stream_csv(lines, source="<append:csv>")
        elif fmt == "jsonl":
            delta = stream_jsonl(lines, source="<append:jsonl>")
        else:
            raise ServiceError(
                f"unknown upload format {fmt!r}; options: ['csv', 'jsonl']"
            )
        if delta.num_rows == 0:
            raise ServiceError("cannot append an empty delta")
        return delta

    def append_stream(
        self,
        fingerprint: str,
        lines: Iterable[str],
        fmt: str = "csv",
        label: str | None = None,
    ) -> dict[str, object]:
        """Append streamed CSV/JSONL rows onto a registered dataset.

        The delta's schema must match the base (same names, roles and
        kinds).  See :meth:`append_table` for the identity and invalidation
        semantics.
        """
        return self.append_table(fingerprint, self._parse_delta(lines, fmt), label=label)

    def append_table(
        self, fingerprint: str, delta: Table, label: str | None = None
    ) -> dict[str, object]:
        """Append ``delta``'s rows onto the dataset ``fingerprint``.

        The appended table is registered under its *chained* fingerprint
        (``sha256(base_fp ‖ delta_fp)`` — O(delta) hashing, never a rescan of
        the base), and the old fingerprint is **superseded**: its store entry
        is replaced by a tombstone naming the successor, so sibling workers
        holding a private pre-append copy drop it on next touch, and every
        cached artifact keyed by the old fingerprint — releases, rendered
        CSVs, attacks, FRED sweeps, in memory and in the shared spill tier —
        is invalidated.  Artifacts keyed by *content* that did not change
        (e.g. harvests keyed by the identifier-column fingerprint) survive
        untouched.
        """
        if delta.num_rows == 0:
            raise ServiceError("cannot append an empty delta")
        with self._append_lock:
            base = self.dataset(fingerprint)
            appended = base.append(delta)  # TableError on schema mismatch
            new_fingerprint = appended.fingerprint
            with self._datasets_lock:
                old_entry = self._datasets.pop(fingerprint, None)
                if label is None:
                    label = old_entry.label if old_entry is not None else ""
                self._datasets[new_fingerprint] = _DatasetEntry(
                    table=appended, label=label
                )
            if self._dataset_store is not None:
                self._store_dataset(new_fingerprint, appended, label)
                self._tombstone_path(new_fingerprint).unlink(missing_ok=True)
                # Tombstone before unlinking the old container: a racing
                # sibling either still finds the old content (pre-append
                # snapshot) or the tombstone — never a silent miss.
                self._write_tombstone(fingerprint, new_fingerprint)
                old_path = (
                    self._dataset_store / f"{fingerprint}{SPILL_CONTAINER_SUFFIX}"
                )
                old_path.unlink(missing_ok=True)
            invalidated = self._cache.invalidate_fingerprint(fingerprint)
            self._appends += 1
            self._append_rows += delta.num_rows
            self._append_invalidated += invalidated
        info = self._dataset_info(new_fingerprint)
        info["superseded"] = fingerprint
        info["appended_rows"] = delta.num_rows
        info["invalidated_entries"] = invalidated
        return info

    def start_append(
        self,
        fingerprint: str,
        lines: Iterable[str],
        fmt: str = "csv",
        label: str | None = None,
    ) -> str:
        """Run an append as an asynchronous job; returns the job id.

        The request body is parsed up front (it cannot outlive the HTTP
        request), so submission fails fast on unknown datasets, bad formats
        and empty deltas; only the append itself — fingerprint chaining,
        store publication, cache invalidation — runs on the job pool.
        """
        self.dataset(fingerprint)  # fail fast before parsing the body
        delta = self._parse_delta(lines, fmt)

        def work() -> dict[str, object]:
            return self.append_table(fingerprint, delta, label=label)

        return self._jobs.submit(
            work,
            description=f"append {fingerprint[:12]} (+{delta.num_rows} rows)",
            kind="append",
        )

    # Releases ------------------------------------------------------------------

    def release(
        self,
        fingerprint: str,
        k: int,
        algorithm: str = "mdav",
        style: str = "interval",
    ) -> ReleaseArtifact:
        """The anonymized release of a dataset at level ``k`` (memoized)."""
        table = self.dataset(fingerprint)
        if algorithm not in ALGORITHMS:
            raise ServiceError(
                f"unknown algorithm {algorithm!r}; options: {sorted(ALGORITHMS)}"
            )
        if style not in _RELEASE_STYLES:
            raise ServiceError(
                f"unknown release style {style!r}; options: {sorted(_RELEASE_STYLES)}"
            )
        if style == "centroid" and algorithm in ("datafly", "suppression"):
            raise ServiceError(
                f"algorithm {algorithm!r} only supports the 'interval' release style"
            )
        if not isinstance(k, int) or isinstance(k, bool):
            raise ServiceError(f"k must be an integer, got {k!r}")
        key = (fingerprint, "release", algorithm, k, style)
        return self._cache.get_or_compute(
            key, lambda: self._compute_release(table, fingerprint, k, algorithm, style)
        )

    def release_csv(
        self,
        fingerprint: str,
        k: int,
        algorithm: str = "mdav",
        style: str = "interval",
    ) -> bytes | memoryview:
        """The UTF-8 CSV encoding of a release, cached as its own entry.

        The bytes are memoized separately from the artifact so that a worker
        process serving a release another worker already rendered maps the
        spilled bytes (a :class:`memoryview` over the container file) and
        writes them straight to the socket — no table rebuild, no re-render,
        no re-encode.
        """
        self.dataset(fingerprint)  # raises UnknownDatasetError
        key = (fingerprint, "release", algorithm, k, style, "csv")
        return self._cache.get_or_compute(
            key,
            lambda: self.release(
                fingerprint, k, algorithm=algorithm, style=style
            ).csv_bytes,
        )

    def _compute_release(
        self, table: Table, fingerprint: str, k: int, algorithm: str, style: str
    ) -> ReleaseArtifact:
        anonymizer = ALGORITHMS[algorithm]()
        if style != "interval":
            anonymizer.release_style = style
        result = anonymizer.anonymize(table, k)
        return ReleaseArtifact(
            dataset=fingerprint,
            algorithm=algorithm,
            k=k,
            style=style,
            table=result.release,
            class_sizes=tuple(c.size for c in result.classes),
        )

    # Fusion attack -------------------------------------------------------------

    def attack(
        self,
        fingerprint: str,
        auxiliary: str,
        k: int,
        algorithm: str = "mdav",
        style: str = "interval",
        name_column: str = "name",
        sensitive_name: str = "sensitive_estimate",
        sensitive_low: float | None = None,
        sensitive_high: float | None = None,
        engine: str = "mamdani",
    ) -> dict[str, object]:
        """Simulate the fusion attack on a (memoized) release of a dataset.

        ``auxiliary`` is the fingerprint of a registered auxiliary (web)
        dataset keyed by ``name_column``.  The assumed sensitive range
        defaults to the span of the private dataset's sensitive column.
        The full result — per-record estimates and the match rate — is
        memoized under the complete request configuration.
        """
        private = self.dataset(fingerprint)
        self.dataset(auxiliary)  # fail fast on unknown auxiliary
        low, high = self._sensitive_range(private, sensitive_low, sensitive_high)
        key = (
            fingerprint, "attack", auxiliary, algorithm, k, style,
            name_column, sensitive_name, low, high, engine,
        )
        return self._cache.get_or_compute(
            key,
            lambda: self._compute_attack(
                fingerprint, auxiliary, k, algorithm, style,
                name_column, sensitive_name, low, high, engine,
            ),
        )

    def _harvest(
        self, names: Sequence[str], auxiliary: str, name_column: str
    ) -> tuple[TableAuxiliarySource, tuple]:
        """The memoized harvest of ``names`` against a registered auxiliary.

        Keyed by (identifier-column fingerprint, auxiliary-corpus fingerprint,
        name column) — the harvest is independent of anonymization algorithm,
        level and fusion engine, so every attack and FRED request over the
        same identifiers and corpus reuses one linkage pass.  The active
        kernel backend deliberately does not enter the key: the numba and
        numpy kernels are bit-identical (enforced by the backend's load-time
        self-check), so a harvest computed under either backend is valid for
        both.
        """
        source = TableAuxiliarySource(
            table=self.dataset(auxiliary), name_column=name_column
        )
        key = (_identifier_fingerprint(names), "harvest", auxiliary, name_column)
        harvest = self._cache.get_or_compute(
            key, lambda: harvest_auxiliary(source, names, source.attribute_names)
        )
        return source, harvest

    def _compute_attack(
        self,
        fingerprint: str,
        auxiliary: str,
        k: int,
        algorithm: str,
        style: str,
        name_column: str,
        sensitive_name: str,
        low: float,
        high: float,
        engine: str,
    ) -> dict[str, object]:
        artifact = self.release(fingerprint, k, algorithm=algorithm, style=style)
        names = [str(n) for n in artifact.table.identifier_column()]
        source, harvest = self._harvest(names, auxiliary, name_column)
        config = AttackConfig(
            release_inputs=tuple(artifact.table.schema.numeric_quasi_identifiers),
            auxiliary_inputs=tuple(source.attribute_names),
            output_name=sensitive_name,
            output_universe=(low, high),
            engine=engine,
        )
        result = WebFusionAttack(source, config).run(artifact.table, harvest=harvest)
        return {
            "dataset": fingerprint,
            "auxiliary": auxiliary,
            "algorithm": algorithm,
            "k": k,
            "engine": engine,
            "names": [str(n) for n in artifact.table.identifier_column()],
            "estimates": [float(v) for v in result.estimates],
            "match_rate": float(result.match_rate),
        }

    def _sensitive_range(
        self, private: Table, low: float | None, high: float | None
    ) -> tuple[float, float]:
        if low is None or high is None:
            sensitive = private.sensitive_vector()
            finite = sensitive[np.isfinite(sensitive)]
            if finite.size == 0:
                raise ServiceError(
                    "the sensitive column has no numeric values; pass an "
                    "explicit sensitive_low/sensitive_high range"
                )
            if low is None:
                low = float(np.floor(finite.min()))
            if high is None:
                high = float(np.ceil(finite.max()))
        if math.isnan(low) or math.isnan(high) or low >= high:
            raise ServiceError(
                f"the assumed sensitive range [{low}, {high}] is empty"
            )
        return float(low), float(high)

    # FRED jobs -----------------------------------------------------------------

    def start_fred(
        self,
        fingerprint: str,
        auxiliary: str,
        kmin: int = 2,
        kmax: int = 16,
        algorithm: str = "mdav",
        name_column: str = "name",
        sensitive_low: float | None = None,
        sensitive_high: float | None = None,
        protection_weight: float = 0.5,
        utility_weight: float = 0.5,
        protection_threshold: float | None = None,
        utility_threshold: float | None = None,
        parallelism: int | None = None,
    ) -> str:
        """Launch a FRED sweep as an asynchronous job; returns the job id.

        The sweep result is memoized like any other artifact, so re-running
        an identical job returns instantly with the cached sweep.
        """
        private = self.dataset(fingerprint)
        self.dataset(auxiliary)
        if algorithm not in ALGORITHMS:
            raise ServiceError(
                f"unknown algorithm {algorithm!r}; options: {sorted(ALGORITHMS)}"
            )
        if kmin < 1 or kmax < kmin:
            raise ServiceError(f"invalid level range [{kmin}, {kmax}]")
        if parallelism is None:
            workers = self._fred_parallelism
        elif isinstance(parallelism, int) and not isinstance(parallelism, bool) and parallelism >= 1:
            workers = parallelism
        else:
            raise ServiceError(f"parallelism must be an integer >= 1, got {parallelism!r}")
        low, high = self._sensitive_range(private, sensitive_low, sensitive_high)
        key = (
            fingerprint, "fred", auxiliary, algorithm, kmin, kmax, name_column,
            low, high, protection_weight, utility_weight,
            protection_threshold, utility_threshold,
        )

        def work() -> dict[str, object]:
            return self._cache.get_or_compute(
                key,
                lambda: self._compute_fred(
                    fingerprint, auxiliary, kmin, kmax, algorithm, name_column,
                    low, high, protection_weight, utility_weight,
                    protection_threshold, utility_threshold, workers,
                ),
            )

        return self._jobs.submit(
            work,
            description=f"fred {fingerprint[:12]} k={kmin}..{kmax} ({algorithm})",
            kind="fred",
        )

    def _compute_fred(
        self,
        fingerprint: str,
        auxiliary: str,
        kmin: int,
        kmax: int,
        algorithm: str,
        name_column: str,
        low: float,
        high: float,
        protection_weight: float,
        utility_weight: float,
        protection_threshold: float | None,
        utility_threshold: float | None,
        parallelism: int,
    ) -> dict[str, object]:
        private = self.dataset(fingerprint)
        names = [str(n) for n in private.identifier_column()]
        source, harvest = self._harvest(names, auxiliary, name_column)
        release_view = private.release_view()
        config = AttackConfig(
            release_inputs=tuple(release_view.schema.numeric_quasi_identifiers),
            auxiliary_inputs=tuple(source.attribute_names),
            output_name=private.schema.sensitive_attribute,
            output_universe=(low, high),
            engine="mamdani",
        )
        fred = FREDAnonymizer(
            source,
            config,
            FREDConfig(
                levels=tuple(range(kmin, kmax + 1)),
                protection_threshold=protection_threshold,
                utility_threshold=utility_threshold,
                objective=WeightedObjective(protection_weight, utility_weight),
                anonymizer=ALGORITHMS[algorithm](),
                stop_below_utility=utility_threshold is not None,
                parallelism=parallelism,
            ),
        )
        result = fred.run(private, harvest=harvest)
        payload = result.to_dict()
        payload["dataset"] = fingerprint
        payload["auxiliary"] = auxiliary
        payload["algorithm"] = algorithm
        return payload

    def job_status(self, job_id: str) -> dict[str, object]:
        """Snapshot of one asynchronous job.

        Falls back to the shared job store (when a cache directory is
        configured), so a worker of a multi-process front answers polls for
        jobs accepted — and owned — by a sibling worker.
        """
        return self._jobs.status(job_id)

    def list_jobs(self) -> list[dict[str, object]]:
        """Compact snapshots of every known job (local plus shared store).

        Result payloads are omitted from store-only entries — listing is a
        cheap overview; poll ``job_status`` for a specific job's result.
        """
        listing = []
        for snapshot in self._jobs.jobs():
            compact = {k: v for k, v in snapshot.items() if k != "result"}
            listing.append(compact)
        return listing

    def wait_for_job(self, job_id: str, timeout: float | None = None) -> dict[str, object]:
        """Block until a job finishes and return its snapshot (for tests/CLI)."""
        return self._jobs.wait(job_id, timeout=timeout)

    # Lifecycle / introspection -------------------------------------------------

    def stats(self) -> dict[str, object]:
        """Service counters: datasets, cache behaviour, job states, linkage."""
        from repro.linkage.kernels import kernel_backend_info
        from repro.linkage.shm import shared_memory_available

        with self._datasets_lock:
            dataset_count = len(self._datasets)
        jobs = self._jobs.jobs()
        return {
            "pid": os.getpid(),
            "datasets": dataset_count,
            "cache": self._cache.stats(),
            "appends": {
                "count": self._appends,
                "rows": self._append_rows,
                "invalidated_entries": self._append_invalidated,
            },
            "linkage": {
                "kernel_backend": kernel_backend_info(),
                "shared_memory": shared_memory_available(),
            },
            "jobs": {
                "total": len(jobs),
                "by_status": {
                    status: sum(1 for j in jobs if j["status"] == status)
                    for status in sorted({str(j["status"]) for j in jobs})
                },
            },
        }

    def close(self, wait: bool = True) -> None:
        """Shut the service down, draining in-flight jobs when ``wait`` is set."""
        if self._closed:
            return
        self._closed = True
        self._jobs.shutdown(wait=wait)
