"""Threaded JSON/HTTP front end of the anonymization service.

A deliberately small stdlib server (``http.server.ThreadingHTTPServer``) —
no web framework is available offline, and none is needed for a JSON API of
this size.  Each request runs on its own thread; all shared state lives in
:class:`~repro.service.core.AnonymizationService`, whose cache serializes
duplicate work (single-flight) while letting distinct requests proceed in
parallel.

Endpoints
---------
=======  =======================  ==================================================
Method   Path                     Meaning
=======  =======================  ==================================================
GET      ``/healthz``             liveness probe
GET      ``/stats``               dataset/cache/job counters
GET      ``/datasets``            registered datasets
POST     ``/datasets``            register a dataset (CSV or JSONL body, streamed)
GET      ``/datasets/<fp>``       one dataset's description
DELETE   ``/datasets/<fp>``       unregister a dataset (frees its registry slot)
POST     ``/append/<fp>``         append rows to a dataset (chained fingerprint;
                                  ``?mode=async`` returns ``202`` + job id)
POST     ``/release``             anonymized release (JSON body; CSV or JSON reply)
POST     ``/attack``              fusion-attack estimates against a release
POST     ``/fred``                launch a FRED sweep job (``202`` + job id)
GET      ``/jobs``                list all known jobs (compact, no results)
GET      ``/jobs/<id>``           poll a job
=======  =======================  ==================================================

Upload streaming: ``POST /datasets`` reads the request body in fixed-size
chunks, decodes it incrementally and feeds *lines* to the streaming parsers
in :mod:`repro.dataset.io` — the full body never needs to exist as one
string, so registration handles datasets much larger than any socket buffer.
The body format is taken from the ``Content-Type`` header
(``text/csv`` / ``application/jsonl``) or a ``?format=`` query parameter.

Response streaming: ``/release`` bodies past ``stream_threshold_bytes`` go
out with ``Transfer-Encoding: chunked`` in fixed-size segments, so peak
memory per connection is bounded by one segment even for a multi-hundred-MB
release — the cached CSV is typically a :class:`memoryview` over the spill
mapping, so the bytes flow from the page cache to the socket without ever
being materialized.  A client that disconnects mid-chunk is dropped cleanly.

Multi-process front: ``ServiceServer(workers=N, config=...)`` binds the
listening socket with ``SO_REUSEPORT`` and pre-forks ``N - 1`` worker
processes (spawn start method) that each bind the *same* address — the
kernel load-balances connections across the processes.  Workers share the
spill directory (and the dataset store under it) as the common cache tier;
the in-memory single-flight tier stays per-process, so each artifact is
computed at most once per process and usually exactly once per cluster
(spill writes are atomic renames, making the cross-process race a benign
double-write).  Asynchronous FRED jobs are **cluster-visible**: every
lifecycle transition is published to the shared job store under the spill
directory (:mod:`repro.service.jobstore`), so ``GET /jobs/<id>`` — and the
``GET /jobs`` listing — is answered correctly by *any* worker, regardless of
which one accepted the submit; owner heartbeats turn a dead worker's
in-flight jobs into ``failed`` instead of an eternal ``running``.  The
``X-Repro-Worker: <pid>`` response header is kept for observability only —
no routing decision depends on it.  Because ``SO_REUSEPORT`` balances per
*connection*, a long keep-alive client rides one worker forever;
``max_keepalive_requests`` (``serve --max-keepalive``) caps the requests per
connection so such clients periodically reconnect and re-balance.

Library errors map to JSON error responses: :class:`ServiceError` subclasses
for unknown datasets/jobs become ``404``, every other
:class:`~repro.exceptions.ReproError` becomes ``400``; unexpected exceptions
become ``500`` without taking the server down.
"""

from __future__ import annotations

import codecs
import json
import multiprocessing
import os
import socket
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Iterator
from urllib.parse import parse_qs, urlparse

from repro.exceptions import (
    PayloadTooLargeError,
    ReproError,
    ServiceError,
    UnknownDatasetError,
    UnknownJobError,
)
from repro.service.core import AnonymizationService, ServiceConfig

__all__ = [
    "ServiceServer",
    "build_server",
    "DEFAULT_MAX_BODY_BYTES",
    "DEFAULT_STREAM_THRESHOLD_BYTES",
]

#: Upload bodies are read from the socket in chunks of this many bytes.
UPLOAD_CHUNK_BYTES = 64 * 1024

#: Default request-body size limit; requests beyond it get a 413 reply.
DEFAULT_MAX_BODY_BYTES = 64 * 1024 * 1024

#: Response bodies at or above this size stream out chunked by default.
DEFAULT_STREAM_THRESHOLD_BYTES = 1024 * 1024

#: Segment size of a chunked response body.
STREAM_CHUNK_BYTES = 256 * 1024


def _iter_body_lines(rfile, content_length: int, chunk_bytes: int = UPLOAD_CHUNK_BYTES) -> Iterator[str]:
    """Yield decoded text lines from a request body, reading chunk by chunk.

    Lines are yielded with their trailing newline so the CSV machinery can
    reassemble quoted fields that span physical lines; the final partial line
    (no trailing newline) is yielded last.  Bodies that are not valid UTF-8
    are rejected rather than silently mangled — in a content-addressed store
    a corrupted upload would be cached as canonical forever.
    """
    decoder = codecs.getincrementaldecoder("utf-8")(errors="strict")
    pending = ""
    remaining = content_length
    try:
        while remaining > 0:
            chunk = rfile.read(min(chunk_bytes, remaining))
            if not chunk:
                raise ServiceError(
                    f"request body truncated: expected {content_length} bytes, "
                    f"received {content_length - remaining}"
                )
            remaining -= len(chunk)
            pending += decoder.decode(chunk)
            while True:
                newline = pending.find("\n")
                if newline < 0:
                    break
                yield pending[: newline + 1]
                pending = pending[newline + 1 :]
        pending += decoder.decode(b"", final=True)
    except UnicodeDecodeError as exc:
        raise ServiceError(f"dataset upload is not valid UTF-8: {exc}") from exc
    if pending:
        yield pending


class _Handler(BaseHTTPRequestHandler):
    """Routes requests onto the shared :class:`AnonymizationService`."""

    protocol_version = "HTTP/1.1"
    server: "ServiceServer"

    # -- plumbing ---------------------------------------------------------------

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        if self.server.verbose:  # pragma: no cover - logging side effect only
            super().log_message(format, *args)

    def _send(self, status: int, payload: bytes | memoryview, content_type: str) -> None:
        try:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(payload)))
            self.send_header("X-Repro-Worker", str(os.getpid()))
            if self.close_connection:
                # Error paths may leave unread body bytes on the socket; telling
                # the client the connection is done prevents keep-alive desync.
                self.send_header("Connection", "close")
            self.end_headers()
            self.wfile.write(payload)
        except (BrokenPipeError, ConnectionResetError, ConnectionError):
            # The client hung up mid-reply.  The response cannot be delivered
            # and the socket is dead, so just mark the connection closed; a
            # traceback here would spam the log for a routine disconnect.
            self.close_connection = True

    def _send_payload(
        self, status: int, payload: bytes | memoryview, content_type: str
    ) -> None:
        """Send a body, streaming it chunked when it is large.

        Bodies at or above the server's ``stream_threshold_bytes`` go out
        with ``Transfer-Encoding: chunked`` in ``STREAM_CHUNK_BYTES``
        segments (HTTP/1.1 clients only — a 1.0 client gets the buffered
        reply), bounding peak per-connection memory: the payload is sliced
        as views, never copied wholesale.
        """
        threshold = self.server.stream_threshold_bytes
        if len(payload) < threshold or self.request_version != "HTTP/1.1":
            self._send(status, payload, content_type)
            return
        try:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Transfer-Encoding", "chunked")
            self.send_header("X-Repro-Worker", str(os.getpid()))
            if self.close_connection:
                # The keep-alive request cap (or an earlier error) decided
                # this connection ends after the reply; tell the client.
                self.send_header("Connection", "close")
            self.end_headers()
            view = memoryview(payload)
            for start in range(0, len(view), STREAM_CHUNK_BYTES):
                segment = view[start : start + STREAM_CHUNK_BYTES]
                self.wfile.write(f"{len(segment):X}\r\n".encode("ascii"))
                self.wfile.write(segment)
                self.wfile.write(b"\r\n")
            self.wfile.write(b"0\r\n\r\n")
        except (BrokenPipeError, ConnectionResetError, ConnectionError):
            # Client disconnected mid-chunk: drop the connection quietly —
            # same contract as the buffered path.
            self.close_connection = True

    def _send_json(self, status: int, document: object) -> None:
        self._send(
            status,
            json.dumps(document).encode("utf-8"),
            "application/json; charset=utf-8",
        )

    def _send_error_json(self, status: int, message: str) -> None:
        self._send_json(status, {"error": message})

    def _content_length(self) -> int:
        """The request's Content-Length as a validated, bounded integer.

        Malformed or negative values are client errors (400), not server
        crashes; values beyond the configured body limit are refused up
        front with 413 instead of streaming an unbounded body into memory.
        """
        raw = (self.headers.get("Content-Length") or "0").strip()
        try:
            length = int(raw)
        except ValueError:
            raise ServiceError(f"invalid Content-Length header: {raw!r}") from None
        if length < 0:
            raise ServiceError(f"invalid Content-Length header: {raw!r}")
        limit = self.server.max_body_bytes
        if length > limit:
            raise PayloadTooLargeError(
                f"request body of {length} bytes exceeds the limit of {limit} bytes"
            )
        return length

    def _read_json_body(self) -> dict:
        length = self._content_length()
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ServiceError("request body must be a JSON object")
        try:
            document = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ServiceError(f"invalid JSON body: {exc}") from exc
        if not isinstance(document, dict):
            raise ServiceError("request body must be a JSON object")
        return document

    def _dispatch(self, handler) -> None:
        cap = self.server.max_keepalive_requests
        if cap is not None:
            # SO_REUSEPORT balances per *connection*: a keep-alive client
            # would ride the worker that accepted it forever.  Counting
            # requests per connection and closing at the cap makes long-lived
            # clients reconnect periodically and re-balance across workers.
            served = getattr(self, "_requests_on_connection", 0) + 1
            self._requests_on_connection = served
            if served >= cap:
                self.close_connection = True
        try:
            handler()
        except (UnknownDatasetError, UnknownJobError) as error:
            self._send_error_safely(404, str(error))
        except PayloadTooLargeError as error:
            self._send_error_safely(413, str(error))
        except ReproError as error:
            self._send_error_safely(400, str(error))
        except (BrokenPipeError, ConnectionError):  # pragma: no cover - client went away
            self.close_connection = True
        except Exception as error:  # pragma: no cover - defensive
            self._send_error_safely(500, f"internal error: {error}")

    def _send_error_safely(self, status: int, message: str) -> None:
        """Send an error reply, tolerating a client that already hung up.

        Error replies always close the connection: a failure mid-upload can
        leave part of the request body unread, and a kept-alive connection
        would misparse those leftover bytes as the next request.
        """
        self.close_connection = True
        try:
            self._send_error_json(status, message)
        except (BrokenPipeError, ConnectionError, OSError):  # pragma: no cover
            pass

    # -- routing ----------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._dispatch(self._route_get)

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._dispatch(self._route_post)

    def do_DELETE(self) -> None:  # noqa: N802 - http.server API
        self._dispatch(self._route_delete)

    def _route_delete(self) -> None:
        parsed = urlparse(self.path)
        parts = [p for p in parsed.path.split("/") if p]
        if len(parts) == 2 and parts[0] == "datasets":
            self._send_json(200, self.server.service.unregister(parts[1]))
        else:
            self._send_error_json(404, f"unknown path: {parsed.path}")

    def _route_get(self) -> None:
        service = self.server.service
        parsed = urlparse(self.path)
        parts = [p for p in parsed.path.split("/") if p]
        if parts == ["healthz"]:
            self._send_json(200, {"status": "ok"})
        elif parts == ["stats"]:
            self._send_json(200, service.stats())
        elif parts == ["datasets"]:
            self._send_json(200, {"datasets": service.list_datasets()})
        elif len(parts) == 2 and parts[0] == "datasets":
            self._send_json(200, service.dataset_info(parts[1]))
        elif parts == ["jobs"]:
            self._send_json(200, {"jobs": service.list_jobs()})
        elif len(parts) == 2 and parts[0] == "jobs":
            self._send_json(200, service.job_status(parts[1]))
        else:
            self._send_error_json(404, f"unknown path: {parsed.path}")

    def _route_post(self) -> None:
        parsed = urlparse(self.path)
        parts = [p for p in parsed.path.split("/") if p]
        if parts == ["datasets"]:
            self._post_dataset(parse_qs(parsed.query))
        elif len(parts) == 2 and parts[0] == "append":
            self._post_append(parts[1], parse_qs(parsed.query))
        elif parts == ["release"]:
            self._post_release()
        elif parts == ["attack"]:
            self._post_attack()
        elif parts == ["fred"]:
            self._post_fred()
        else:
            self._send_error_json(404, f"unknown path: {parsed.path}")

    # -- endpoint bodies --------------------------------------------------------

    def _post_dataset(self, query: dict[str, list[str]]) -> None:
        content_type = (self.headers.get("Content-Type") or "").split(";")[0].strip()
        if query.get("format"):
            fmt = query["format"][0]
        elif content_type in ("application/jsonl", "application/x-ndjson"):
            fmt = "jsonl"
        else:
            fmt = "csv"
        label = query.get("label", [""])[0]
        length = self._content_length()
        if length <= 0:
            raise ServiceError("dataset upload requires a non-empty body")
        lines = _iter_body_lines(self.rfile, length)
        info = self.server.service.register_stream(lines, fmt=fmt, label=label)
        self._send_json(201 if info["created"] else 200, info)

    def _post_append(self, fingerprint: str, query: dict[str, list[str]]) -> None:
        """Stream delta rows onto a registered dataset (see ``append_stream``).

        The body is the same streamed CSV/JSONL as ``POST /datasets``; the
        reply carries the new chained fingerprint and the superseded one.
        ``?mode=async`` submits the append to the job pool instead and
        replies ``202`` with a job id — useful when the invalidation sweep
        over a large spill tier should not hold the upload connection open.
        """
        content_type = (self.headers.get("Content-Type") or "").split(";")[0].strip()
        if query.get("format"):
            fmt = query["format"][0]
        elif content_type in ("application/jsonl", "application/x-ndjson"):
            fmt = "jsonl"
        else:
            fmt = "csv"
        label = query.get("label", [None])[0]
        mode = query.get("mode", ["sync"])[0]
        if mode not in ("sync", "async"):
            raise ServiceError(f"unknown append mode {mode!r}; options: ['sync', 'async']")
        length = self._content_length()
        if length <= 0:
            raise ServiceError("append requires a non-empty body")
        lines = _iter_body_lines(self.rfile, length)
        if mode == "async":
            job_id = self.server.service.start_append(
                fingerprint, lines, fmt=fmt, label=label
            )
            self._send_json(202, {"job": job_id, "poll": f"/jobs/{job_id}"})
            return
        info = self.server.service.append_stream(
            fingerprint, lines, fmt=fmt, label=label
        )
        self._send_json(200, info)

    def _post_release(self) -> None:
        body = self._read_json_body()
        dataset = self._required(body, "dataset")
        k = self._required_int(body, "k")
        algorithm = body.get("algorithm", "mdav")
        style = body.get("style", "interval")
        fmt = body.get("format", "csv")
        if fmt == "csv":
            # The cached CSV bytes — possibly a memoryview over the spill
            # mapping — go straight to the socket, chunked when large.
            payload = self.server.service.release_csv(
                dataset, k, algorithm=algorithm, style=style
            )
            self._send_payload(200, payload, "text/csv; charset=utf-8")
            return
        artifact = self.server.service.release(
            dataset, k, algorithm=algorithm, style=style
        )
        if fmt == "info":
            self._send_json(200, artifact.info())
        elif fmt == "json":
            document = artifact.info()
            document["rows_data"] = [
                {name: _json_cell(value) for name, value in row.items()}
                for row in artifact.table.rows()
            ]
            self._send_json(200, document)
        else:
            raise ServiceError(
                f"unknown release format {fmt!r}; options: ['csv', 'info', 'json']"
            )

    def _post_attack(self) -> None:
        body = self._read_json_body()
        result = self.server.service.attack(
            self._required(body, "dataset"),
            self._required(body, "auxiliary"),
            self._required_int(body, "k"),
            algorithm=body.get("algorithm", "mdav"),
            style=body.get("style", "interval"),
            name_column=body.get("name_column", "name"),
            sensitive_name=body.get("sensitive_name", "sensitive_estimate"),
            sensitive_low=body.get("sensitive_low"),
            sensitive_high=body.get("sensitive_high"),
            engine=body.get("engine", "mamdani"),
        )
        self._send_json(200, result)

    def _post_fred(self) -> None:
        body = self._read_json_body()
        job_id = self.server.service.start_fred(
            self._required(body, "dataset"),
            self._required(body, "auxiliary"),
            kmin=self._int_field(body, "kmin", 2),
            kmax=self._int_field(body, "kmax", 16),
            algorithm=body.get("algorithm", "mdav"),
            name_column=body.get("name_column", "name"),
            sensitive_low=body.get("sensitive_low"),
            sensitive_high=body.get("sensitive_high"),
            protection_weight=self._number_field(body, "protection_weight", 0.5),
            utility_weight=self._number_field(body, "utility_weight", 0.5),
            protection_threshold=body.get("protection_threshold"),
            utility_threshold=body.get("utility_threshold"),
            parallelism=body.get("parallelism"),
        )
        self._send_json(202, {"job": job_id, "poll": f"/jobs/{job_id}"})

    @staticmethod
    def _required(body: dict, field: str) -> str:
        value = body.get(field)
        if not isinstance(value, str) or not value:
            raise ServiceError(f"request body must set {field!r}")
        return value

    @staticmethod
    def _required_int(body: dict, field: str) -> int:
        value = body.get(field)
        if not isinstance(value, int) or isinstance(value, bool):
            raise ServiceError(f"request body must set integer {field!r}")
        return value

    @staticmethod
    def _int_field(body: dict, field: str, default: int) -> int:
        value = body.get(field, default)
        if not isinstance(value, int) or isinstance(value, bool):
            raise ServiceError(f"field {field!r} must be an integer, got {value!r}")
        return value

    @staticmethod
    def _number_field(body: dict, field: str, default: float) -> float:
        value = body.get(field, default)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ServiceError(f"field {field!r} must be a number, got {value!r}")
        return float(value)


def _json_cell(value: object) -> object:
    """Render a release cell for JSON replies (paper-style text for cells)."""
    if value is None or isinstance(value, (int, float, str, bool)):
        return value
    return str(value)


def _worker_main(
    host: str,
    port: int,
    config: ServiceConfig,
    verbose: bool,
    max_body_bytes: int,
    stream_threshold_bytes: int,
    max_keepalive_requests: int | None,
) -> None:  # pragma: no cover - runs in a spawned worker process
    """Entry point of one spawned worker: build a service, share the port."""
    service = AnonymizationService.from_config(config)
    server = ServiceServer(
        (host, port),
        service,
        verbose=verbose,
        max_body_bytes=max_body_bytes,
        stream_threshold_bytes=stream_threshold_bytes,
        max_keepalive_requests=max_keepalive_requests,
        reuse_port=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        service.close(wait=False)


class ServiceServer(ThreadingHTTPServer):
    """The HTTP server bound to one :class:`AnonymizationService`.

    Single-process by default (one process, a thread per connection).  With
    ``workers=N`` (requires a picklable ``config`` whose ``cache_dir`` is
    set) the listening socket is bound with ``SO_REUSEPORT`` and ``N - 1``
    sibling processes are spawned, each binding the same address and running
    its own service over the shared spill directory.

    ``serve_in_background`` starts ``serve_forever`` on a daemon thread and
    returns, which is how tests, benchmarks and the CLI's smoke mode drive
    it; ``close`` performs the clean shutdown sequence (stop accepting,
    terminate workers, drain the HTTP loop, then drain in-flight jobs).
    """

    daemon_threads = True
    # http.server's default listen backlog of 5 drops SYNs when more clients
    # connect at once than the queue holds, and the kernel's 1-second SYN
    # retransmit turns a sub-millisecond cached request into a 1s stall.
    request_queue_size = 128

    def __init__(
        self,
        address: tuple[str, int],
        service: AnonymizationService,
        verbose: bool = False,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
        stream_threshold_bytes: int = DEFAULT_STREAM_THRESHOLD_BYTES,
        workers: int = 1,
        config: ServiceConfig | None = None,
        reuse_port: bool = False,
        max_keepalive_requests: int | None = None,
    ) -> None:
        if max_body_bytes < 1:
            raise ServiceError(
                f"max_body_bytes must be >= 1, got {max_body_bytes}"
            )
        if stream_threshold_bytes < 1:
            raise ServiceError(
                f"stream_threshold_bytes must be >= 1, got {stream_threshold_bytes}"
            )
        if max_keepalive_requests is not None and max_keepalive_requests < 1:
            raise ServiceError(
                f"max_keepalive_requests must be >= 1, got {max_keepalive_requests}"
            )
        if workers < 1:
            raise ServiceError(f"workers must be >= 1, got {workers}")
        if workers > 1:
            if not hasattr(socket, "SO_REUSEPORT"):
                raise ServiceError(
                    "multi-process serving requires SO_REUSEPORT, which this "
                    "platform does not provide"
                )
            if config is None or config.cache_dir is None:
                raise ServiceError(
                    "multi-process serving requires a ServiceConfig with a "
                    "cache_dir — the spill directory is the workers' shared "
                    "cache tier"
                )
        self._reuse_port = reuse_port or workers > 1
        super().__init__(address, _Handler, bind_and_activate=False)
        try:
            self.server_bind()
            self.server_activate()
        except BaseException:
            self.server_close()
            raise
        self.service = service
        self.verbose = verbose
        self.max_body_bytes = max_body_bytes
        self.stream_threshold_bytes = stream_threshold_bytes
        self.max_keepalive_requests = max_keepalive_requests
        self.workers = workers
        self._config = config
        self._thread: threading.Thread | None = None
        self._children: list[multiprocessing.process.BaseProcess] = []
        self._children_started = False

    def server_bind(self) -> None:
        if self._reuse_port and hasattr(socket, "SO_REUSEPORT"):
            self.socket.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        super().server_bind()

    @property
    def port(self) -> int:
        """The bound port (useful when constructed with port 0)."""
        return self.server_address[1]

    def start_workers(self) -> None:
        """Spawn the ``workers - 1`` sibling processes (idempotent).

        The spawn start method (not fork) keeps the children independent of
        this process's thread and lock state; each child builds its own
        service from the picklable config and binds the already-bound
        address via ``SO_REUSEPORT``.
        """
        if self._children_started or self.workers <= 1:
            return
        self._children_started = True
        context = multiprocessing.get_context("spawn")
        host = self.server_address[0]
        for _ in range(self.workers - 1):
            process = context.Process(
                target=_worker_main,
                args=(
                    host,
                    self.port,
                    self._config,
                    self.verbose,
                    self.max_body_bytes,
                    self.stream_threshold_bytes,
                    self.max_keepalive_requests,
                ),
                daemon=True,
            )
            process.start()
            self._children.append(process)

    def worker_pids(self) -> list[int]:
        """The pids serving this address (this process plus live children)."""
        pids = [os.getpid()]
        pids.extend(p.pid for p in self._children if p.pid is not None and p.is_alive())
        return pids

    def serve_forever(self, poll_interval: float = 0.5) -> None:
        self.start_workers()
        super().serve_forever(poll_interval=poll_interval)

    def serve_in_background(self) -> "ServiceServer":
        """Run ``serve_forever`` on a daemon thread and return ``self``."""
        self.start_workers()
        thread = threading.Thread(
            target=self.serve_forever, name="repro-serve", daemon=True
        )
        thread.start()
        self._thread = thread
        return self

    def close(self, wait_jobs: bool = True) -> None:
        """Stop serving, stop workers, join the loop, drain service jobs."""
        for process in self._children:
            if process.is_alive():
                process.terminate()
        for process in self._children:
            process.join(timeout=10)
            if process.is_alive():  # pragma: no cover - defensive
                process.kill()
                process.join(timeout=5)
        self._children.clear()
        self.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None
        self.server_close()
        self.service.close(wait=wait_jobs)


def build_server(
    host: str = "127.0.0.1",
    port: int = 8080,
    service: AnonymizationService | None = None,
    verbose: bool = False,
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
    stream_threshold_bytes: int = DEFAULT_STREAM_THRESHOLD_BYTES,
    workers: int = 1,
    config: ServiceConfig | None = None,
    max_keepalive_requests: int | None = None,
) -> ServiceServer:
    """Construct a :class:`ServiceServer` (and a default service if needed).

    With ``workers > 1``, ``config`` describes the per-worker services; when
    no explicit ``service`` is passed, this process's service is built from
    the same config, so all workers are identical.
    """
    if service is None:
        service = (
            AnonymizationService.from_config(config)
            if config is not None
            else AnonymizationService()
        )
    return ServiceServer(
        (host, port),
        service,
        verbose=verbose,
        max_body_bytes=max_body_bytes,
        stream_threshold_bytes=stream_threshold_bytes,
        workers=workers,
        config=config,
        max_keepalive_requests=max_keepalive_requests,
    )
