"""The serving tier: a long-lived, job-oriented anonymization service.

This package turns the one-shot anonymize → attack → FRED pipeline into a
production-shaped service:

* :mod:`repro.service.core` — the thread-safe service façade: a dataset
  registry keyed by content fingerprint, memoized releases / attack runs /
  FRED sweeps, asynchronous job execution, and incremental appends
  (``POST /append/<fingerprint>``) that chain the content fingerprint,
  invalidate exactly the superseded cache entries, and tombstone the old
  fingerprint in the shared store so sibling workers never serve it stale;
* :mod:`repro.service.cache` — the two-tier (LRU + disk-spill) result cache
  with single-flight computation, the mechanism behind exactly-once work
  under concurrent identical requests;
* :mod:`repro.service.codec` — the array-native spill container: large
  cached artifacts serialize as aligned column buffers and load back as
  zero-copy views over one shared memory mapping;
* :mod:`repro.service.jobs` — the bounded worker pool running FRED sweeps
  as pollable jobs;
* :mod:`repro.service.jobstore` — the spill-dir-backed shared job records
  (plus owner heartbeats) that make every job pollable from every worker of
  a multi-process front, even after its owner died;
* :mod:`repro.service.http` — the stdlib JSON/HTTP front end
  (``repro serve`` on the command line), single-process threaded or
  multi-process via ``SO_REUSEPORT`` (``workers=N``), with chunked
  streaming of large release bodies.
"""

from repro.service.cache import TwoTierCache
from repro.service.core import (
    ALGORITHMS,
    AnonymizationService,
    ReleaseArtifact,
    ServiceConfig,
)
from repro.service.http import ServiceServer, build_server
from repro.service.jobs import Job, JobManager
from repro.service.jobstore import JobStore

__all__ = [
    "ALGORITHMS",
    "AnonymizationService",
    "ReleaseArtifact",
    "ServiceConfig",
    "TwoTierCache",
    "Job",
    "JobManager",
    "JobStore",
    "ServiceServer",
    "build_server",
]
