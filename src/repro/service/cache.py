"""Two-tier result cache with single-flight computation.

The anonymization service memoizes every expensive artifact — releases,
attack estimates, FRED sweeps — by a structured key built from the dataset's
content fingerprint plus the full request configuration
(``(fingerprint, artifact, algorithm, level, config...)``).  The cache has
two tiers:

* an **in-process LRU** bounded by entry count (the hot tier every request
  hits first);
* an optional **on-disk spill** directory holding pickled entries keyed by
  the sha256 of the cache key, so results survive LRU eviction and process
  restarts.

Concurrency: lookups and computations go through :meth:`TwoTierCache.get_or_compute`,
which implements **single-flight** semantics — when N threads miss on the
same key simultaneously, exactly one of them (the *leader*) computes the
value while the rest wait on it, so a cache stampede can never run the same
anonymization twice.  Failures are propagated to every waiter but are *not*
cached; a later request retries the computation.  The counters exposed by
:meth:`TwoTierCache.stats` make the exactly-once property observable (and
testable): ``computations`` counts actual executions, ``coalesced_waits``
counts requests that piggybacked on another thread's in-flight computation.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Callable, TypeVar

from repro.exceptions import ServiceError

__all__ = ["TwoTierCache"]

T = TypeVar("T")

#: Cache keys are flat tuples of primitives so they hash, order and
#: serialize deterministically.
CacheKey = tuple


class _InFlight:
    """A computation in progress: waiters block on ``event`` for the outcome."""

    __slots__ = ("event", "value", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.value: object = None
        self.error: BaseException | None = None


class TwoTierCache:
    """In-process LRU + optional on-disk spill, with single-flight computes.

    Parameters
    ----------
    capacity:
        Maximum number of entries held in memory; the least recently used
        entry is evicted first.  Evicted entries remain retrievable from the
        spill directory when one is configured.
    spill_dir:
        Optional directory for the persistent tier.  Entries are pickled as
        ``(key, value)`` pairs under the sha256 of the key and written
        atomically (temp file + rename), so concurrent writers and abrupt
        shutdowns never leave a torn entry.
    """

    def __init__(self, capacity: int = 128, spill_dir: str | Path | None = None) -> None:
        if capacity < 1:
            raise ServiceError(f"cache capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._spill_dir = Path(spill_dir) if spill_dir is not None else None
        if self._spill_dir is not None:
            self._spill_dir.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._memory: OrderedDict[CacheKey, object] = OrderedDict()
        self._inflight: dict[CacheKey, _InFlight] = {}
        self._memory_hits = 0
        self._disk_hits = 0
        self._misses = 0
        self._computations = 0
        self._coalesced_waits = 0

    # Lookup / computation ------------------------------------------------------

    def get(self, key: CacheKey) -> object | None:
        """The cached value for ``key`` (memory, then disk), or ``None``."""
        with self._lock:
            if key in self._memory:
                self._memory.move_to_end(key)
                self._memory_hits += 1
                return self._memory[key]
        found, value = self._load_spilled(key)
        if found:
            with self._lock:
                self._disk_hits += 1
                self._store_memory(key, value)
        return value

    def get_or_compute(self, key: CacheKey, compute: Callable[[], T]) -> T:
        """Return the cached value for ``key``, computing it at most once.

        Concurrent callers with the same key coalesce onto a single
        computation; callers with different keys proceed independently.  The
        computation runs outside the cache lock, so a slow anonymization
        never blocks unrelated lookups.
        """
        while True:
            with self._lock:
                if key in self._memory:
                    self._memory.move_to_end(key)
                    self._memory_hits += 1
                    return self._memory[key]  # type: ignore[return-value]
                flight = self._inflight.get(key)
                if flight is None:
                    flight = _InFlight()
                    self._inflight[key] = flight
                    leader = True
                else:
                    self._coalesced_waits += 1
                    leader = False
            if not leader:
                flight.event.wait()
                if flight.error is not None:
                    raise flight.error
                if flight.value is not _SENTINEL:
                    return flight.value  # type: ignore[return-value]
                continue  # leader aborted without a value; retry
            try:
                found, value = self._load_spilled(key)
                if found:
                    with self._lock:
                        self._disk_hits += 1
                else:
                    with self._lock:
                        self._misses += 1
                    value = compute()
                    with self._lock:
                        self._computations += 1
                    self._spill(key, value)
                with self._lock:
                    self._store_memory(key, value)
                    del self._inflight[key]
                flight.value = value
                flight.event.set()
                return value  # type: ignore[return-value]
            except BaseException as error:
                with self._lock:
                    self._inflight.pop(key, None)
                flight.value = _SENTINEL
                flight.error = error
                flight.event.set()
                raise

    # Introspection -------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)

    def stats(self) -> dict[str, int]:
        """Counter snapshot proving cache behaviour (hits, misses, coalescing)."""
        with self._lock:
            return {
                "capacity": self._capacity,
                "entries": len(self._memory),
                "memory_hits": self._memory_hits,
                "disk_hits": self._disk_hits,
                "misses": self._misses,
                "computations": self._computations,
                "coalesced_waits": self._coalesced_waits,
            }

    def clear(self) -> None:
        """Drop the in-memory tier (spilled entries are kept)."""
        with self._lock:
            self._memory.clear()

    # Internals -----------------------------------------------------------------

    def _store_memory(self, key: CacheKey, value: object) -> None:
        """Install ``value`` under ``key`` and evict LRU overflow.  Lock held."""
        self._memory[key] = value
        self._memory.move_to_end(key)
        while len(self._memory) > self._capacity:
            self._memory.popitem(last=False)

    def _spill_path(self, key: CacheKey) -> Path:
        digest = hashlib.sha256(repr(key).encode("utf-8")).hexdigest()
        assert self._spill_dir is not None
        return self._spill_dir / f"{digest}.pkl"

    def _spill(self, key: CacheKey, value: object) -> None:
        if self._spill_dir is None:
            return
        path = self._spill_path(key)
        temp = path.with_suffix(f".tmp.{os.getpid()}.{threading.get_ident()}")
        try:
            with temp.open("wb") as handle:
                pickle.dump((key, value), handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(temp, path)
        except (OSError, pickle.PicklingError):
            temp.unlink(missing_ok=True)  # spill is best-effort; memory tier holds the value

    def _load_spilled(self, key: CacheKey) -> tuple[bool, object | None]:
        """Load the spilled entry for ``key`` as a ``(found, value)`` pair.

        The explicit hit flag keeps a legitimately cached ``None`` value
        distinguishable from a miss — returning the bare value would make
        every lookup of such an entry recompute (and re-spill) it forever.
        """
        if self._spill_dir is None:
            return False, None
        path = self._spill_path(key)
        try:
            with path.open("rb") as handle:
                stored_key, value = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError, ValueError):
            return False, None
        if stored_key != key:  # sha collision or foreign file: ignore
            return False, None
        return True, value


class _Sentinel:
    __slots__ = ()


#: Marks an in-flight slot whose leader failed (waiters retry or re-raise).
_SENTINEL = _Sentinel()
