"""Two-tier result cache with single-flight computation.

The anonymization service memoizes every expensive artifact — releases,
attack estimates, FRED sweeps — by a structured key built from the dataset's
content fingerprint plus the full request configuration
(``(fingerprint, artifact, algorithm, level, config...)``).  The cache has
two tiers:

* an **in-process LRU** bounded by entry count (the hot tier every request
  hits first);
* an optional **on-disk spill** directory holding entries keyed by the
  sha256 of the cache key, so results survive LRU eviction and process
  restarts.  Large array-bearing values (release tables, rendered CSV
  bytes, estimate vectors) spill through the structured container codec
  (:mod:`repro.service.codec`) and load back as zero-copy views over one
  memory mapping; everything else spills as a pickled ``(key, value)``
  pair.  Writes are atomic (temp file + rename) either way, so the spill
  directory can be *shared between worker processes* — the multi-process
  HTTP front uses it as the common cache tier, with cross-process races
  reduced to harmless double-writes of identical content.

The spill directory is optionally garbage-collected: give the cache a
``max_spill_bytes`` / ``max_spill_entries`` budget and the least recently
*used* files (by mtime — loads touch the file) are evicted after each spill
write.  Evicting a file another process still maps is safe: the mapping
keeps the pages alive until released.

Concurrency: lookups and computations go through :meth:`TwoTierCache.get_or_compute`,
which implements **single-flight** semantics — when N threads miss on the
same key simultaneously, exactly one of them (the *leader*) computes the
value while the rest wait on it, so a cache stampede can never run the same
anonymization twice.  Failures are propagated to every waiter but are *not*
cached; a later request retries the computation.  The counters exposed by
:meth:`TwoTierCache.stats` make the exactly-once property observable (and
testable): ``computations`` counts actual executions, ``coalesced_waits``
counts requests that piggybacked on another thread's in-flight computation.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Callable, TypeVar

from repro.exceptions import ServiceError
from repro.service.codec import SPILL_CONTAINER_SUFFIX, decode_entry, encode_entry

__all__ = ["TwoTierCache"]

#: Spill suffixes subject to garbage collection (other files — the dataset
#: store subdirectory, in-flight temp files — are never touched).
_SPILL_SUFFIXES = (".pkl", SPILL_CONTAINER_SUFFIX)

T = TypeVar("T")

#: Cache keys are flat tuples of primitives so they hash, order and
#: serialize deterministically.
CacheKey = tuple


class _InFlight:
    """A computation in progress: waiters block on ``event`` for the outcome."""

    __slots__ = ("event", "value", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.value: object = None
        self.error: BaseException | None = None


class TwoTierCache:
    """In-process LRU + optional on-disk spill, with single-flight computes.

    Parameters
    ----------
    capacity:
        Maximum number of entries held in memory; the least recently used
        entry is evicted first.  Evicted entries remain retrievable from the
        spill directory when one is configured.
    spill_dir:
        Optional directory for the persistent tier.  Entries are stored
        under the sha256 of the key — as a structured array container
        (``.npc``) when the value is large and array-bearing, as a pickled
        ``(key, value)`` pair (``.pkl``) otherwise — and written atomically
        (temp file + rename), so concurrent writers and abrupt shutdowns
        never leave a torn entry.
    max_spill_bytes / max_spill_entries:
        Optional garbage-collection budget for the spill directory.  After
        each spill write, the least recently used files (by mtime; loads
        touch) are deleted until both limits hold.  ``None`` (the default)
        leaves that dimension unbounded.
    """

    def __init__(
        self,
        capacity: int = 128,
        spill_dir: str | Path | None = None,
        max_spill_bytes: int | None = None,
        max_spill_entries: int | None = None,
    ) -> None:
        if capacity < 1:
            raise ServiceError(f"cache capacity must be >= 1, got {capacity}")
        if max_spill_bytes is not None and max_spill_bytes < 1:
            raise ServiceError(f"max spill bytes must be >= 1, got {max_spill_bytes}")
        if max_spill_entries is not None and max_spill_entries < 1:
            raise ServiceError(f"max spill entries must be >= 1, got {max_spill_entries}")
        self._capacity = capacity
        self._spill_dir = Path(spill_dir) if spill_dir is not None else None
        if self._spill_dir is not None:
            self._spill_dir.mkdir(parents=True, exist_ok=True)
        self._max_spill_bytes = max_spill_bytes
        self._max_spill_entries = max_spill_entries
        self._lock = threading.Lock()
        self._memory: OrderedDict[CacheKey, object] = OrderedDict()
        self._inflight: dict[CacheKey, _InFlight] = {}
        self._memory_hits = 0
        self._disk_hits = 0
        self._misses = 0
        self._computations = 0
        self._coalesced_waits = 0
        self._container_spills = 0
        self._spill_evictions = 0
        self._invalidations = 0

    # Lookup / computation ------------------------------------------------------

    def get(self, key: CacheKey) -> object | None:
        """The cached value for ``key`` (memory, then disk), or ``None``."""
        with self._lock:
            if key in self._memory:
                self._memory.move_to_end(key)
                self._memory_hits += 1
                return self._memory[key]
        found, value = self._load_spilled(key)
        if found:
            with self._lock:
                self._disk_hits += 1
                self._store_memory(key, value)
        return value

    def get_or_compute(self, key: CacheKey, compute: Callable[[], T]) -> T:
        """Return the cached value for ``key``, computing it at most once.

        Concurrent callers with the same key coalesce onto a single
        computation; callers with different keys proceed independently.  The
        computation runs outside the cache lock, so a slow anonymization
        never blocks unrelated lookups.
        """
        while True:
            with self._lock:
                if key in self._memory:
                    self._memory.move_to_end(key)
                    self._memory_hits += 1
                    return self._memory[key]  # type: ignore[return-value]
                flight = self._inflight.get(key)
                if flight is None:
                    flight = _InFlight()
                    self._inflight[key] = flight
                    leader = True
                else:
                    self._coalesced_waits += 1
                    leader = False
            if not leader:
                flight.event.wait()
                if flight.error is not None:
                    raise flight.error
                if flight.value is not _SENTINEL:
                    return flight.value  # type: ignore[return-value]
                continue  # leader aborted without a value; retry
            try:
                found, value = self._load_spilled(key)
                if found:
                    with self._lock:
                        self._disk_hits += 1
                else:
                    with self._lock:
                        self._misses += 1
                    value = compute()
                    with self._lock:
                        self._computations += 1
                    self._spill(key, value)
                with self._lock:
                    self._store_memory(key, value)
                    del self._inflight[key]
                flight.value = value
                flight.event.set()
                return value  # type: ignore[return-value]
            except BaseException as error:
                with self._lock:
                    self._inflight.pop(key, None)
                flight.value = _SENTINEL
                flight.error = error
                flight.event.set()
                raise

    # Introspection -------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)

    def stats(self) -> dict[str, int]:
        """Counter snapshot proving cache behaviour (hits, misses, coalescing)."""
        with self._lock:
            return {
                "capacity": self._capacity,
                "entries": len(self._memory),
                "memory_hits": self._memory_hits,
                "disk_hits": self._disk_hits,
                "misses": self._misses,
                "computations": self._computations,
                "coalesced_waits": self._coalesced_waits,
                "container_spills": self._container_spills,
                "spill_evictions": self._spill_evictions,
                "invalidations": self._invalidations,
            }

    def clear(self) -> None:
        """Drop the in-memory tier (spilled entries are kept)."""
        with self._lock:
            self._memory.clear()

    def invalidate_fingerprint(self, fingerprint: str) -> int:
        """Drop every entry whose key mentions ``fingerprint``, both tiers.

        Appending rows to a dataset supersedes its fingerprint; this removes
        every artifact derived from it — in-memory entries plus spilled
        containers and pickled pairs (both codec twins) — so no worker
        sharing the spill directory can serve a stale artifact for it.
        Spilled keys are read from the container manifest (cheap) or the
        pickled pair; unreadable files are left alone.  Returns the number
        of entries removed (a memory+spill pair counts once per tier form).
        """
        removed = 0
        with self._lock:
            stale = [
                key
                for key in self._memory
                if isinstance(key, tuple) and fingerprint in key
            ]
            for key in stale:
                del self._memory[key]
            removed += len(stale)
        if self._spill_dir is not None:
            seen: set[Path] = set()
            try:
                children = list(self._spill_dir.iterdir())
            except OSError:
                children = []
            for child in children:
                if child.suffix not in _SPILL_SUFFIXES or not child.is_file():
                    continue
                base = child.with_suffix("")
                if base in seen:
                    continue
                seen.add(base)
                key = self._spilled_key(child)
                if isinstance(key, tuple) and fingerprint in key:
                    base.with_suffix(".pkl").unlink(missing_ok=True)
                    base.with_suffix(SPILL_CONTAINER_SUFFIX).unlink(missing_ok=True)
                    removed += 1
        with self._lock:
            self._invalidations += removed
        return removed

    def _spilled_key(self, path: Path) -> object | None:
        """The cache key stored in one spill file, or ``None`` if unreadable."""
        if path.suffix == SPILL_CONTAINER_SUFFIX:
            ok, key, _ = decode_entry(path)
            return key if ok else None
        try:
            with path.open("rb") as handle:
                key, _ = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError, ValueError):
            return None
        return key

    # Internals -----------------------------------------------------------------

    def _store_memory(self, key: CacheKey, value: object) -> None:
        """Install ``value`` under ``key`` and evict LRU overflow.  Lock held."""
        self._memory[key] = value
        self._memory.move_to_end(key)
        while len(self._memory) > self._capacity:
            self._memory.popitem(last=False)

    def _spill_path(self, key: CacheKey) -> Path:
        digest = hashlib.sha256(repr(key).encode("utf-8")).hexdigest()
        assert self._spill_dir is not None
        return self._spill_dir / f"{digest}.pkl"

    def _spill(self, key: CacheKey, value: object) -> None:
        """Persist an entry: container when it pays off, pickle otherwise.

        Best-effort — any failure leaves the memory tier as the only copy.
        The twin file of the *other* codec is removed on success so a
        re-spill never leaves two generations answering for one key.
        """
        if self._spill_dir is None:
            return
        path = self._spill_path(key)
        container = path.with_suffix(SPILL_CONTAINER_SUFFIX)
        temp = path.with_suffix(f".tmp.{os.getpid()}.{threading.get_ident()}")
        try:
            payload = encode_entry(key, value)
            if payload is not None:
                temp.write_bytes(payload)
                os.replace(temp, container)
                path.unlink(missing_ok=True)
                with self._lock:
                    self._container_spills += 1
            else:
                with temp.open("wb") as handle:
                    pickle.dump((key, value), handle, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(temp, path)
                container.unlink(missing_ok=True)
            self._collect_spill()
        except (OSError, pickle.PicklingError, TypeError, ValueError):
            temp.unlink(missing_ok=True)  # spill is best-effort; memory tier holds the value

    def _load_spilled(self, key: CacheKey) -> tuple[bool, object | None]:
        """Load the spilled entry for ``key`` as a ``(found, value)`` pair.

        The explicit hit flag keeps a legitimately cached ``None`` value
        distinguishable from a miss — returning the bare value would make
        every lookup of such an entry recompute (and re-spill) it forever.
        Hits touch the file's mtime, making the GC order least-recently-used
        rather than least-recently-written.
        """
        if self._spill_dir is None:
            return False, None
        path = self._spill_path(key)
        container = path.with_suffix(SPILL_CONTAINER_SUFFIX)
        ok, stored_key, value = decode_entry(container)
        if ok and stored_key == key:
            self._touch(container)
            return True, value
        try:
            with path.open("rb") as handle:
                stored_key, value = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError, ValueError):
            return False, None
        if stored_key != key:  # sha collision or foreign file: ignore
            return False, None
        self._touch(path)
        return True, value

    @staticmethod
    def _touch(path: Path) -> None:
        try:
            os.utime(path)
        except OSError:
            pass

    def _collect_spill(self) -> None:
        """Evict least-recently-used spill files until the budget holds.

        Only *top-level* ``.pkl``/``.npc`` cache files are LRU candidates:
        subdirectories of the spill dir hold durable state that eviction must
        never un-exist — ``datasets/`` (the dataset store) and ``jobs/`` (the
        cross-worker job records, which have their own terminal-status
        retention in :class:`~repro.service.jobstore.JobStore`).
        """
        if self._spill_dir is None:
            return
        if self._max_spill_bytes is None and self._max_spill_entries is None:
            return
        entries: list[tuple[float, int, Path]] = []
        total = 0
        for child in self._spill_dir.iterdir():
            if child.suffix not in _SPILL_SUFFIXES or not child.is_file():
                continue
            try:
                stat = child.stat()
            except OSError:
                continue  # concurrently evicted by a sibling process
            entries.append((stat.st_mtime, stat.st_size, child))
            total += stat.st_size
        entries.sort(key=lambda item: item[0])
        count = len(entries)
        for _, size, child in entries:
            within_entries = self._max_spill_entries is None or count <= self._max_spill_entries
            within_bytes = self._max_spill_bytes is None or total <= self._max_spill_bytes
            if within_entries and within_bytes:
                break
            # Unlinking a file a sibling process still maps is safe: the
            # mapping holds the pages until the last view is released.
            child.unlink(missing_ok=True)
            count -= 1
            total -= size
            with self._lock:
                self._spill_evictions += 1


class _Sentinel:
    __slots__ = ()


#: Marks an in-flight slot whose leader failed (waiters retry or re-raise).
_SENTINEL = _Sentinel()
