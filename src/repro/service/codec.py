"""Array-native spill container for cached service artifacts.

The two-tier cache used to pickle every spilled value.  For the artifacts the
serving tier actually caches — anonymized release tables, their rendered CSV
bytes, per-record attack estimate vectors, FRED sweep summaries — pickling
means rebuilding millions of Python objects on every load in every worker
process.  This module provides a structured alternative: one flat container
file whose large payloads are stored as raw, 64-byte-aligned array segments.

Loading maps the file **once** (``np.memmap(path, mode="r")``) and hands out
zero-copy views into the mapping:

* ``int64`` / ``float64`` table columns come back as read-only array views of
  the mapping — a spilled 1M-row release is *mapped*, not re-materialized;
* text columns are stored as fixed-width ``U`` segments and viewed in place;
* cached CSV renderings come back as a :class:`memoryview` over the mapping,
  so serving a spilled release writes straight from the page cache to the
  socket;
* a :class:`~repro.service.core.ReleaseArtifact`'s table decodes **lazily** —
  a worker that only serves the cached CSV bytes never rebuilds the table.

Because the segments live in ordinary files, the mapping is shared between
the pre-fork worker processes of :class:`~repro.service.http.ServiceServer`:
every worker reads the same physical pages instead of holding a private
pickled replica.

Values the structured encoders do not cover (or odd leaves inside covered
values) fall back to pickle — either a pickle segment inside the container or
the cache's plain ``.pkl`` spill for values that are not worth a container at
all (:func:`encode_entry` returns ``None`` for those).

Container layout
----------------
::

    magic "#repro-npc1\\n"  | uint32 manifest length | manifest JSON | pad
    segment 0 (64-byte aligned) | segment 1 | ...

The manifest holds the (pickled) cache key's segment index, a JSON tree
describing how to reassemble the value, and one ``(dtype, shape, offset,
nbytes)`` record per segment.  Writers are atomic at the caller (temp file +
``os.replace``), so a torn container can never be observed under its final
name; :func:`decode_entry` additionally treats any malformed container as a
cache miss rather than an error.
"""

from __future__ import annotations

import io
import json
import math
import pickle
from pathlib import Path
from typing import Callable

import numpy as np

from repro.dataset.generalization import SUPPRESSED, Interval, Suppressed
from repro.dataset.schema import Attribute, AttributeKind, AttributeRole, Schema
from repro.dataset.table import Table

__all__ = [
    "encode_entry",
    "decode_entry",
    "encodable_cells",
    "SPILL_CONTAINER_SUFFIX",
    "SPILL_MIN_CELLS",
]

#: File suffix of container spills (pickle spills keep ``.pkl``).
SPILL_CONTAINER_SUFFIX = ".npc"

#: Values holding fewer array-encodable cells than this spill as pickle —
#: below it the container bookkeeping costs more than it saves.
SPILL_MIN_CELLS = 2048

#: Leaf lists shorter than this are inlined in the manifest instead of
#: getting their own segment.
_MIN_SEGMENT_ITEMS = 16

_MAGIC = b"#repro-npc1\n"
_ALIGN = 64

#: Object-column cell tags of the ``tagged`` encoding.
_TAG_NONE = 0
_TAG_INT = 1
_TAG_FLOAT = 2
_TAG_INTERVAL = 3
_TAG_SUPPRESSED = 4

#: Largest integer magnitude stored through the float64 payload lanes of the
#: ``tagged`` encoding without precision loss.
_EXACT_INT = 2**53


class _Writer:
    """Accumulates aligned segments and their manifest records."""

    def __init__(self) -> None:
        self.records: list[dict[str, object]] = []
        self.payloads: list[bytes | memoryview] = []
        self.offset = 0  # relative to the start of the segment area

    def add(self, array: np.ndarray) -> int:
        data = np.ascontiguousarray(array)
        payload = data.view(np.uint8).reshape(-1).data if data.nbytes else b""
        index = len(self.records)
        self.records.append(
            {
                "dtype": data.dtype.str,
                "shape": list(data.shape),
                "offset": self.offset,
                "nbytes": data.nbytes,
            }
        )
        self.payloads.append(payload)
        self.offset += data.nbytes + (-data.nbytes) % _ALIGN
        return index

    def add_bytes(self, payload: bytes) -> int:
        return self.add(np.frombuffer(payload, dtype=np.uint8))


def _json_safe(value: object) -> bool:
    """Whether a scalar survives a JSON round trip exactly."""
    if value is None or isinstance(value, (bool, str)):
        return True
    if isinstance(value, int):
        return True
    if isinstance(value, float):
        return math.isfinite(value)
    return False


def _pickle_node(writer: _Writer, value: object) -> dict[str, object]:
    return {"t": "pickle", "i": writer.add_bytes(pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))}


def _encode_listlike(writer: _Writer, values: list | tuple) -> dict[str, object]:
    """A list/tuple node; long homogeneous primitive runs become segments."""
    kind = "tuple" if isinstance(values, tuple) else "list"
    if len(values) >= _MIN_SEGMENT_ITEMS:
        if all(type(v) is float for v in values):
            return {"t": f"{kind}-seg", "i": writer.add(np.asarray(values, dtype=np.float64))}
        if all(type(v) is int for v in values):
            array = np.asarray(values, dtype=object)
            try:
                return {"t": f"{kind}-seg", "i": writer.add(array.astype(np.int64))}
            except (OverflowError, TypeError, ValueError):
                pass
        if all(type(v) is str for v in values):
            return {"t": f"{kind}-seg", "i": writer.add(np.asarray(values, dtype="U"))}
    return {"t": kind, "items": [_encode_node(writer, v) for v in values]}


def _encode_object_column(writer: _Writer, array: np.ndarray) -> dict[str, object]:
    """One object storage column: ``U`` strings, tagged cells, or pickle."""
    values = list(array)
    if all(type(v) is str for v in values):
        return {"t": "col-str", "i": writer.add(np.asarray(values, dtype="U"))}

    tags = np.empty(len(values), dtype=np.uint8)
    payload = np.zeros((len(values), 2), dtype=np.float64)
    for row, value in enumerate(values):
        if value is None:
            tags[row] = _TAG_NONE
        elif isinstance(value, Suppressed):
            tags[row] = _TAG_SUPPRESSED
        elif isinstance(value, Interval):
            tags[row] = _TAG_INTERVAL
            payload[row, 0] = value.low
            payload[row, 1] = value.high
        elif type(value) is int and -_EXACT_INT <= value <= _EXACT_INT:
            tags[row] = _TAG_INT
            payload[row, 0] = float(value)
        elif type(value) is float:
            tags[row] = _TAG_FLOAT
            payload[row, 0] = value
        else:  # CategorySet, big ints, exotic cells: exact bytes via pickle
            return {"t": "col-pickle", "i": writer.add_bytes(pickle.dumps(values, protocol=pickle.HIGHEST_PROTOCOL))}
    return {"t": "col-tagged", "tags": writer.add(tags), "values": writer.add(payload)}


def _encode_table(writer: _Writer, table: Table) -> dict[str, object]:
    columns = []
    for name in table.schema.names:
        array = table.column_array(name)
        if array.dtype.kind in "if":
            columns.append({"t": "col-num", "i": writer.add(array)})
        else:
            columns.append(_encode_object_column(writer, array))
    return {
        "t": "table",
        "rows": table.num_rows,
        "schema": [
            [a.name, a.role.value, a.kind.value, a.description]
            for a in table.schema.attributes
        ],
        "columns": columns,
    }


def _encode_node(writer: _Writer, value: object) -> dict[str, object]:
    """Encode one value into a manifest node, adding segments as needed."""
    # Imported lazily to avoid a circular import at module load.
    from repro.service.core import ReleaseArtifact

    if isinstance(value, Table):
        return _encode_table(writer, value)
    if isinstance(value, ReleaseArtifact):
        node: dict[str, object] = {
            "t": "artifact",
            "dataset": value.dataset,
            "algorithm": value.algorithm,
            "k": value.k,
            "style": value.style,
            "class_sizes": _encode_listlike(writer, tuple(value.class_sizes)),
            "table": _encode_table(writer, value.table),
        }
        rendered = value.csv_bytes_cache
        if rendered is not None:
            node["csv"] = writer.add_bytes(bytes(rendered))
        return node
    if isinstance(value, np.ndarray):
        if value.dtype == object:
            return _pickle_node(writer, value)
        return {"t": "ndarray", "i": writer.add(value)}
    if isinstance(value, (bytes, bytearray, memoryview)):
        return {"t": "bytes", "i": writer.add_bytes(bytes(value))}
    if isinstance(value, dict):
        if all(type(k) is str for k in value):
            return {
                "t": "dict",
                "keys": list(value.keys()),
                "values": [_encode_node(writer, v) for v in value.values()],
            }
        return _pickle_node(writer, value)
    if isinstance(value, (list, tuple)):
        return _encode_listlike(writer, value)
    if _json_safe(value):
        return {"t": "json", "v": value}
    return _pickle_node(writer, value)


def encodable_cells(value: object) -> int:
    """A cheap lower bound on the array-encodable cells inside ``value``.

    The cache uses this to decide whether a value deserves a container
    (``>= SPILL_MIN_CELLS``) or should just be pickled.  The estimate only
    descends into the container types the encoder handles structurally.
    """
    from repro.service.core import ReleaseArtifact

    if isinstance(value, Table):
        return value.num_rows * max(value.num_columns, 1)
    if isinstance(value, ReleaseArtifact):
        rendered = value.csv_bytes_cache
        return encodable_cells(value.peek_table()) + (len(rendered) if rendered else 0)
    if isinstance(value, np.ndarray):
        return int(value.size)
    if isinstance(value, (bytes, bytearray, memoryview)):
        return len(value)
    if isinstance(value, dict):
        return sum(encodable_cells(v) for v in value.values())
    if isinstance(value, (list, tuple)):
        if all(isinstance(v, (int, float, str)) for v in value):
            return len(value)
        return sum(encodable_cells(v) for v in value)
    return 0


def encode_entry(key: tuple, value: object, force: bool = False) -> bytes | None:
    """Serialize ``(key, value)`` as a container, or ``None`` to use pickle.

    ``None`` means the value is not worth a container (too few array-encodable
    cells); it never means failure — any value *can* be containerized because
    odd leaves fall back to embedded pickle segments.  ``force`` skips the
    size heuristic (the shared dataset store wants a container regardless).
    """
    if not force and encodable_cells(value) < SPILL_MIN_CELLS:
        return None
    writer = _Writer()
    key_index = writer.add_bytes(pickle.dumps(key, protocol=pickle.HIGHEST_PROTOCOL))
    root = _encode_node(writer, value)
    manifest = json.dumps(
        {"version": 1, "key": key_index, "root": root, "segments": writer.records},
        separators=(",", ":"),
    ).encode("utf-8")

    buffer = io.BytesIO()
    buffer.write(_MAGIC)
    buffer.write(len(manifest).to_bytes(4, "big"))
    buffer.write(manifest)
    header_end = buffer.tell()
    buffer.write(b"\x00" * ((-header_end) % _ALIGN))
    base = buffer.tell()
    for record, payload in zip(writer.records, writer.payloads):
        position = base + int(record["offset"])  # type: ignore[arg-type]
        buffer.write(b"\x00" * (position - buffer.tell()))
        buffer.write(payload)
    return buffer.getvalue()


class _Reader:
    """Decodes manifest nodes against one shared memory mapping."""

    def __init__(self, mapping: np.ndarray, base: int, segments: list[dict]) -> None:
        self._mapping = mapping
        self._base = base
        self._segments = segments

    def segment(self, index: int) -> np.ndarray:
        record = self._segments[index]
        start = self._base + int(record["offset"])
        stop = start + int(record["nbytes"])
        flat = self._mapping[start:stop]
        array = flat.view(np.dtype(record["dtype"]))
        return array.reshape(tuple(record["shape"]))

    def raw(self, index: int) -> bytes:
        return self.segment(index).tobytes()

    def decode(self, node: dict) -> object:
        kind = node["t"]
        if kind == "json":
            return node["v"]
        if kind == "pickle":
            return pickle.loads(self.raw(node["i"]))
        if kind == "bytes":
            # Zero-copy: a memoryview over the mapping, sliceable for
            # chunked streaming without materializing the payload.
            segment = self.segment(node["i"])
            return segment.data if segment.size else memoryview(b"")
        if kind == "ndarray":
            return self.segment(node["i"])
        if kind in ("list-seg", "tuple-seg"):
            values = self.segment(node["i"]).tolist()
            return tuple(values) if kind == "tuple-seg" else values
        if kind in ("list", "tuple"):
            items = [self.decode(item) for item in node["items"]]
            return tuple(items) if kind == "tuple" else items
        if kind == "dict":
            return {
                key: self.decode(item)
                for key, item in zip(node["keys"], node["values"])
            }
        if kind == "table":
            return self.decode_table(node)
        if kind == "artifact":
            return self._decode_artifact(node)
        raise ValueError(f"unknown container node type: {kind!r}")

    def decode_table(self, node: dict) -> Table:
        schema = Schema(
            [
                Attribute(name, AttributeRole(role), AttributeKind(kind), description)
                for name, role, kind, description in node["schema"]
            ]
        )
        arrays: dict[str, np.ndarray] = {}
        for attribute, column in zip(schema.attributes, node["columns"]):
            arrays[attribute.name] = self._decode_column(column)
        return Table._from_arrays(schema, arrays, int(node["rows"]))

    def _decode_column(self, node: dict) -> np.ndarray:
        kind = node["t"]
        if kind == "col-num":
            return self.segment(node["i"])  # zero-copy view of the mapping
        if kind == "col-str":
            return self.segment(node["i"]).astype(object)
        if kind == "col-pickle":
            values = pickle.loads(self.raw(node["i"]))
            array = np.empty(len(values), dtype=object)
            array[:] = values
            return array
        if kind == "col-tagged":
            return self._decode_tagged(
                self.segment(node["tags"]), self.segment(node["values"])
            )
        raise ValueError(f"unknown container column type: {kind!r}")

    @staticmethod
    def _decode_tagged(tags: np.ndarray, payload: np.ndarray) -> np.ndarray:
        out = np.empty(tags.shape[0], dtype=object)
        # Identical (low, high) pairs share one Interval object, restoring the
        # per-equivalence-class object sharing of the original release column
        # (which the numeric-view memoization in Table exploits).
        intervals: dict[tuple[float, float], Interval] = {}
        tag_list = tags.tolist()
        payload_list = payload.tolist()
        for row, tag in enumerate(tag_list):
            if tag == _TAG_NONE:
                out[row] = None
            elif tag == _TAG_INT:
                out[row] = int(payload_list[row][0])
            elif tag == _TAG_FLOAT:
                out[row] = payload_list[row][0]
            elif tag == _TAG_SUPPRESSED:
                out[row] = SUPPRESSED
            else:
                bounds = (payload_list[row][0], payload_list[row][1])
                interval = intervals.get(bounds)
                if interval is None:
                    interval = Interval(bounds[0], bounds[1])
                    intervals[bounds] = interval
                out[row] = interval
        return out

    def _decode_artifact(self, node: dict):
        from repro.service.core import ReleaseArtifact

        csv_index = node.get("csv")
        csv_bytes = None
        if csv_index is not None:
            segment = self.segment(csv_index)
            csv_bytes = segment.data if segment.size else memoryview(b"")
        table_node = node["table"]
        loader: Callable[[], Table] = lambda: self.decode_table(table_node)
        return ReleaseArtifact(
            dataset=node["dataset"],
            algorithm=node["algorithm"],
            k=int(node["k"]),
            style=node["style"],
            table=loader,
            class_sizes=tuple(self.decode(node["class_sizes"])),
            csv_bytes=csv_bytes,
            lazy=True,
            rows=int(table_node["rows"]),
        )


def decode_entry(path: str | Path) -> tuple[bool, tuple | None, object | None]:
    """Load a container written by :func:`encode_entry`.

    Returns ``(ok, key, value)``; any malformed, truncated or foreign file
    yields ``(False, None, None)`` so the cache treats it as a miss.  The
    value's array payloads are zero-copy views over one ``np.memmap`` of the
    file; unlinking the file later (garbage collection, eviction) is safe —
    the mapping keeps the data alive until the views are released.
    """
    path = Path(path)
    try:
        mapping = np.memmap(path, dtype=np.uint8, mode="r")
        header = bytes(mapping[: len(_MAGIC)])
        if header != _MAGIC:
            return False, None, None
        length_end = len(_MAGIC) + 4
        manifest_length = int.from_bytes(bytes(mapping[len(_MAGIC):length_end]), "big")
        manifest = json.loads(
            bytes(mapping[length_end : length_end + manifest_length]).decode("utf-8")
        )
        if manifest.get("version") != 1:
            return False, None, None
        header_end = length_end + manifest_length
        base = header_end + (-header_end) % _ALIGN
        reader = _Reader(mapping, base, manifest["segments"])
        key = pickle.loads(reader.raw(manifest["key"]))
        value = reader.decode(manifest["root"])
        return True, key, value
    except (OSError, ValueError, KeyError, IndexError, TypeError, EOFError, pickle.UnpicklingError, json.JSONDecodeError):
        return False, None, None
