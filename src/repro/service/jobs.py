"""Asynchronous job execution for long-running service work (FRED sweeps).

A FRED sweep simulates the fusion attack at every anonymization level and can
run for minutes on a large dataset — far too long to hold an HTTP request
open.  The service therefore runs sweeps as **jobs**: ``POST /fred`` enqueues
the sweep on a shared worker pool and returns a job id immediately; clients
poll ``GET /jobs/<id>`` until the status reaches ``done`` (or ``failed``).

The pool is a plain ``concurrent.futures.ThreadPoolExecutor``; the sweep
itself parallelizes its per-level evaluations through
:class:`~repro.core.fred.FREDConfig` worker pools, so job workers stay thin
coordinators.  :meth:`JobManager.shutdown` drains in-flight jobs before
returning (and cancels queued ones when asked not to wait), which is what
makes service shutdown clean under load.
"""

from __future__ import annotations

import threading
import traceback
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable

from repro.exceptions import ServiceError, UnknownJobError

__all__ = ["Job", "JobManager"]

#: Lifecycle: queued -> running -> done | failed (cancelled only at shutdown).
_STATUSES = ("queued", "running", "done", "failed", "cancelled")


@dataclass
class Job:
    """One asynchronous unit of work and its observable state."""

    id: str
    description: str
    status: str = "queued"
    result: object = None
    error: str | None = None
    _done: threading.Event = field(default_factory=threading.Event, repr=False)

    def snapshot(self) -> dict[str, object]:
        """A JSON-able view of the job (what ``GET /jobs/<id>`` returns)."""
        view: dict[str, object] = {
            "job": self.id,
            "description": self.description,
            "status": self.status,
        }
        if self.status == "done":
            view["result"] = self.result
        if self.error is not None:
            view["error"] = self.error
        return view


class JobManager:
    """Submit callables to a bounded worker pool and track their lifecycle.

    Job ids are sequential (``job-1``, ``job-2``, ...) so tests and logs stay
    deterministic.  Results must be JSON-able when the job is served over
    HTTP; the manager itself stores whatever the callable returns.

    Retention is bounded: at most ``max_retained`` *finished* (done / failed /
    cancelled) jobs are kept for polling, oldest evicted first — a long-lived
    service must not accumulate every result payload forever.  Queued and
    running jobs are never evicted.  Polling an evicted job raises
    :class:`~repro.exceptions.UnknownJobError`, exactly like a job that never
    existed.
    """

    def __init__(self, max_workers: int = 2, max_retained: int = 256) -> None:
        if max_workers < 1:
            raise ServiceError(f"job workers must be >= 1, got {max_workers}")
        if max_retained < 1:
            raise ServiceError(f"retained jobs must be >= 1, got {max_retained}")
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-job"
        )
        self._lock = threading.Lock()
        self._jobs: dict[str, Job] = {}
        self._counter = 0
        self._max_retained = max_retained
        self._closed = False

    def submit(self, work: Callable[[], object], description: str = "") -> str:
        """Enqueue ``work`` and return its job id.

        The pool submission happens under the manager lock: ``shutdown`` also
        flips ``_closed`` under that lock before shutting the pool down, so a
        submit that passed the closed check always reaches the pool first and
        can never observe a shut-down executor (which would strand the job in
        ``queued`` forever).
        """
        with self._lock:
            if self._closed:
                raise ServiceError("the job manager is shut down")
            self._counter += 1
            job = Job(id=f"job-{self._counter}", description=description)
            self._jobs[job.id] = job
            self._evict_finished_locked()
            try:
                self._pool.submit(self._run, job, work)
            except RuntimeError as error:  # pragma: no cover - defensive
                job.status = "cancelled"
                job._done.set()
                raise ServiceError("the job manager is shut down") from error
        return job.id

    def _evict_finished_locked(self) -> None:
        """Drop the oldest finished jobs beyond the retention budget."""
        finished = [
            job_id
            for job_id, job in self._jobs.items()
            if job.status in ("done", "failed", "cancelled")
        ]
        for job_id in finished[: max(0, len(finished) - self._max_retained)]:
            del self._jobs[job_id]

    def _run(self, job: Job, work: Callable[[], object]) -> None:
        job.status = "running"
        try:
            job.result = work()
        except BaseException as error:
            job.error = "".join(
                traceback.format_exception_only(type(error), error)
            ).strip()
            job.status = "failed"
        else:
            job.status = "done"
        finally:
            job._done.set()

    def status(self, job_id: str) -> dict[str, object]:
        """The JSON-able snapshot of job ``job_id``."""
        return self._get(job_id).snapshot()

    def wait(self, job_id: str, timeout: float | None = None) -> dict[str, object]:
        """Block until job ``job_id`` finishes (or ``timeout``), then snapshot it."""
        job = self._get(job_id)
        if not job._done.wait(timeout):
            raise ServiceError(f"job {job_id} did not finish within {timeout}s")
        return job.snapshot()

    def jobs(self) -> list[dict[str, object]]:
        """Snapshots of every known job, in submission order."""
        with self._lock:
            return [job.snapshot() for job in self._jobs.values()]

    def _get(self, job_id: str) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise UnknownJobError(f"unknown job: {job_id!r}")
        return job

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting jobs; drain in-flight work when ``wait`` is set.

        With ``wait=False`` queued-but-unstarted jobs are cancelled (their
        status becomes ``cancelled``); jobs already running still run to
        completion — Python threads cannot be interrupted safely.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            pending = [job for job in self._jobs.values() if job.status == "queued"]
        self._pool.shutdown(wait=wait, cancel_futures=not wait)
        if not wait:
            for job in pending:
                if job.status == "queued":
                    job.status = "cancelled"
                    job._done.set()
