"""Asynchronous job execution for long-running service work (FRED sweeps).

A FRED sweep simulates the fusion attack at every anonymization level and can
run for minutes on a large dataset — far too long to hold an HTTP request
open.  The service therefore runs sweeps as **jobs**: ``POST /fred`` enqueues
the sweep on a shared worker pool and returns a job id immediately; clients
poll ``GET /jobs/<id>`` until the status reaches ``done`` (or ``failed``).

The pool is a plain ``concurrent.futures.ThreadPoolExecutor``; the sweep
itself parallelizes its per-level evaluations through
:class:`~repro.core.fred.FREDConfig` worker pools, so job workers stay thin
coordinators.  :meth:`JobManager.shutdown` drains in-flight jobs before
returning (and cancels queued ones when asked not to wait), which is what
makes service shutdown clean under load.

Cross-worker visibility: with a :class:`~repro.service.jobstore.JobStore`
attached (the service wires one up whenever it has a spill directory), every
lifecycle transition is also published as a durable record in the shared
``jobs/`` area, job ids are qualified by the owning pid so sibling workers
never collide, and :meth:`JobManager.status` falls back to the shared store
on a local miss — so ``GET /jobs/<id>`` is answered correctly by *any*
worker of a multi-process front, not just the one that accepted the submit.
A heartbeat thread keeps the owner's liveness marker fresh; if the owner
dies mid-job, the store reports the job ``failed`` instead of leaving
clients polling ``running`` forever.
"""

from __future__ import annotations

import os
import threading
import time
import traceback
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable

from repro.exceptions import ServiceError, UnknownJobError
from repro.service.jobstore import TERMINAL_STATUSES, JobStore

__all__ = ["Job", "JobManager"]

#: Lifecycle: queued -> running -> done | failed (cancelled only at shutdown).
_STATUSES = ("queued", "running", "done", "failed", "cancelled")


@dataclass
class Job:
    """One asynchronous unit of work and its observable state.

    Status, result and error are mutated by the worker thread and read by
    HTTP threads; every transition and every :meth:`snapshot` goes through
    ``_mutex`` so a poll can never observe a torn state — in particular,
    never ``status: "done"`` without its ``result``.
    """

    id: str
    description: str
    kind: str = "task"
    status: str = "queued"
    result: object = None
    error: str | None = None
    _done: threading.Event = field(default_factory=threading.Event, repr=False)
    _mutex: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def transition(
        self, status: str, result: object = None, error: str | None = None
    ) -> None:
        """Atomically move to ``status``, installing result/error with it."""
        with self._mutex:
            self.status = status
            if result is not None:
                self.result = result
            if error is not None:
                self.error = error

    def snapshot(self) -> dict[str, object]:
        """A JSON-able view of the job (what ``GET /jobs/<id>`` returns)."""
        with self._mutex:
            status = self.status
            result = self.result
            error = self.error
        view: dict[str, object] = {
            "job": self.id,
            "description": self.description,
            "kind": self.kind,
            "status": status,
        }
        if status == "done":
            view["result"] = result
        if error is not None:
            view["error"] = error
        return view


class JobManager:
    """Submit callables to a bounded worker pool and track their lifecycle.

    Without a store, job ids are sequential (``job-1``, ``job-2``, ...) so
    tests and logs stay deterministic.  With a shared
    :class:`~repro.service.jobstore.JobStore` attached the ids are qualified
    by the owning pid (``job-<pid>-1``, ...) — sibling worker processes of a
    multi-process front share one id namespace and must not collide — and
    every transition is published to the store so any worker can answer any
    poll.  Results must be JSON-able when the job is served over HTTP; the
    manager itself stores whatever the callable returns.

    Retention is bounded: at most ``max_retained`` *finished* (done / failed /
    cancelled) jobs are kept in memory for polling, oldest evicted first — a
    long-lived service must not accumulate every result payload forever.
    Queued and running jobs are never evicted.  Polling an evicted job falls
    back to the shared store (which has its own, time-based retention);
    a job found in neither place raises
    :class:`~repro.exceptions.UnknownJobError`, exactly like a job that
    never existed.
    """

    def __init__(
        self,
        max_workers: int = 2,
        max_retained: int = 256,
        store: JobStore | None = None,
    ) -> None:
        if max_workers < 1:
            raise ServiceError(f"job workers must be >= 1, got {max_workers}")
        if max_retained < 1:
            raise ServiceError(f"retained jobs must be >= 1, got {max_retained}")
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-job"
        )
        self._lock = threading.Lock()
        self._jobs: dict[str, Job] = {}
        self._counter = 0
        self._max_retained = max_retained
        self._closed = False
        self._store = store
        self._owner = os.getpid()
        self._stop_heartbeat = threading.Event()
        self._heartbeat_thread: threading.Thread | None = None
        if store is not None:
            store.heartbeat(self._owner)
            self._heartbeat_thread = threading.Thread(
                target=self._heartbeat_loop,
                name="repro-job-heartbeat",
                daemon=True,
            )
            self._heartbeat_thread.start()

    def _heartbeat_loop(self) -> None:
        assert self._store is not None
        while not self._stop_heartbeat.wait(self._store.heartbeat_seconds):
            self._store.heartbeat(self._owner)

    def _publish(self, job: Job) -> None:
        if self._store is not None:
            self._store.publish(job.snapshot(), self._owner)

    def submit(
        self, work: Callable[[], object], description: str = "", kind: str = "task"
    ) -> str:
        """Enqueue ``work`` and return its job id.

        ``kind`` labels the job family (``"fred"``, ``"append"``, ...) in
        every snapshot and stored record, so clients and operators can tell
        sweep jobs from ingest jobs without parsing descriptions.

        The pool submission happens under the manager lock: ``shutdown`` also
        flips ``_closed`` under that lock before shutting the pool down, so a
        submit that passed the closed check always reaches the pool first and
        can never observe a shut-down executor (which would strand the job in
        ``queued`` forever).
        """
        with self._lock:
            if self._closed:
                raise ServiceError("the job manager is shut down")
            self._counter += 1
            if self._store is not None:
                job_id = f"job-{self._owner}-{self._counter}"
            else:
                job_id = f"job-{self._counter}"
            job = Job(id=job_id, description=description, kind=kind)
            self._jobs[job.id] = job
            self._evict_finished_locked()
            try:
                self._pool.submit(self._run, job, work)
            except RuntimeError as error:  # pragma: no cover - defensive
                job.transition("cancelled")
                job._done.set()
                raise ServiceError("the job manager is shut down") from error
        self._publish(job)
        return job.id

    def _evict_finished_locked(self) -> None:
        """Drop the oldest finished jobs beyond the retention budget."""
        finished = [
            job_id
            for job_id, job in self._jobs.items()
            if job.status in TERMINAL_STATUSES
        ]
        for job_id in finished[: max(0, len(finished) - self._max_retained)]:
            del self._jobs[job_id]

    def _run(self, job: Job, work: Callable[[], object]) -> None:
        job.transition("running")
        self._publish(job)
        try:
            result = work()
        except BaseException as error:
            message = "".join(
                traceback.format_exception_only(type(error), error)
            ).strip()
            job.transition("failed", error=message)
        else:
            job.transition("done", result=result)
        finally:
            self._publish(job)
            job._done.set()

    def status(self, job_id: str) -> dict[str, object]:
        """The JSON-able snapshot of job ``job_id`` (local, then shared store)."""
        job = self._get(job_id)
        if job is not None:
            return job.snapshot()
        if self._store is not None:
            snapshot = self._store.load(job_id)
            if snapshot is not None:
                return snapshot
        raise UnknownJobError(f"unknown job: {job_id!r}")

    def wait(self, job_id: str, timeout: float | None = None) -> dict[str, object]:
        """Block until job ``job_id`` finishes (or ``timeout``), then snapshot it.

        Jobs owned by another worker (known only through the shared store)
        are polled until their stored record goes terminal — which includes
        the stale-owner verdict, so waiting on a dead worker's job returns
        ``failed`` rather than blocking forever.
        """
        job = self._get(job_id)
        if job is not None:
            if not job._done.wait(timeout):
                raise ServiceError(f"job {job_id} did not finish within {timeout}s")
            return job.snapshot()
        if self._store is not None:
            deadline = None if timeout is None else time.monotonic() + timeout
            interval = min(0.1, self._store.heartbeat_seconds)
            while True:
                snapshot = self._store.load(job_id)
                if snapshot is None:
                    break
                if snapshot["status"] in TERMINAL_STATUSES:
                    return snapshot
                if deadline is not None and time.monotonic() >= deadline:
                    raise ServiceError(
                        f"job {job_id} did not finish within {timeout}s"
                    )
                time.sleep(interval)
        raise UnknownJobError(f"unknown job: {job_id!r}")

    def jobs(self) -> list[dict[str, object]]:
        """Snapshots of every known job: local first, then store-only jobs.

        Local jobs appear with their full snapshot (including results);
        jobs known only through the shared store appear as the store's
        compact records — result payloads stay on disk until a targeted
        :meth:`status` asks for one.
        """
        with self._lock:
            snapshots = [job.snapshot() for job in self._jobs.values()]
        if self._store is not None:
            local_ids = {snapshot["job"] for snapshot in snapshots}
            for record in self._store.list():
                if record["job"] not in local_ids:
                    snapshots.append(record)
        return snapshots

    def _get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting jobs; drain in-flight work when ``wait`` is set.

        With ``wait=False`` queued-but-unstarted jobs are cancelled (their
        status becomes ``cancelled``); jobs already running still run to
        completion — Python threads cannot be interrupted safely.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            pending = [job for job in self._jobs.values() if job.status == "queued"]
        self._pool.shutdown(wait=wait, cancel_futures=not wait)
        if not wait:
            for job in pending:
                if job.status == "queued":
                    job.transition("cancelled")
                    job._done.set()
                    self._publish(job)
        self._stop_heartbeat.set()
        if self._heartbeat_thread is not None:
            self._heartbeat_thread.join(timeout=5)
            self._heartbeat_thread = None
