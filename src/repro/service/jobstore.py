"""Durable, spill-dir-backed job records shared across worker processes.

The multi-process HTTP front (:class:`~repro.service.http.ServiceServer` with
``workers > 1``) load-balances *connections*, not clients: a ``POST /fred``
and the ``GET /jobs/<id>`` polls that follow it routinely land on different
worker processes.  The in-process :class:`~repro.service.jobs.JobManager`
alone cannot answer those polls, so every lifecycle transition of a job is
also published here — one compact record per job in a ``jobs/`` area of the
shared spill directory — and any worker can serve any poll from the shared
records.

Layout (under the store root, itself a subdirectory of the spill dir so the
cache's LRU collector — which only touches top-level ``.pkl``/``.npc`` files
— can never evict a job record)::

    jobs/<job-id>.json          the job record (atomic temp-file + rename)
    jobs/<job-id>.npc | .pkl    the ``done`` result payload (codec container
                                when it pays off, pickled ``(key, value)``
                                pair otherwise — the same dual codec the
                                cache spill uses)
    jobs/owners/<pid>           heartbeat file of one owning worker process

Records are written *result first, record second*: a record that claims
``done`` always finds its payload on disk (crash windows leave a stale
``running`` record instead, which heartbeat staleness converts to
``failed``).

**Stale-job detection.**  Each owning worker touches its heartbeat file every
``heartbeat_seconds`` while its job manager is open.  A reader that finds a
non-terminal record whose owner has not heartbeat within
``stale_after_seconds`` (or whose heartbeat file is gone) reports the job as
``failed`` with an explanatory error — and rewrites the record so the verdict
sticks — instead of letting clients poll ``running`` forever after a worker
died mid-sweep.

**Retention.**  Terminal records (``done`` / ``failed`` / ``cancelled``) are
garbage-collected once they have been terminal for ``retention_seconds``;
non-terminal records are never collected, so a live job cannot be un-existed
by cleanup, mirroring the cache GC's exemption of the ``datasets/`` store.
"""

from __future__ import annotations

import json
import os
import pickle
import threading
import time
from pathlib import Path

from repro.exceptions import ServiceError
from repro.service.codec import SPILL_CONTAINER_SUFFIX, decode_entry, encode_entry

__all__ = ["JobStore", "TERMINAL_STATUSES"]

#: Statuses after which a job record never changes again.
TERMINAL_STATUSES = ("done", "failed", "cancelled")

#: Default seconds between owner heartbeats.
DEFAULT_HEARTBEAT_SECONDS = 1.0

#: Default seconds of heartbeat silence after which an owner counts as dead.
DEFAULT_STALE_AFTER_SECONDS = 10.0

#: Default seconds a terminal record is kept for polling before collection.
DEFAULT_RETENTION_SECONDS = 3600.0


class JobStore:
    """Shared on-disk job records: any worker can answer any job poll.

    All writes are atomic (temp file + ``os.replace``) and all reads treat
    malformed or mid-replacement files as absent, so the store needs no
    cross-process locking — exactly like the cache spill it lives beside.
    Every method is best-effort on I/O errors except :meth:`load`, which
    degrades to "record not found" rather than raising.
    """

    def __init__(
        self,
        root: str | Path,
        heartbeat_seconds: float = DEFAULT_HEARTBEAT_SECONDS,
        stale_after_seconds: float = DEFAULT_STALE_AFTER_SECONDS,
        retention_seconds: float = DEFAULT_RETENTION_SECONDS,
    ) -> None:
        if heartbeat_seconds <= 0:
            raise ServiceError(
                f"heartbeat interval must be positive, got {heartbeat_seconds}"
            )
        if stale_after_seconds <= heartbeat_seconds:
            raise ServiceError(
                "the stale-after window must exceed the heartbeat interval "
                f"({stale_after_seconds} <= {heartbeat_seconds})"
            )
        if retention_seconds < 0:
            raise ServiceError(
                f"retention must be >= 0 seconds, got {retention_seconds}"
            )
        self.root = Path(root)
        self.heartbeat_seconds = float(heartbeat_seconds)
        self.stale_after_seconds = float(stale_after_seconds)
        self.retention_seconds = float(retention_seconds)
        self._owners = self.root / "owners"
        self._owners.mkdir(parents=True, exist_ok=True)

    # Paths ---------------------------------------------------------------------

    def _record_path(self, job_id: str) -> Path:
        return self.root / f"{job_id}.json"

    def _result_paths(self, job_id: str) -> tuple[Path, Path]:
        return (
            self.root / f"{job_id}{SPILL_CONTAINER_SUFFIX}",
            self.root / f"{job_id}.pkl",
        )

    def _owner_path(self, owner: int) -> Path:
        return self._owners / str(owner)

    @staticmethod
    def _write_atomic(path: Path, payload: bytes) -> None:
        temp = path.with_name(f"{path.name}.{os.getpid()}.{threading.get_ident()}.tmp")
        try:
            temp.write_bytes(payload)
            os.replace(temp, path)
        finally:
            temp.unlink(missing_ok=True)

    # Heartbeats ----------------------------------------------------------------

    def heartbeat(self, owner: int) -> None:
        """Refresh the owner's liveness marker (create it if needed)."""
        path = self._owner_path(owner)
        try:
            os.utime(path)
        except FileNotFoundError:
            try:
                path.touch()
            except OSError:  # pragma: no cover - best-effort marker
                pass
        except OSError:  # pragma: no cover - best-effort marker
            pass

    def owner_alive(self, owner: int) -> bool:
        """Whether the owner heartbeat is fresher than the stale window."""
        try:
            mtime = self._owner_path(owner).stat().st_mtime
        except OSError:
            return False
        return (time.time() - mtime) <= self.stale_after_seconds

    # Publishing ----------------------------------------------------------------

    def publish(self, snapshot: dict[str, object], owner: int) -> None:
        """Write one lifecycle transition to the shared store (best-effort).

        ``snapshot`` is a :meth:`~repro.service.jobs.Job.snapshot` dict; a
        ``done`` snapshot's ``result`` is written first, through the spill
        codec, so a reader can never observe ``done`` without its payload.
        """
        record = {
            key: value for key, value in snapshot.items() if key != "result"
        }
        record["owner"] = int(owner)
        record["updated"] = time.time()
        try:
            if snapshot.get("status") == "done" and "result" in snapshot:
                self._write_result(str(snapshot["job"]), snapshot["result"])
            self._write_atomic(
                self._record_path(str(snapshot["job"])),
                json.dumps(record).encode("utf-8"),
            )
            if record["status"] in TERMINAL_STATUSES:
                self.collect()
        except (OSError, TypeError, ValueError, pickle.PicklingError):
            # Publishing is best-effort: the owning process still answers its
            # own polls from memory; a lost record costs cross-worker
            # visibility, never correctness of the local job plane.
            pass

    def _write_result(self, job_id: str, result: object) -> None:
        container_path, pickle_path = self._result_paths(job_id)
        key = ("job", job_id, "result")
        payload = encode_entry(key, result)
        if payload is not None:
            self._write_atomic(container_path, payload)
            pickle_path.unlink(missing_ok=True)
        else:
            self._write_atomic(
                pickle_path,
                pickle.dumps((key, result), protocol=pickle.HIGHEST_PROTOCOL),
            )
            container_path.unlink(missing_ok=True)

    def _load_result(self, job_id: str) -> tuple[bool, object]:
        container_path, pickle_path = self._result_paths(job_id)
        key = ("job", job_id, "result")
        ok, stored_key, value = decode_entry(container_path)
        if ok and stored_key == key:
            return True, value
        try:
            with pickle_path.open("rb") as handle:
                stored_key, value = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError, ValueError):
            return False, None
        if stored_key != key:
            return False, None
        return True, value

    # Reading -------------------------------------------------------------------

    def load(self, job_id: str, with_result: bool = True) -> dict[str, object] | None:
        """The stored snapshot of ``job_id``, or ``None`` if unknown.

        Non-terminal records whose owner stopped heartbeating come back as
        ``failed`` (with an explanatory ``error``), and the verdict is
        written back so later polls — on any worker — see a terminal job.
        """
        record = self._read_record(self._record_path(job_id))
        if record is None:
            return None
        status = record.get("status")
        owner = record.get("owner")
        if status not in TERMINAL_STATUSES and not self.owner_alive(int(owner or -1)):
            record["status"] = "failed"
            record["error"] = (
                f"worker {owner} stopped heartbeating while the job was "
                f"{status}; the job is presumed lost"
            )
            # Make the verdict sticky so every later poll is terminal too.
            # Racing pollers write identical content; the dead owner cannot
            # contradict it.
            try:
                stamped = dict(record)
                stamped["updated"] = time.time()
                self._write_atomic(
                    self._record_path(job_id), json.dumps(stamped).encode("utf-8")
                )
            except (OSError, TypeError, ValueError):
                pass
            return self._snapshot_from(record)
        if status == "done" and with_result:
            found, result = self._load_result(job_id)
            if not found:
                record["status"] = "failed"
                record["error"] = (
                    "the job finished but its stored result is unreadable"
                )
                return self._snapshot_from(record)
            snapshot = self._snapshot_from(record)
            snapshot["result"] = result
            return snapshot
        return self._snapshot_from(record)

    @staticmethod
    def _snapshot_from(record: dict[str, object]) -> dict[str, object]:
        snapshot: dict[str, object] = {
            "job": record.get("job"),
            "description": record.get("description", ""),
            "kind": record.get("kind", "task"),
            "status": record.get("status"),
            "owner": record.get("owner"),
        }
        if record.get("error") is not None:
            snapshot["error"] = record["error"]
        return snapshot

    @staticmethod
    def _read_record(path: Path) -> dict[str, object] | None:
        try:
            record = json.loads(path.read_bytes())
        except (OSError, ValueError):
            return None
        if not isinstance(record, dict) or "job" not in record or "status" not in record:
            return None
        return record

    def list(self) -> list[dict[str, object]]:
        """Compact snapshots of every stored job (no result payloads).

        Stale non-terminal records are reported (and rewritten) as ``failed``,
        exactly like :meth:`load`.  Order is stable: sorted by job id.
        """
        snapshots = []
        try:
            paths = sorted(self.root.glob("*.json"))
        except OSError:
            return []
        for path in paths:
            snapshot = self.load(path.stem, with_result=False)
            if snapshot is not None:
                snapshots.append(snapshot)
        return snapshots

    # Retention -----------------------------------------------------------------

    def collect(self) -> int:
        """Drop terminal records (and results) older than the retention window.

        Non-terminal records are never touched — a record can only age out
        *after* it went terminal, so collection can never un-exist a live
        job.  Returns the number of records removed.
        """
        removed = 0
        horizon = time.time() - self.retention_seconds
        try:
            paths = list(self.root.glob("*.json"))
        except OSError:
            return 0
        for path in paths:
            record = self._read_record(path)
            if record is None or record.get("status") not in TERMINAL_STATUSES:
                continue
            updated = record.get("updated")
            if not isinstance(updated, (int, float)) or updated >= horizon:
                continue
            path.unlink(missing_ok=True)
            for result_path in self._result_paths(str(record["job"])):
                result_path.unlink(missing_ok=True)
            removed += 1
        return removed
