"""Zero-copy shared-memory backing for :class:`~repro.linkage.LinkageIndex`.

A process-pool FRED sweep historically shipped the linkage index to every
worker as a pickled replica: N workers, N index-sized allocations.  This
module publishes the index's flat buffers — character codes, padded
code/token matrices, token postings, blocking postings, the joined corpus
text — into **one** ``multiprocessing.shared_memory`` segment, and lets any
process reconstruct a fully functional index as read-only array views over
that segment: N workers, one index-sized allocation total.

Ownership is explicit:

* :meth:`SharedLinkageIndex.publish` copies the buffers into a fresh segment
  and returns the owning handle.  While the publication is open, *pickling
  the source index ships only the segment manifest* (a few hundred bytes), so
  existing process-pool plumbing — ``pickle.dumps((anonymizer, table,
  harvest))`` — becomes zero-copy with no call-site changes beyond opening
  the publication.
* :func:`attach` (or unpickling a manifest-bearing state) opens the segment
  and builds an index over segment views.  Attachers never unlink; the
  attach-side ``resource_tracker`` registration is explicitly undone so a
  worker exiting can neither destroy the segment under its siblings nor spam
  "leaked shared_memory" warnings.
* The owner unlinks the segment in :meth:`SharedLinkageIndex.close`, via a
  ``weakref.finalize`` at garbage collection, or at interpreter exit —
  whichever comes first; a hard kill is mopped up by the standard
  ``resource_tracker`` (the owner stays registered on purpose).

When shared memory is unavailable (``/dev/shm`` missing, sandboxed
interpreter), :func:`shared_memory_available` reports it and callers fall
back to the version-1 pickle-replica path unchanged.
"""

from __future__ import annotations

import atexit
import os
import weakref
from typing import TYPE_CHECKING

import numpy as np

from repro.exceptions import LinkageError
from repro.linkage.blocking import BlockingIndex

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (index pickles via us)
    from repro.linkage.index import LinkageIndex

__all__ = [
    "SharedLinkageIndex",
    "attach",
    "attach_into",
    "estimate_publish_bytes",
    "shared_memory_available",
    "shared_memory_free_bytes",
]

#: Segment offsets are rounded up to this boundary so every array view is
#: cache-line aligned regardless of the preceding array's length.
_ALIGN = 64

#: Arrays whose published prefix never changes when the source index is
#: :meth:`~repro.linkage.index.LinkageIndex.extend`-ed: appends go strictly
#: after the existing elements (2-D arrays only while their width is stable),
#: so a :meth:`SharedLinkageIndex.refresh` may tail-write them in place
#: without disturbing attachers holding pre-append shapes.  Postings and
#: blocking buffers are spliced, not appended, and always move to a fresh
#: auxiliary segment instead.
_PREFIX_STABLE = frozenset(
    {
        "name_offsets",
        "flat_codes",
        "lengths",
        "codes",
        "token_ids",
        "token_counts",
        "token_matrix",
        "names_text",
        "vocab_text",
        "block_keys_text",
    }
)

_AVAILABLE: bool | None = None


def shared_memory_available() -> bool:
    """Whether this interpreter can create and map shared-memory segments."""
    global _AVAILABLE
    if _AVAILABLE is None:
        try:
            from multiprocessing import shared_memory

            probe = shared_memory.SharedMemory(create=True, size=_ALIGN)
            try:
                probe.buf[0] = 1
                _AVAILABLE = probe.buf[0] == 1
            finally:
                probe.close()
                probe.unlink()
        except Exception:
            _AVAILABLE = False
    return _AVAILABLE


def _release_segment(shm) -> None:
    """Owner-side cleanup: unlink the segment, tolerating repeats/races."""
    try:
        shm.close()
    except BufferError:
        # Views are still exported somewhere in this process; the mapping
        # lives until they die, but the name can and should go away now.
        pass
    except OSError:
        pass
    try:
        shm.unlink()
    except FileNotFoundError:
        pass
    except OSError:
        pass


# Attach-side segments, one per name per process: every unpickled manifest
# reuses the same mapping, and all of them close together at interpreter exit.
_ATTACHED_SEGMENTS: dict[str, object] = {}

# Segments created by THIS process.  An in-process attach (owner unpickling
# its own payload, `publication.attach()`) must leave the owner's resource
# tracker registration in place — it is the crash safety net.
_OWNED_NAMES: set[str] = set()


def _close_attached_segments() -> None:
    for shm in _ATTACHED_SEGMENTS.values():
        try:
            shm.close()
        except Exception:
            pass
    _ATTACHED_SEGMENTS.clear()


atexit.register(_close_attached_segments)


def _open_segment(name: str):
    """Map segment ``name`` read-write, once per process, without tracking.

    The stdlib registers *attaching* processes with the resource tracker too,
    which makes the first worker to exit unlink the segment under everyone
    else (and print spurious leak warnings).  Attachers are not owners:
    undo the registration immediately.
    """
    shm = _ATTACHED_SEGMENTS.get(name)
    if shm is not None:
        return shm
    from multiprocessing import resource_tracker, shared_memory

    try:
        shm = shared_memory.SharedMemory(name=name)
    except FileNotFoundError as error:
        raise LinkageError(
            f"shared linkage segment {name!r} is gone; was the publishing "
            "process closed before its workers attached?"
        ) from error
    if name not in _OWNED_NAMES:
        try:
            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:
            pass
    _ATTACHED_SEGMENTS[name] = shm
    return shm


def _segment_arrays(index: "LinkageIndex") -> dict[str, np.ndarray]:
    """Every buffer the segment carries, as contiguous fixed-dtype arrays.

    Includes the *derived* padded matrices (``_codes``, ``_token_matrix``):
    re-deriving them on attach would cost each worker a private allocation as
    large as the originals, defeating the point of sharing.  Text (joined
    names, vocabulary, blocking keys) rides as UTF-8 bytes and is decoded
    lazily — or not at all — on the attach side.
    """
    blocking_state = index._blocking.__getstate__()
    text = index._joined_names().encode("utf-8")
    vocab_text = " ".join(index._vocab).encode("utf-8")
    keys_text = blocking_state["keys"].encode("utf-8")
    return {
        "name_offsets": np.ascontiguousarray(index._name_offsets, dtype=np.int64),
        "flat_codes": np.ascontiguousarray(index._flat_codes, dtype=np.int32),
        "lengths": np.ascontiguousarray(index._lengths, dtype=np.int32),
        "codes": np.ascontiguousarray(index._codes, dtype=np.int32),
        "token_ids": np.ascontiguousarray(index._token_ids, dtype=np.int64),
        "token_counts": np.ascontiguousarray(index._token_counts, dtype=np.int64),
        "token_matrix": np.ascontiguousarray(index._token_matrix, dtype=np.int64),
        "post_rows": np.ascontiguousarray(index._token_post_rows, dtype=np.int64),
        "post_offsets": np.ascontiguousarray(
            index._token_post_offsets, dtype=np.int64
        ),
        "names_text": np.frombuffer(text, dtype=np.uint8),
        "vocab_text": np.frombuffer(vocab_text, dtype=np.uint8),
        "block_keys_text": np.frombuffer(keys_text, dtype=np.uint8),
        "block_counts": np.ascontiguousarray(
            blocking_state["counts"], dtype=np.int64
        ),
        "block_rows": np.ascontiguousarray(blocking_state["rows"], dtype=np.int64),
    }


def _cache_arrays(index: "LinkageIndex") -> tuple[dict[str, np.ndarray], bool]:
    """The query-time lazy caches in shared-segment form.

    The perfect-match table is shipped as a byte-lexicographically sorted
    ``uint8`` key matrix (each row the padded token-id bytes of one distinct
    token set) plus the lowest corpus row per key — attachers binary-search
    it instead of each building a private ``dict`` as large as the corpus.
    The char-bound matrix is shipped as-is; the second return value flags a
    corpus whose alphabet disabled count pruning (``_char_bounds() is None``).
    """
    matrix = np.ascontiguousarray(index._token_matrix)
    nonzero = np.flatnonzero(index._token_counts > 0)
    count = nonzero.shape[0]
    stride = matrix.shape[1] * matrix.itemsize
    byte_matrix = (
        np.ascontiguousarray(matrix[nonzero]).view(np.uint8).reshape(count, stride)
    )
    if count:
        # Stable lexsort + keep-first: rows ascend, so the first row of each
        # equal-key run is the lowest — the dict's setdefault rule.
        order = np.lexsort(byte_matrix.T[::-1])
        keys = byte_matrix[order]
        rows = nonzero[order]
        if count > 1:
            keep = np.concatenate(
                ([True], np.any(keys[1:] != keys[:-1], axis=1))
            )
            keys = keys[keep]
            rows = rows[keep]
    else:
        keys = np.empty((0, stride), dtype=np.uint8)
        rows = nonzero
    arrays = {
        "perfect_keys": np.ascontiguousarray(keys),
        "perfect_rows": np.ascontiguousarray(rows, dtype=np.int64),
    }
    bounds = index._char_bounds()
    char_none = bounds is None
    if not char_none:
        alphabet, counts = bounds
        arrays["char_alphabet"] = np.ascontiguousarray(alphabet, dtype=np.int32)
        arrays["char_counts"] = np.ascontiguousarray(counts, dtype=np.int32)
    return arrays, char_none


def _slot_capacity(array: np.ndarray, headroom: float) -> int:
    """Bytes reserved for ``array``'s segment slot (rounded to whole rows)."""
    row = array.itemsize * (array.shape[1] if array.ndim == 2 else 1)
    want = array.nbytes + int(array.nbytes * headroom)
    if row:
        want = ((want + row - 1) // row) * row
    return want


def estimate_publish_bytes(
    index: "LinkageIndex", headroom: float = 0.0, include_caches: bool = True
) -> int:
    """The segment size :meth:`SharedLinkageIndex.publish` would allocate.

    Computed with the same slot layout (alignment, per-array capacity with
    ``headroom``) the real publish uses, without creating any segment — so a
    caller can probe whether ``/dev/shm`` has room *before* committing to a
    multi-gigabyte publish that would otherwise die mid-copy with ``ENOSPC``.
    """
    arrays = _segment_arrays(index)
    if include_caches:
        cache_arrays, _ = _cache_arrays(index)
        arrays.update(cache_arrays)
    offset = 0
    for array in arrays.values():
        offset = (offset + _ALIGN - 1) & ~(_ALIGN - 1)
        offset += _slot_capacity(array, headroom)
    return max(offset, 1)


def shared_memory_free_bytes() -> int | None:
    """Free bytes of the shared-memory filesystem, or ``None`` if unknowable.

    POSIX shared memory on Linux is backed by the ``/dev/shm`` tmpfs, whose
    capacity (typically half of RAM) is often far below what a 10M-name
    publish needs — and an over-capacity publish fails with a mid-copy
    ``ENOSPC``/``SIGBUS`` rather than up front.  Platforms without a
    stat-able backing filesystem return ``None`` (probe unavailable).
    """
    try:
        stats = os.statvfs("/dev/shm")
    except (OSError, AttributeError):
        return None
    return int(stats.f_bavail) * int(stats.f_frsize)


class SharedLinkageIndex:
    """The owning handle of one published linkage-index segment.

    Built by :meth:`publish`; the handle (not the index) controls the
    segment's lifetime.  Usable as a context manager::

        with SharedLinkageIndex.publish(index) as shared:
            payload = pickle.dumps(anonymizer)   # ships the manifest only
            ... run the worker pool ...
        # segment unlinked here

    Attributes
    ----------
    manifest:
        The picklable attach recipe: segment name, scalar index parameters,
        and each array's (offset, dtype, shape) within the segment.  This is
        exactly what a version-2 index pickle carries.
    """

    def __init__(
        self,
        shm,
        manifest: dict,
        index: "LinkageIndex",
        headroom: float = 0.0,
        include_caches: bool = False,
    ) -> None:
        self._shm = shm
        self.manifest = manifest
        self._index_ref = weakref.ref(index)
        self.active = True
        self._headroom = headroom
        self._include_caches = include_caches
        #: Every live segment this publication owns, keyed by POSIX name —
        #: the main segment plus any auxiliary tail segments from refreshes.
        self._segments = {shm.name: shm}
        # Covers garbage collection AND interpreter exit; `close()` simply
        # runs it early.  A SIGKILL is covered by the resource tracker (the
        # creating process's registration is deliberately left in place).
        self._finalizer = weakref.finalize(self, _release_segment, shm)

    @classmethod
    def publish(
        cls,
        index: "LinkageIndex",
        name: str | None = None,
        headroom: float = 0.0,
        include_caches: bool = True,
    ) -> "SharedLinkageIndex":
        """Copy ``index``'s buffers into a fresh shared segment.

        While the returned handle is open, pickling ``index`` ships the
        manifest instead of the buffers.  Raises
        :class:`~repro.exceptions.LinkageError` when shared memory is
        unavailable — callers gate on :func:`shared_memory_available` to fall
        back to pickle replicas.

        ``include_caches`` (default) also publishes the query-time lazy
        caches — the perfect-match table (as a sorted key matrix) and the
        char-bound pruning matrix — so attaching workers stop rebuilding
        private copies.  ``headroom`` reserves that fraction of extra
        capacity per array slot, letting :meth:`refresh` tail-write
        append-grown buffers in place instead of moving them to an auxiliary
        segment.
        """
        if not shared_memory_available():
            raise LinkageError(
                "multiprocessing.shared_memory is unavailable on this "
                "interpreter; use the pickle-replica path instead"
            )
        from multiprocessing import shared_memory

        arrays = _segment_arrays(index)
        char_none = False
        if include_caches:
            cache_arrays, char_none = _cache_arrays(index)
            arrays.update(cache_arrays)
        spec: dict[str, dict] = {}
        offset = 0
        for key, array in arrays.items():
            offset = (offset + _ALIGN - 1) & ~(_ALIGN - 1)
            capacity = _slot_capacity(array, headroom)
            spec[key] = {
                "offset": offset,
                "dtype": str(array.dtype),
                "shape": tuple(int(n) for n in array.shape),
                "capacity": capacity,
            }
            offset += capacity
        shm = shared_memory.SharedMemory(create=True, size=max(offset, 1), name=name)
        for key, array in arrays.items():
            if array.nbytes == 0:
                continue
            view = np.ndarray(
                array.shape,
                dtype=array.dtype,
                buffer=shm.buf,
                offset=spec[key]["offset"],
            )
            view[...] = array
        manifest = {
            "segment": shm.name,
            "nbytes": int(offset),
            "threshold": float(index.threshold),
            "prefix_scale": float(index.prefix_scale),
            "row_offset": int(index.row_offset),
            "blocking_scheme": index._blocking.scheme,
            "blocking_qgram_size": int(index._blocking.qgram_size),
            "blocking_size": int(index._blocking._size),
            "char_none": char_none,
            "arrays": spec,
        }
        _OWNED_NAMES.add(shm.name)
        publication = cls(
            shm, manifest, index, headroom=headroom, include_caches=include_caches
        )
        index._shm_publication = publication
        return publication

    def refresh(self) -> None:
        """Re-publish after the source index was :meth:`extend`-ed in place.

        Only the grown tails move: prefix-stable buffers (pure appends —
        character codes, lengths, token ids, the joined texts) are
        tail-written into their existing slots when the slot has capacity
        (see ``headroom``), and buffers whose prefix changed (postings
        splices, re-padded matrices, the sorted cache tables) go to one
        fresh auxiliary tail segment per refresh, with superseded auxiliary
        segments unlinked.  Attachers opened *before* the refresh keep a
        consistent pre-append snapshot — their mapped bytes are never
        rewritten (POSIX keeps unlinked mappings alive) — while manifests
        pickled afterwards attach to the grown corpus.  Callers serialize
        refreshes against new attaches (the service holds its dataset lock).
        """
        if not self.active:
            raise LinkageError("cannot refresh a closed publication")
        index = self._index_ref()
        if index is None:
            raise LinkageError(
                "cannot refresh: the published index was garbage collected"
            )
        from multiprocessing import shared_memory

        arrays = _segment_arrays(index)
        if self._include_caches:
            cache_arrays, char_none = _cache_arrays(index)
            arrays.update(cache_arrays)
            self.manifest["char_none"] = char_none
        main_name = self.manifest["segment"]
        spec = self.manifest["arrays"]
        moved: dict[str, np.ndarray] = {}
        for key, array in arrays.items():
            entry = spec.get(key)
            in_place = False
            if entry is not None and str(array.dtype) == entry["dtype"]:
                old_shape = tuple(entry["shape"])
                prefix_ok = (
                    key in _PREFIX_STABLE
                    and len(old_shape) == array.ndim
                    and (array.ndim == 1 or old_shape[1] == array.shape[1])
                    and old_shape[0] <= array.shape[0]
                )
                if prefix_ok and array.nbytes <= entry.get("capacity", 0):
                    segment = self._segments[entry.get("segment", main_name)]
                    view = np.ndarray(
                        array.shape,
                        dtype=array.dtype,
                        buffer=segment.buf,
                        offset=entry["offset"],
                    )
                    view[old_shape[0] :] = array[old_shape[0] :]
                    entry["shape"] = tuple(int(n) for n in array.shape)
                    in_place = True
            if not in_place:
                moved[key] = array
        if moved:
            offset = 0
            layout: dict[str, tuple[int, int]] = {}
            for key, array in moved.items():
                offset = (offset + _ALIGN - 1) & ~(_ALIGN - 1)
                capacity = _slot_capacity(array, self._headroom)
                layout[key] = (offset, capacity)
                offset += capacity
            aux = shared_memory.SharedMemory(create=True, size=max(offset, 1))
            _OWNED_NAMES.add(aux.name)
            self._segments[aux.name] = aux
            weakref.finalize(self, _release_segment, aux)
            for key, array in moved.items():
                slot_offset, capacity = layout[key]
                if array.nbytes:
                    view = np.ndarray(
                        array.shape,
                        dtype=array.dtype,
                        buffer=aux.buf,
                        offset=slot_offset,
                    )
                    view[...] = array
                spec[key] = {
                    "offset": slot_offset,
                    "dtype": str(array.dtype),
                    "shape": tuple(int(n) for n in array.shape),
                    "capacity": capacity,
                    "segment": aux.name,
                }
        for key in list(spec):
            if key not in arrays:  # e.g. char bounds dropped to None
                del spec[key]
        live = {entry.get("segment", main_name) for entry in spec.values()}
        live.add(main_name)
        for segment_name in list(self._segments):
            if segment_name not in live:
                _release_segment(self._segments.pop(segment_name))
                _OWNED_NAMES.discard(segment_name)
        self.manifest["blocking_size"] = int(index._blocking._size)
        self.manifest["row_offset"] = int(index.row_offset)
        self.manifest["nbytes"] = int(
            sum(segment.size for segment in self._segments.values())
        )

    @property
    def segment_name(self) -> str:
        """The POSIX name of the shared segment (its ``/dev/shm`` entry)."""
        return self.manifest["segment"]

    @property
    def nbytes(self) -> int:
        """Total segment size — the cost of the single shared index copy."""
        return self.manifest["nbytes"]

    def attach(self) -> "LinkageIndex":
        """A fresh index over this publication's segment (works in-process too)."""
        return attach(self.manifest)

    def close(self) -> None:
        """Unlink the segment and stop manifest pickling.  Idempotent.

        Processes still holding attached views keep their mapping until they
        drop it (POSIX semantics); the name disappears immediately, so no
        ``/dev/shm`` entry outlives the owner.
        """
        if not self.active:
            return
        self.active = False
        index = self._index_ref()
        if index is not None and getattr(index, "_shm_publication", None) is self:
            index._shm_publication = None
        for segment_name in list(self._segments):
            segment = self._segments.pop(segment_name)
            if segment is not self._shm:
                _release_segment(segment)
                _OWNED_NAMES.discard(segment_name)
        self._finalizer()

    def __enter__(self) -> "SharedLinkageIndex":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def attach(manifest: dict) -> "LinkageIndex":
    """Reconstruct a :class:`~repro.linkage.LinkageIndex` over a shared segment.

    Every array the index works with is a read-only view into the segment;
    the only per-process allocations are the vocabulary dict, the blocking
    postings dict (small dicts of segment views) and — lazily, on first
    candidate-name report — the decoded corpus text.
    """
    from repro.linkage.index import LinkageIndex

    index = object.__new__(LinkageIndex)
    attach_into(index, manifest)
    return index


def attach_into(index: "LinkageIndex", manifest: dict) -> None:
    """Populate ``index`` (``__setstate__`` of a version-2 pickle) from shm."""
    shm = _open_segment(manifest["segment"])
    arrays: dict[str, np.ndarray] = {}
    for key, entry in manifest["arrays"].items():
        # Refreshed publications park spliced buffers in auxiliary tail
        # segments; each entry names its home segment (default: the main one).
        segment_name = entry.get("segment", manifest["segment"])
        segment = shm if segment_name == manifest["segment"] else _open_segment(
            segment_name
        )
        view = np.ndarray(
            tuple(entry["shape"]),
            dtype=np.dtype(entry["dtype"]),
            buffer=segment.buf,
            offset=entry["offset"],
        )
        view.flags.writeable = False
        arrays[key] = view
    vocab_text = bytes(arrays["vocab_text"]).decode("utf-8")
    blocking = BlockingIndex._from_flat(
        manifest["blocking_scheme"],
        manifest["blocking_qgram_size"],
        manifest["blocking_size"],
        bytes(arrays["block_keys_text"]).decode("utf-8"),
        arrays["block_counts"],
        arrays["block_rows"],
    )
    names_blob = arrays["names_text"]
    shared_caches: dict = {}
    if "perfect_keys" in arrays:
        shared_caches["perfect_sorted"] = (
            arrays["perfect_keys"],
            arrays["perfect_rows"],
        )
    if manifest.get("char_none"):
        shared_caches["char_bounds"] = None
    elif "char_alphabet" in arrays:
        shared_caches["char_bounds"] = (
            arrays["char_alphabet"],
            arrays["char_counts"],
        )
    index._attach_buffers(
        threshold=manifest["threshold"],
        prefix_scale=manifest["prefix_scale"],
        row_offset=manifest["row_offset"],
        names_joined=lambda: bytes(names_blob).decode("utf-8"),
        name_offsets=arrays["name_offsets"],
        flat_codes=arrays["flat_codes"],
        lengths=arrays["lengths"],
        vocab=tuple(vocab_text.split(" ")) if vocab_text else (),
        token_ids=arrays["token_ids"],
        token_counts=arrays["token_counts"],
        post_rows=arrays["post_rows"],
        post_offsets=arrays["post_offsets"],
        blocking=blocking,
        codes=arrays["codes"],
        token_matrix=arrays["token_matrix"],
        **shared_caches,
    )
    index._shm_attachment = shm
