"""Name normalization and blocking-key tokenization.

Normalization is the contract every linkage component shares: the scalar
similarity references in :mod:`repro.fusion.linkage`, the batched kernels in
:mod:`repro.linkage.kernels` and the blocking index all operate on
*normalized* names, so they must agree on what normalization means.

Normalization folds a name to lower-case ASCII letters and single spaces:

* Unicode is NFKD-decomposed and combining marks are stripped, so accented
  letters survive as their base letter ("José Müller" -> "jose muller")
  instead of being dropped by the ASCII filter;
* letters with no NFKD decomposition ("ß", "ø", "ł", ...) are folded through
  an explicit table so Scandinavian and Slavic names keep their skeleton;
* punctuation and digits become spaces, titles and honorifics are removed,
  and whitespace is collapsed.
"""

from __future__ import annotations

import re
import unicodedata

__all__ = ["normalize_name", "name_tokens", "token_qgrams", "TITLES"]

#: Titles and honorifics dropped from names during normalization.
TITLES = frozenset(
    {"dr", "prof", "professor", "mr", "mrs", "ms", "phd", "jr", "sr", "ii", "iii"}
)

_NON_ALPHA = re.compile(r"[^a-z\s]")
_WHITESPACE = re.compile(r"\s+")

# Letters NFKD leaves intact (no decomposition) but that clearly map onto an
# ASCII skeleton.  Case pairs are listed explicitly because the fold runs
# before case folding.
_LETTER_FOLD = str.maketrans(
    {
        "ß": "ss",
        "ẞ": "ss",
        "æ": "ae",
        "Æ": "ae",
        "œ": "oe",
        "Œ": "oe",
        "ø": "o",
        "Ø": "o",
        "đ": "d",
        "Đ": "d",
        "ð": "d",
        "Ð": "d",
        "þ": "th",
        "Þ": "th",
        "ł": "l",
        "Ł": "l",
    }
)


def normalize_name(name: str) -> str:
    """Fold a name to lower-case ASCII tokens, stripping titles and punctuation.

    Accents are NFKD-folded onto their base letters before the non-letter
    filter runs, so "José Müller" normalizes to ``"jose muller"`` (the
    historical behaviour dropped every non-ASCII letter, mangling it into
    ``"jos m ller"``).  Pure-ASCII input normalizes exactly as it always has.
    """
    decomposed = unicodedata.normalize("NFKD", str(name))
    stripped = "".join(ch for ch in decomposed if not unicodedata.combining(ch))
    text = _NON_ALPHA.sub(" ", stripped.translate(_LETTER_FOLD).casefold())
    tokens = [t for t in _WHITESPACE.split(text) if t and t not in TITLES]
    return " ".join(tokens)


def name_tokens(name: str) -> tuple[str, ...]:
    """The normalized tokens of a name (empty tuple when nothing survives)."""
    normalized = normalize_name(name)
    return tuple(normalized.split()) if normalized else ()


def token_qgrams(token: str, q: int = 2) -> tuple[str, ...]:
    """Sliding character q-grams of one token (the token itself when shorter)."""
    if len(token) < q:
        return (token,) if token else ()
    return tuple(token[i : i + q] for i in range(len(token) - q + 1))
