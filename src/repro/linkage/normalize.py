"""Name normalization and blocking-key tokenization.

Normalization is the contract every linkage component shares: the scalar
similarity references in :mod:`repro.fusion.linkage`, the batched kernels in
:mod:`repro.linkage.kernels` and the blocking index all operate on
*normalized* names, so they must agree on what normalization means.

Normalization folds a name to lower-case ASCII letters and single spaces:

* Unicode is NFKD-decomposed and combining marks are stripped, so accented
  letters survive as their base letter ("José Müller" -> "jose muller")
  instead of being dropped by the ASCII filter;
* letters with no NFKD decomposition ("ß", "ø", "ł", ...) are folded through
  an explicit table so Scandinavian and Slavic names keep their skeleton;
* punctuation and digits become spaces, titles and honorifics are removed,
  and whitespace is collapsed.
"""

from __future__ import annotations

import re
import unicodedata
from typing import Sequence

__all__ = [
    "normalize_name",
    "normalize_names",
    "name_tokens",
    "token_qgrams",
    "TITLES",
]

#: Titles and honorifics dropped from names during normalization.
TITLES = frozenset(
    {"dr", "prof", "professor", "mr", "mrs", "ms", "phd", "jr", "sr", "ii", "iii"}
)

_NON_ALPHA = re.compile(r"[^a-z\s]")
_WHITESPACE = re.compile(r"\s+")

# Letters NFKD leaves intact (no decomposition) but that clearly map onto an
# ASCII skeleton.  Case pairs are listed explicitly because the fold runs
# before case folding.
_LETTER_FOLD = str.maketrans(
    {
        "ß": "ss",
        "ẞ": "ss",
        "æ": "ae",
        "Æ": "ae",
        "œ": "oe",
        "Œ": "oe",
        "ø": "o",
        "Ø": "o",
        "đ": "d",
        "Đ": "d",
        "ð": "d",
        "Ð": "d",
        "þ": "th",
        "Þ": "th",
        "ł": "l",
        "Ł": "l",
    }
)


def normalize_name(name: str) -> str:
    """Fold a name to lower-case ASCII tokens, stripping titles and punctuation.

    Accents are NFKD-folded onto their base letters before the non-letter
    filter runs, so "José Müller" normalizes to ``"jose muller"`` (the
    historical behaviour dropped every non-ASCII letter, mangling it into
    ``"jos m ller"``).  Pure-ASCII input normalizes exactly as it always has.
    """
    decomposed = unicodedata.normalize("NFKD", str(name))
    stripped = "".join(ch for ch in decomposed if not unicodedata.combining(ch))
    text = _NON_ALPHA.sub(" ", stripped.translate(_LETTER_FOLD).casefold())
    tokens = [t for t in _WHITESPACE.split(text) if t and t not in TITLES]
    return " ".join(tokens)


# Batch-normalization record separator.  It is whitespace (so the `[^a-z\s]`
# filter preserves it and `\v` inside a raw name folds to a token break, just
# like the scalar path folds it via `\s+`), has no NFKD decomposition, never
# composes, and has combining class 0 — so it is a Unicode normalization
# boundary: NFKD of the joined string equals the join of the per-name NFKDs.
_SEPARATOR = "\v"

# Whitespace canonicalization for the batch path: collapse runs of any
# whitespace except the separator, then strip spaces around separators.
# The full collapse only runs when a non-space whitespace char is present;
# otherwise a cheaper multi-space pass suffices (it matches nothing on
# already-canonical text instead of matching every single space).
_ODD_WHITESPACE = re.compile(r"[^\S\v ]")
_SPACE_RUN = re.compile(r"[^\S\v]+")
_MULTI_SPACE = re.compile(r"  +")
_SEPARATOR_TRIM = re.compile(r" \v ?|\v ")

# Detects any title token in folded text (tokens are maximal [a-z] runs, so
# the lookarounds make this exact); title-free corpora skip the per-token
# filter entirely.  The plain-substring scan (C-level find, ~30x cheaper
# than the char-by-char regex scan) prefilters: only text containing some
# title as a substring can contain one as a token.
_TITLE_TOKEN = re.compile(
    "(?<![a-z])(?:"
    + "|".join(sorted(TITLES, key=len, reverse=True))
    + ")(?![a-z])"
)

# ASCII fast path for `_NON_ALPHA.sub(" ", text.casefold())`: one
# bytes.translate pass that lowercases A-Z, keeps a-z and whitespace, and
# maps every other byte to a space.  Bit-identical on ASCII input (ASCII
# casefolding is exactly A-Z -> a-z).
_ASCII_NON_ALPHA = bytes(
    b + 32 if 65 <= b <= 90  # A-Z -> a-z
    else (b if 97 <= b <= 122 or b in b" \t\n\r\x0b\x0c" else 32)
    for b in range(256)
)


def normalize_names(names: Sequence[str]) -> list[str]:
    """Batch :func:`normalize_name`: one pass over all names joined together.

    Bit-identical to ``[normalize_name(n) for n in names]`` (pinned by the
    hypothesis suite) but amortizes the NFKD decomposition, combining-mark
    strip, fold table, case fold and regex across the whole corpus — the
    per-name loop is the dominant cost of building a
    :class:`~repro.linkage.index.LinkageIndex` at scale.
    """
    count = len(names)
    if count == 0:
        return []
    try:
        joined = _SEPARATOR.join(names)
    except TypeError:
        joined = _SEPARATOR.join(str(name) for name in names)
    if joined.count(_SEPARATOR) != count - 1:
        # A literal "\v" inside a raw name is whitespace to the scalar path
        # (a token break); replacing it with a space before joining keeps the
        # result identical while freeing "\v" up as the record separator.
        joined = _SEPARATOR.join(
            str(name).replace(_SEPARATOR, " ") for name in names
        )
    if joined.isascii():
        # NFKD, combining-mark stripping and the fold table are all identity
        # maps on ASCII text, and casefold + the non-letter filter collapse
        # into one bytes.translate pass.
        text = joined.encode("ascii").translate(_ASCII_NON_ALPHA).decode("ascii")
    else:
        decomposed = unicodedata.normalize("NFKD", joined)
        marks = {
            ord(ch) for ch in set(decomposed) if unicodedata.combining(ch)
        }
        stripped = decomposed.translate(dict.fromkeys(marks)) if marks else decomposed
        text = _NON_ALPHA.sub(" ", stripped.translate(_LETTER_FOLD).casefold())
    # Collapse whitespace globally (a few C regex passes, each gated behind a
    # C-level substring scan) so each piece comes out canonical: runs of
    # non-separator whitespace become one space, then spaces hugging a
    # separator or a string edge are dropped.
    if _ODD_WHITESPACE.search(text):
        text = _SPACE_RUN.sub(" ", text)
    elif "  " in text:
        text = _MULTI_SPACE.sub(" ", text)
    if " \v" in text or "\v " in text:
        text = _SEPARATOR_TRIM.sub(_SEPARATOR, text)
    text = text.strip(" ")
    pieces = text.split(_SEPARATOR)
    if len(pieces) != count:  # pragma: no cover - defensive guard
        return [normalize_name(name) for name in names]
    if any(title in text for title in TITLES) and _TITLE_TOKEN.search(text):
        return [
            " ".join(t for t in piece.split(" ") if t not in TITLES)
            for piece in pieces
        ]
    return pieces


def name_tokens(name: str) -> tuple[str, ...]:
    """The normalized tokens of a name (empty tuple when nothing survives)."""
    normalized = normalize_name(name)
    return tuple(normalized.split()) if normalized else ()


def token_qgrams(token: str, q: int = 2) -> tuple[str, ...]:
    """Sliding character q-grams of one token (the token itself when shorter)."""
    if len(token) < q:
        return (token,) if token else ()
    return tuple(token[i : i + q] for i in range(len(token) - q + 1))
