"""Inverted-index blocking for record linkage.

Blocking keeps linkage near-linear: a query is only compared against corpus
entries sharing at least one *block key*.  The historical scheme keyed on the
first letter of each token, which silently loses any candidate whose every
token has a first-character typo (and made single-token names with a leading
typo unmatchable).  The default ``"qgram"`` scheme is multi-key:

* every whole token (catches reordered and exactly-shared name parts),
* every character q-gram of every token (a single typo still leaves most
  q-grams intact anywhere in the token),
* the first letter of every token (kept so the candidate set is by
  construction a **superset** of the historical scheme's — pinned by the
  hypothesis suite).

``"first-letter"`` reproduces the historical scheme exactly and ``"none"``
disables blocking (full scan).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import LinkageError
from repro.linkage.normalize import token_qgrams

__all__ = ["BLOCKING_SCHEMES", "BlockingIndex"]

#: Recognized blocking schemes, from highest to lowest recall.
BLOCKING_SCHEMES = ("qgram", "first-letter", "none")

_EMPTY = np.empty(0, dtype=np.intp)


class BlockingIndex:
    """Inverted index from block keys to corpus row indices.

    Parameters
    ----------
    normalized_names:
        Corpus names, already passed through
        :func:`~repro.linkage.normalize.normalize_name`.
    scheme:
        One of :data:`BLOCKING_SCHEMES`.
    qgram_size:
        Character q-gram width of the ``"qgram"`` scheme (ignored otherwise).
    """

    def __init__(
        self,
        normalized_names: Sequence[str],
        scheme: str = "qgram",
        qgram_size: int = 2,
    ) -> None:
        if scheme not in BLOCKING_SCHEMES:
            raise LinkageError(
                f"unknown blocking scheme {scheme!r}; options: {sorted(BLOCKING_SCHEMES)}"
            )
        if qgram_size < 2:
            raise LinkageError(f"qgram_size must be >= 2, got {qgram_size}")
        self.scheme = scheme
        self.qgram_size = qgram_size
        self._size = len(normalized_names)
        postings: dict[str, list[int]] = {}
        if scheme != "none":
            for row, normalized in enumerate(normalized_names):
                for key in self.keys(normalized):
                    postings.setdefault(key, []).append(row)
        self._postings = {
            key: np.asarray(rows, dtype=np.intp) for key, rows in postings.items()
        }

    def keys(self, normalized: str) -> set[str]:
        """The block keys of one normalized name under this scheme."""
        keys: set[str] = set()
        for token in normalized.split():
            if self.scheme == "first-letter":
                keys.add(token[0])
                continue
            keys.add("f:" + token[0])
            keys.add("t:" + token)
            for gram in token_qgrams(token, self.qgram_size):
                keys.add("q:" + gram)
        return keys

    def candidate_rows(self, normalized_query: str) -> np.ndarray:
        """Corpus rows sharing a block key with the query (ascending, unique)."""
        if self.scheme == "none":
            return np.arange(self._size, dtype=np.intp)
        hits = [
            self._postings[key]
            for key in self.keys(normalized_query)
            if key in self._postings
        ]
        if not hits:
            return _EMPTY
        if len(hits) == 1:
            return hits[0]
        return np.unique(np.concatenate(hits))
