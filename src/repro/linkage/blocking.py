"""Inverted-index blocking for record linkage.

Blocking keeps linkage near-linear: a query is only compared against corpus
entries sharing at least one *block key*.  The historical scheme keyed on the
first letter of each token, which silently loses any candidate whose every
token has a first-character typo (and made single-token names with a leading
typo unmatchable).  The default ``"qgram"`` scheme is multi-key:

* every whole token (catches reordered and exactly-shared name parts),
* every character q-gram of every token (a single typo still leaves most
  q-grams intact anywhere in the token),
* the first letter of every token (kept so the candidate set is by
  construction a **superset** of the historical scheme's — pinned by the
  hypothesis suite).

``"first-letter"`` reproduces the historical scheme exactly and ``"none"``
disables blocking (full scan).

Construction is vectorized: the corpus's tokens are flattened once into a
:class:`TokenStream` (shared with :class:`~repro.linkage.index.LinkageIndex`),
each key family is expressed as a ``(key_id, row)`` pair array, and one
``np.unique`` over a combined integer key dedupes and groups the pairs —
bit-identical postings to the historical per-name ``setdefault``/``append``
loop (kept as :func:`scalar_postings`, the equivalence reference).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.exceptions import LinkageError
from repro.linkage.normalize import token_qgrams

__all__ = [
    "BLOCKING_SCHEMES",
    "BlockingIndex",
    "TokenStream",
    "tokenize_corpus",
    "scalar_postings",
]

#: Recognized blocking schemes, from highest to lowest recall.
BLOCKING_SCHEMES = ("qgram", "first-letter", "none")

_EMPTY = np.empty(0, dtype=np.intp)


@dataclass(frozen=True)
class TokenStream:
    """The flattened token instances of a normalized corpus.

    One array pass shared by blocking and the linkage index: ``rows[i]`` is
    the corpus row of token instance ``i``, ``ids[i]`` its token id (ids are
    assigned in order of first appearance, matching the historical
    ``vocabulary.setdefault`` numbering), and ``unique[id]`` the token string.
    """

    rows: np.ndarray
    ids: np.ndarray
    unique: tuple[str, ...]


def tokenize_corpus(
    normalized_names: Sequence[str], token_counts: np.ndarray | None = None
) -> TokenStream:
    """Flatten a normalized corpus into one :class:`TokenStream`.

    Normalized names are single-space token joins, so the whole corpus
    tokenizes in one C-level ``" ".join(...).split()``; per-row token counts
    come from space counts (callers that already hold the corpus code buffer
    can pass them precomputed via ``token_counts``).  Should a caller pass
    non-canonical whitespace, the count/total mismatch is detected and the
    slow per-name split runs instead.
    """
    names = list(normalized_names)
    tokens: Sequence[str] = " ".join(names).split()
    if token_counts is not None:
        counts = np.asarray(token_counts, dtype=np.int64)
    else:
        counts = np.fromiter(
            ((name.count(" ") + 1) if name else 0 for name in names),
            dtype=np.int64,
            count=len(names),
        )
    if len(tokens) != int(counts.sum()):  # non-canonical whitespace fallback
        token_lists = [name.split() for name in names]
        counts = np.fromiter(
            (len(ts) for ts in token_lists), dtype=np.int64, count=len(token_lists)
        )
        tokens = [t for ts in token_lists for t in ts]
    rows = np.repeat(np.arange(len(names), dtype=np.intp), counts)
    if not tokens:
        return TokenStream(rows=rows, ids=np.empty(0, dtype=np.int64), unique=())
    # Token ids in first-appearance order — the historical
    # `vocabulary.setdefault(token, len(vocabulary))` numbering.  A plain dict
    # beats numpy string unique here (short keys, one pass, no string sort).
    vocabulary: dict[str, int] = {}
    ids = np.fromiter(
        (vocabulary.setdefault(token, len(vocabulary)) for token in tokens),
        dtype=np.int64,
        count=len(tokens),
    )
    return TokenStream(rows=rows, ids=ids, unique=tuple(vocabulary))


def _compact_ints(ids: np.ndarray, n_keys: int) -> np.ndarray:
    """Narrow non-negative ids below ``n_keys`` to the smallest signed dtype.

    Stable integer argsort is a radix sort with one pass per byte, so sorting
    ``int16`` keys is ~4x cheaper than the same keys as ``int64``.
    """
    if n_keys <= np.iinfo(np.int8).max:
        return ids.astype(np.int8, copy=False)
    if n_keys <= np.iinfo(np.int16).max:
        return ids.astype(np.int16, copy=False)
    if n_keys <= np.iinfo(np.int32).max:
        return ids.astype(np.int32, copy=False)
    return ids


def _group_rows_by_key(
    key_ids: np.ndarray, rows: np.ndarray, n_keys: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Dedupe ``(key, row)`` pairs and group rows by key.

    ``rows`` must be non-decreasing (token instances arrive in corpus order),
    so one stable integer argsort by key leaves each key's rows ascending with
    duplicates adjacent — no hash set or combined-key ``np.unique`` needed.
    Returns ``(present, offsets, grouped)``: the rows of key ``present[i]``
    are ``grouped[offsets[i]:offsets[i + 1]]``, unique and ascending — the
    same order the historical append-in-row-order loop produced.
    """
    if key_ids.shape[0] == 0:
        return np.empty(0, dtype=np.int64), np.zeros(1, dtype=np.int64), _EMPTY
    order = np.argsort(_compact_ints(key_ids, n_keys), kind="stable")
    keys = key_ids[order]
    grouped = rows[order]
    keep = np.empty(keys.shape[0], dtype=bool)
    keep[0] = True
    np.logical_or(keys[1:] != keys[:-1], grouped[1:] != grouped[:-1], out=keep[1:])
    keys = keys[keep]
    grouped = grouped[keep]
    boundaries = np.flatnonzero(keys[1:] != keys[:-1]) + 1
    offsets = np.concatenate(([0], boundaries, [keys.shape[0]]))
    return keys[offsets[:-1]], offsets, grouped.astype(np.intp, copy=False)


def scalar_postings(
    normalized_names: Sequence[str], scheme: str = "qgram", qgram_size: int = 2
) -> dict[str, np.ndarray]:
    """The historical per-name postings builder.

    Kept as the executable reference the vectorized construction is pinned
    against (hypothesis equivalence suite, build benchmark).
    """
    reference = BlockingIndex([], scheme=scheme, qgram_size=qgram_size)
    postings: dict[str, list[int]] = {}
    if scheme != "none":
        for row, normalized in enumerate(normalized_names):
            for key in reference.keys(normalized):
                postings.setdefault(key, []).append(row)
    return {key: np.asarray(rows, dtype=np.intp) for key, rows in postings.items()}


class BlockingIndex:
    """Inverted index from block keys to corpus row indices.

    Parameters
    ----------
    normalized_names:
        Corpus names, already passed through
        :func:`~repro.linkage.normalize.normalize_name`.
    scheme:
        One of :data:`BLOCKING_SCHEMES`.
    qgram_size:
        Character q-gram width of the ``"qgram"`` scheme (ignored otherwise).
    tokens:
        Optional pre-computed :class:`TokenStream` of ``normalized_names``
        (the linkage index shares its stream so the corpus tokenizes once).
    """

    def __init__(
        self,
        normalized_names: Sequence[str],
        scheme: str = "qgram",
        qgram_size: int = 2,
        tokens: TokenStream | None = None,
    ) -> None:
        if scheme not in BLOCKING_SCHEMES:
            raise LinkageError(
                f"unknown blocking scheme {scheme!r}; options: {sorted(BLOCKING_SCHEMES)}"
            )
        if qgram_size < 2:
            raise LinkageError(f"qgram_size must be >= 2, got {qgram_size}")
        self.scheme = scheme
        self.qgram_size = qgram_size
        self._size = len(normalized_names)
        self._postings: dict[str, np.ndarray] = {}
        if scheme == "none" or self._size == 0:
            return
        stream = tokens if tokens is not None else tokenize_corpus(normalized_names)
        self._build_postings(stream)

    def _build_postings(self, stream: TokenStream) -> None:
        unique = stream.unique
        if not unique:
            return
        letters = np.asarray(unique).astype("U1")
        letter_unique, letter_inverse = np.unique(letters, return_inverse=True)
        if self.scheme == "first-letter":
            self._insert_family(
                "", letter_unique.tolist(), letter_inverse[stream.ids], stream.rows
            )
            return
        self._insert_family("t:", list(unique), stream.ids, stream.rows)
        self._insert_family(
            "f:", letter_unique.tolist(), letter_inverse[stream.ids], stream.rows
        )
        # Q-grams: computed once per *unique* token, then expanded to token
        # instances with a repeat/gather (no per-instance Python).
        gram_lists = [token_qgrams(token, self.qgram_size) for token in unique]
        gram_counts = np.fromiter(
            (len(grams) for grams in gram_lists), dtype=np.int64, count=len(gram_lists)
        )
        flat_grams = [gram for grams in gram_lists for gram in grams]
        gram_unique, gram_inverse = np.unique(
            np.asarray(flat_grams), return_inverse=True
        )
        token_offsets = np.concatenate(([0], np.cumsum(gram_counts)))
        instance_counts = gram_counts[stream.ids]
        total = int(instance_counts.sum())
        instance_starts = np.concatenate(([0], np.cumsum(instance_counts)[:-1]))
        local = np.arange(total, dtype=np.int64) - np.repeat(
            instance_starts, instance_counts
        )
        positions = np.repeat(token_offsets[stream.ids], instance_counts) + local
        self._insert_family(
            "q:",
            gram_unique.tolist(),
            gram_inverse[positions],
            np.repeat(stream.rows, instance_counts),
        )

    def _insert_family(
        self,
        prefix: str,
        key_strings: list[str],
        key_ids: np.ndarray,
        rows: np.ndarray,
    ) -> None:
        present, offsets, grouped = _group_rows_by_key(key_ids, rows, len(key_strings))
        postings = self._postings
        for i, key_id in enumerate(present.tolist()):
            postings[prefix + key_strings[key_id]] = grouped[
                offsets[i] : offsets[i + 1]
            ]

    def extend(self, delta_size: int, tokens: TokenStream) -> None:
        """Merge the postings of ``delta_size`` appended corpus rows in place.

        ``tokens`` is the :class:`TokenStream` of the appended names alone,
        with rows numbered from 0; they become corpus rows
        ``[size, size + delta_size)``.  Posting arrays stay unique and
        ascending (every new row exceeds every existing one), so each key's
        rows equal a from-scratch build over the full corpus.  Only the
        postings *dict order* may differ from a rebuild — candidate sets are
        unions over the query's keys and never observe it.
        """
        offset = self._size
        self._size += delta_size
        if self.scheme == "none" or delta_size == 0:
            return
        delta = object.__new__(BlockingIndex)
        delta.scheme = self.scheme
        delta.qgram_size = self.qgram_size
        delta._size = delta_size
        delta._postings = {}
        delta._build_postings(tokens)
        postings = self._postings
        for key, rows in delta._postings.items():
            shifted = rows + offset
            existing = postings.get(key)
            postings[key] = (
                shifted if existing is None else np.concatenate([existing, shifted])
            )

    def keys(self, normalized: str) -> set[str]:
        """The block keys of one normalized name under this scheme."""
        keys: set[str] = set()
        for token in normalized.split():
            if self.scheme == "first-letter":
                keys.add(token[0])
                continue
            keys.add("f:" + token[0])
            keys.add("t:" + token)
            for gram in token_qgrams(token, self.qgram_size):
                keys.add("q:" + gram)
        return keys

    def candidate_rows(self, normalized_query: str) -> np.ndarray:
        """Corpus rows sharing a block key with the query (ascending, unique)."""
        if self.scheme == "none":
            return np.arange(self._size, dtype=np.intp)
        hits = [
            self._postings[key]
            for key in self.keys(normalized_query)
            if key in self._postings
        ]
        if not hits:
            return _EMPTY
        if len(hits) == 1:
            return hits[0]
        return np.unique(np.concatenate(hits))

    # Serialization / sharding ---------------------------------------------------------

    def restrict(self, start: int, stop: int) -> "BlockingIndex":
        """A new index over corpus rows ``[start, stop)``, renumbered from 0.

        Equivalent to building a fresh index over the corpus slice: postings
        rows are ascending, so each key's slice is one ``searchsorted`` pair.
        """
        clone = object.__new__(BlockingIndex)
        clone.scheme = self.scheme
        clone.qgram_size = self.qgram_size
        clone._size = stop - start
        postings: dict[str, np.ndarray] = {}
        for key, rows in self._postings.items():
            lo, hi = np.searchsorted(rows, (start, stop))
            if hi > lo:
                postings[key] = rows[lo:hi] - start
        clone._postings = postings
        return clone

    def __getstate__(self) -> dict:
        # Flat-buffer form: one joined key string plus a counts vector and the
        # concatenated posting rows — no dict of small arrays on the wire.
        keys = list(self._postings)
        counts = np.fromiter(
            (self._postings[key].shape[0] for key in keys),
            dtype=np.int64,
            count=len(keys),
        )
        rows = (
            np.concatenate([self._postings[key] for key in keys])
            if keys
            else _EMPTY
        )
        return {
            "scheme": self.scheme,
            "qgram_size": self.qgram_size,
            "size": self._size,
            "keys": "\n".join(keys),  # block keys never contain newlines
            "counts": counts,
            "rows": np.ascontiguousarray(rows, dtype=np.intp),
        }

    @classmethod
    def _from_flat(
        cls,
        scheme: str,
        qgram_size: int,
        size: int,
        keys_joined: str,
        counts: np.ndarray,
        rows: np.ndarray,
    ) -> "BlockingIndex":
        """Rebuild an index around flat posting buffers without copying them.

        The postings dict holds slices of ``rows`` — pickling
        (:meth:`__setstate__`) and the shared-memory attach
        (:mod:`repro.linkage.shm`) both reconstruct this way, so a worker
        attaching to a shared segment allocates only the (small) dict of
        views, never the posting rows themselves.
        """
        clone = object.__new__(cls)
        clone.scheme = scheme
        clone.qgram_size = qgram_size
        clone._size = size
        keys = keys_joined.split("\n") if keys_joined else []
        offsets = np.concatenate(([0], np.cumsum(counts)))
        clone._postings = {
            key: rows[offsets[i] : offsets[i + 1]] for i, key in enumerate(keys)
        }
        return clone

    def __setstate__(self, state: dict) -> None:
        rebuilt = BlockingIndex._from_flat(
            state["scheme"],
            state["qgram_size"],
            state["size"],
            state["keys"],
            state["counts"],
            state["rows"],
        )
        self.__dict__.update(rebuilt.__dict__)
