"""Optional numba backend for the pairwise linkage kernels.

The NumPy kernels in :mod:`repro.linkage.kernels` vectorize one DP step per
query character across every (query, candidate) pair — great for wide
batches, but each step still materializes ``(n, width)`` temporaries.  This
module compiles the same three primitives as per-pair scalar loops with
``numba.njit``: no temporaries, one cache-friendly pass per pair, and
``nogil`` so thread pools scale.

Bit-identity is a hard requirement, not an aspiration: the scalar loops
perform the *same float operations in the same order* as the NumPy
expressions (e.g. Jaro is ``((a + b) + c) / 3.0`` with ``int/int`` true
division, exactly as the elementwise NumPy expression evaluates), and
:func:`build_numba_primitives` verifies every primitive against the NumPy
reference on a fixed probe corpus before the backend is accepted.  Any
import, compile or equivalence failure raises
:class:`~repro.linkage.kernels.KernelBackendUnavailable`, and the registry
falls back to NumPy — numba is an accelerator, never a dependency.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = ["build_numba_primitives", "numba_available"]

_PRIMITIVES: dict[str, Callable] | None = None


def numba_available() -> bool:
    """Whether the numba backend imports, compiles and passes the self-check."""
    try:
        build_numba_primitives()
        return True
    except Exception:
        return False


def _compile(numba):
    njit = numba.njit(cache=True, nogil=True)

    @njit
    def _levenshtein_pairs(queries, codes, lengths, out):
        n_rows = codes.shape[0]
        m = queries.shape[1]
        width = codes.shape[1]
        previous = np.empty(width + 1, dtype=np.int64)
        current = np.empty(width + 1, dtype=np.int64)
        for r in range(n_rows):
            length = lengths[r]
            for j in range(length + 1):
                previous[j] = j
            for i in range(m):
                char = queries[r, i]
                current[0] = i + 1
                for j in range(1, length + 1):
                    cost = previous[j - 1]
                    if codes[r, j - 1] != char:
                        cost += 1
                    deletion = previous[j] + 1
                    insertion = current[j - 1] + 1
                    if deletion < cost:
                        cost = deletion
                    if insertion < cost:
                        cost = insertion
                    current[j] = cost
                for j in range(length + 1):
                    previous[j] = current[j]
            out[r] = previous[length]

    @njit
    def _jaro_pairs(queries, codes, lengths, out):
        n_rows = codes.shape[0]
        m = queries.shape[1]
        width = codes.shape[1]
        right_matched = np.empty(width, dtype=np.bool_)
        left_matched = np.empty(m, dtype=np.bool_)
        left_chars = np.empty(m, dtype=np.int32)
        right_chars = np.empty(width, dtype=np.int32)
        for r in range(n_rows):
            length = lengths[r]
            if m == 0:
                out[r] = 1.0 if length == 0 else 0.0
                continue
            longest = m if m > length else length
            window = longest // 2 - 1
            if window < 0:
                window = 0
            for j in range(length):
                right_matched[j] = False
            matches = 0
            for i in range(m):
                left_matched[i] = False
                start = i - window
                if start < 0:
                    start = 0
                end = i + window + 1
                if end > length:
                    end = length
                char = queries[r, i]
                for j in range(start, end):
                    if not right_matched[j] and codes[r, j] == char:
                        right_matched[j] = True
                        left_matched[i] = True
                        matches += 1
                        break
            if matches == 0:
                out[r] = 0.0
                continue
            k = 0
            for i in range(m):
                if left_matched[i]:
                    left_chars[k] = queries[r, i]
                    k += 1
            k = 0
            for j in range(length):
                if right_matched[j]:
                    right_chars[k] = codes[r, j]
                    k += 1
            mismatched = 0
            for k in range(matches):
                if left_chars[k] != right_chars[k]:
                    mismatched += 1
            transpositions = mismatched // 2
            denominator = length if length > 0 else 1
            out[r] = (
                matches / m
                + matches / denominator
                + (matches - transpositions) / matches
            ) / 3.0

    @njit
    def _jaccard_pairs(
        query_token_matrix, query_token_counts, token_matrix, token_counts, out
    ):
        n_rows = token_matrix.shape[0]
        corpus_width = token_matrix.shape[1]
        query_width = query_token_matrix.shape[1]
        for r in range(n_rows):
            intersection = 0
            for j in range(corpus_width):
                token = token_matrix[r, j]
                for q in range(query_width):
                    if query_token_matrix[r, q] == token:
                        intersection += 1
                        break
            union = query_token_counts[r] + token_counts[r] - intersection
            out[r] = intersection / union if union > 0 else 1.0

    def levenshtein_distance_pairs(queries, codes, lengths):
        queries = np.ascontiguousarray(queries, dtype=np.int32)
        codes = np.ascontiguousarray(codes, dtype=np.int32)
        out = np.empty(codes.shape[0], dtype=np.int64)
        _levenshtein_pairs(queries, codes, lengths.astype(np.int64), out)
        return out

    def jaro_similarity_pairs(queries, codes, lengths):
        queries = np.ascontiguousarray(queries, dtype=np.int32)
        codes = np.ascontiguousarray(codes, dtype=np.int32)
        out = np.empty(codes.shape[0], dtype=np.float64)
        _jaro_pairs(queries, codes, lengths.astype(np.int64), out)
        return out

    def token_jaccard_pairs(
        query_token_matrix, query_token_counts, token_matrix, token_counts
    ):
        query_token_matrix = np.ascontiguousarray(
            query_token_matrix, dtype=np.int64
        )
        token_matrix = np.ascontiguousarray(token_matrix, dtype=np.int64)
        out = np.empty(token_matrix.shape[0], dtype=np.float64)
        _jaccard_pairs(
            query_token_matrix,
            query_token_counts.astype(np.int64),
            token_matrix,
            token_counts.astype(np.int64),
            out,
        )
        return out

    return {
        "levenshtein_distance_pairs": levenshtein_distance_pairs,
        "jaro_similarity_pairs": jaro_similarity_pairs,
        "token_jaccard_pairs": token_jaccard_pairs,
    }


def _self_check(primitives: dict[str, Callable]) -> None:
    """Probe every primitive against the NumPy reference, bit-for-bit.

    The probe corpus exercises the hazardous cases: empty strings, non-ASCII
    code points, candidates shorter/longer than the query, transposition-heavy
    pairs, and unknown query tokens (padded ids).  Exact array equality is
    required — a backend that is merely "close" is a broken backend.
    """
    from repro.linkage import kernels as k

    strings = ["maria lopez", "marai lpoez", "", "møller", "xu", "annalise k"]
    codes, lengths = k.encode_strings(strings)
    queries = np.vstack(
        [
            np.resize(k.encode_query(text or "q"), codes.shape[1])
            for text in ["maria lopez", "moller", "a", "møllér", "ux", "annalise"]
        ]
    ).astype(np.int32)
    queries = queries[:, : codes.shape[1]]
    reference = k._levenshtein_distance_pairs_numpy(queries, codes, lengths)
    candidate = primitives["levenshtein_distance_pairs"](queries, codes, lengths)
    if not np.array_equal(reference, candidate):
        raise AssertionError("numba levenshtein deviates from the NumPy reference")
    reference = k._jaro_similarity_pairs_numpy(queries, codes, lengths)
    candidate = primitives["jaro_similarity_pairs"](queries, codes, lengths)
    if not np.array_equal(reference, candidate):
        raise AssertionError("numba jaro deviates from the NumPy reference")
    token_matrix = np.array(
        [[0, 1, k.PAD], [1, 2, 3], [k.PAD, k.PAD, k.PAD], [4, k.PAD, k.PAD]],
        dtype=np.int64,
    )
    token_counts = np.array([2, 3, 0, 1], dtype=np.int64)
    query_tokens = np.array(
        [[0, k.QUERY_PAD], [2, 3], [k.QUERY_PAD, k.QUERY_PAD], [4, 0]],
        dtype=np.int64,
    )
    query_counts = np.array([2, 2, 1, 2], dtype=np.int64)
    reference = k._token_jaccard_pairs_numpy(
        query_tokens, query_counts, token_matrix, token_counts
    )
    candidate = primitives["token_jaccard_pairs"](
        query_tokens, query_counts, token_matrix, token_counts
    )
    if not np.array_equal(reference, candidate):
        raise AssertionError("numba jaccard deviates from the NumPy reference")


def build_numba_primitives() -> dict[str, Callable]:
    """Import numba, compile the three primitives, and verify them.

    Memoized: the compile + self-check runs once per process.  Raises
    :class:`~repro.linkage.kernels.KernelBackendUnavailable` when numba is
    missing or the compiled kernels fail the bit-identity probe.
    """
    global _PRIMITIVES
    if _PRIMITIVES is not None:
        return _PRIMITIVES
    from repro.linkage.kernels import KernelBackendUnavailable

    try:
        import numba
    except Exception as error:  # pragma: no cover - depends on environment
        raise KernelBackendUnavailable(f"numba is not importable: {error}") from error
    try:
        primitives = _compile(numba)
        _self_check(primitives)
    except Exception as error:  # pragma: no cover - depends on environment
        raise KernelBackendUnavailable(
            f"numba kernels failed to compile or verify: {error}"
        ) from error
    _PRIMITIVES = primitives
    return primitives
