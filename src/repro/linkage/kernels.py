"""Batched string-similarity kernels.

Each kernel scores one query string against a whole candidate set in
vectorized NumPy, and is an exact (bit-identical) replica of the scalar
reference implementation in :mod:`repro.fusion.linkage` — the scalar
functions are the executable specification, and the hypothesis suite in
``tests/test_property_linkage.py`` pins the equivalence on arbitrary strings.

Data layout
-----------
Candidate strings are pre-encoded once per corpus into a padded ``int32``
character-code matrix (``(n, width)``; :data:`PAD` marks cells past a string's
end) plus a length vector.  A query is encoded on the fly into a 1-D code
array.  Kernels then run one dynamic-programming or matching step per *query
character*, each step vectorized across every candidate at once:

* **Levenshtein** — the classic DP row recurrence.  The in-row dependency
  (``current[j-1] + 1``, the insertion chain) is resolved with a min-plus
  prefix scan: ``current[j] = min_{i<=j}(t[i] + j - i)`` becomes a running
  ``np.minimum.accumulate`` over ``t - arange`` followed by ``+ arange``.
* **Jaro / Jaro-Winkler** — the greedy windowed matching loop runs per query
  character with the window, availability and first-free-slot selection
  computed as ``(n, width)`` masks; transpositions are counted by gathering
  matched characters in order with a stable boolean argsort.
* **Token-set Jaccard** — corpus token sets are padded id matrices; one
  ``np.isin`` per query gives every intersection size.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "PAD",
    "encode_query",
    "encode_strings",
    "levenshtein_distance_batch",
    "levenshtein_similarity_batch",
    "jaro_similarity_batch",
    "jaro_winkler_similarity_batch",
    "token_jaccard_batch",
]

#: Padding code for cells past a string's end; never equals a real character.
PAD = np.int32(-1)


def encode_query(text: str) -> np.ndarray:
    """A string as a 1-D ``int32`` array of Unicode code points."""
    return np.fromiter(map(ord, text), dtype=np.int32, count=len(text))


def encode_strings(strings: Sequence[str]) -> tuple[np.ndarray, np.ndarray]:
    """Encode strings into a padded ``(n, width)`` code matrix plus lengths."""
    lengths = np.fromiter(
        (len(s) for s in strings), dtype=np.int32, count=len(strings)
    )
    width = max(int(lengths.max(initial=0)), 1)
    codes = np.full((len(strings), width), PAD, dtype=np.int32)
    for row, text in enumerate(strings):
        if text:
            codes[row, : len(text)] = encode_query(text)
    return codes, lengths


def levenshtein_distance_batch(
    query: np.ndarray, codes: np.ndarray, lengths: np.ndarray
) -> np.ndarray:
    """Edit distance of ``query`` against every encoded candidate.

    One DP step per query character, vectorized over all candidates; the
    insertion chain inside a DP row is a min-plus prefix scan (see the module
    docstring).  Padding cells always cost a substitution, and the answer for
    row ``r`` is read at column ``lengths[r]``, so padding never leaks into
    the result.
    """
    n_rows, width = codes.shape
    span = np.arange(width + 1, dtype=np.int32)
    dp = np.broadcast_to(span, (n_rows, width + 1)).copy()
    for position, char in enumerate(query, start=1):
        stepped = np.empty_like(dp)
        stepped[:, 0] = position
        np.minimum(dp[:, 1:] + 1, dp[:, :-1] + (codes != char), out=stepped[:, 1:])
        dp = np.minimum.accumulate(stepped - span, axis=1) + span
    return dp[np.arange(n_rows), lengths].astype(np.int64)


def levenshtein_similarity_batch(
    query: np.ndarray, codes: np.ndarray, lengths: np.ndarray
) -> np.ndarray:
    """Edit distance normalized into ``[0, 1]`` (1.0 when both strings empty)."""
    distances = levenshtein_distance_batch(query, codes, lengths)
    longest = np.maximum(len(query), lengths).astype(np.int64)
    return np.where(longest > 0, 1.0 - distances / np.maximum(longest, 1), 1.0)


def jaro_similarity_batch(
    query: np.ndarray, codes: np.ndarray, lengths: np.ndarray
) -> np.ndarray:
    """Jaro similarity of ``query`` against every encoded candidate.

    Replays the scalar greedy matching exactly: for each query position, each
    candidate claims the first unclaimed equal character inside the Jaro
    window; transpositions compare the claimed characters of both sides in
    order.
    """
    n_rows, width = codes.shape
    m = len(query)
    lengths = lengths.astype(np.int64)
    if m == 0:
        return np.where(lengths == 0, 1.0, 0.0)
    window = np.maximum(np.maximum(m, lengths) // 2 - 1, 0)[:, None]
    columns = np.arange(width)
    right_free = np.ones((n_rows, width), dtype=bool)
    left_matched = np.zeros((n_rows, m), dtype=bool)
    for i, char in enumerate(query):
        start = np.maximum(i - window, 0)
        end = np.minimum(i + window + 1, lengths[:, None])
        available = (columns >= start) & (columns < end) & right_free & (codes == char)
        hit = available.any(axis=1)
        first = available.argmax(axis=1)
        right_free[hit, first[hit]] = False
        left_matched[hit, i] = True
    matches = left_matched.sum(axis=1)

    # Gather matched characters of both sides in original order (stable sort
    # moves matched positions to the front) and count mismatched pairs.
    left_order = np.argsort(~left_matched, axis=1, kind="stable")
    right_order = np.argsort(right_free, axis=1, kind="stable")
    compare = min(m, width)
    left_chars = query[left_order[:, :compare]]
    right_chars = np.take_along_axis(codes, right_order[:, :compare], axis=1)
    in_match = np.arange(compare) < matches[:, None]
    transpositions = ((left_chars != right_chars) & in_match).sum(axis=1) // 2

    jaro = (
        matches / m
        + matches / np.maximum(lengths, 1)
        + (matches - transpositions) / np.maximum(matches, 1)
    ) / 3.0
    return np.where(matches == 0, 0.0, jaro)


def jaro_winkler_similarity_batch(
    query: np.ndarray,
    codes: np.ndarray,
    lengths: np.ndarray,
    prefix_scale: float = 0.1,
) -> np.ndarray:
    """Jaro boosted by the common prefix (up to 4 characters), batched."""
    jaro = jaro_similarity_batch(query, codes, lengths)
    limit = min(4, len(query), codes.shape[1])
    if limit == 0:
        return jaro
    # PAD cells never equal a query character, so candidates shorter than the
    # prefix window stop the cumulative product exactly where zip() stops the
    # scalar loop.
    equal = codes[:, :limit] == query[:limit]
    prefix = equal.cumprod(axis=1).sum(axis=1)
    return jaro + prefix * prefix_scale * (1.0 - jaro)


def token_jaccard_batch(
    query_token_ids: np.ndarray,
    token_matrix: np.ndarray,
    token_counts: np.ndarray,
    query_token_count: int,
) -> np.ndarray:
    """Jaccard similarity of a query token-id set against every corpus row.

    ``token_matrix`` holds each corpus name's *unique* token ids padded with
    :data:`PAD`; ``query_token_ids`` are the query tokens known to the corpus
    vocabulary, while ``query_token_count`` counts all unique query tokens
    (unknown tokens enlarge the union but can never intersect).
    """
    intersection = np.isin(token_matrix, query_token_ids).sum(axis=1)
    union = query_token_count + token_counts.astype(np.int64) - intersection
    return np.where(union > 0, intersection / np.maximum(union, 1), 1.0)
