"""Batched string-similarity kernels.

Each kernel scores query strings against whole candidate sets in vectorized
NumPy, and is an exact (bit-identical) replica of the scalar reference
implementation in :mod:`repro.fusion.linkage` — the scalar functions are the
executable specification, and the hypothesis suite in
``tests/test_property_linkage.py`` pins the equivalence on arbitrary strings.

Data layout
-----------
Candidate strings are pre-encoded once per corpus into a padded ``int32``
character-code matrix (``(n, width)``; :data:`PAD` marks cells past a string's
end) plus a length vector.  Kernels come in two aligned flavours:

* the ``*_batch`` kernels score **one** query (a 1-D code array) against every
  candidate row;
* the ``*_pairs`` kernels score **aligned pairs**: row ``i`` of an
  ``(n, m)`` query-code matrix against row ``i`` of the candidate matrix.
  This is how :meth:`repro.linkage.index.LinkageIndex.match_many` batches the
  *query* axis — all queries of one length share a DP, each paired with its
  own blocked candidates.  The ``*_batch`` kernels are thin wrappers that
  broadcast their single query across the pair axis, so both flavours are one
  implementation.

Kernels run one dynamic-programming or matching step per *query character*,
each step vectorized across every (query, candidate) pair at once:

* **Levenshtein** — the classic DP row recurrence.  The in-row dependency
  (``current[j-1] + 1``, the insertion chain) is resolved with a min-plus
  prefix scan: ``current[j] = min_{i<=j}(t[i] + j - i)`` becomes a running
  ``np.minimum.accumulate`` over ``t - arange`` followed by ``+ arange``.
* **Jaro / Jaro-Winkler** — the greedy windowed matching loop runs per query
  character with the window, availability and first-free-slot selection
  computed as ``(n, width)`` masks; transpositions are counted by gathering
  matched characters in order with a stable boolean argsort.
* **Token-set Jaccard** — corpus token sets are padded id matrices; one
  ``np.isin`` per query gives every intersection size.

Backend registry
----------------
The three pairwise primitives — :func:`levenshtein_distance_pairs`,
:func:`jaro_similarity_pairs` and :func:`token_jaccard_pairs` — dispatch
through a small backend registry.  ``"numpy"`` is the built-in reference;
``"numba"`` (:mod:`repro.linkage.accel`) compiles per-pair scalar loops with
``numba.njit`` and is **bit-identical** by construction (same float operation
order) and by a load-time self-check.  ``set_kernel_backend("auto")`` — the
default, also reachable via the ``REPRO_KERNEL_BACKEND`` environment variable
— picks numba when it imports, compiles and passes the self-check, and falls
back to NumPy cleanly otherwise.  Every similarity wrapper (``*_batch``,
``*_similarity_*``, Winkler) composes from the three primitives, so switching
backends can never change a composite score.
"""

from __future__ import annotations

import contextlib
import os
from typing import Callable, Sequence

import numpy as np

from repro.exceptions import LinkageError

__all__ = [
    "PAD",
    "QUERY_PAD",
    "KERNEL_PRIMITIVES",
    "KernelBackendUnavailable",
    "register_kernel_backend",
    "set_kernel_backend",
    "active_kernel_backend",
    "kernel_backend_info",
    "kernel_backend",
    "encode_query",
    "encode_strings",
    "encode_strings_flat",
    "pad_ragged",
    "levenshtein_distance_batch",
    "levenshtein_similarity_batch",
    "jaro_similarity_batch",
    "jaro_winkler_similarity_batch",
    "token_jaccard_batch",
    "levenshtein_distance_pairs",
    "levenshtein_similarity_pairs",
    "jaro_similarity_pairs",
    "jaro_winkler_similarity_pairs",
    "token_jaccard_pairs",
]

#: Padding code for cells past a string's end; never equals a real character.
PAD = np.int32(-1)

#: Padding id for query token-id matrices; distinct from :data:`PAD` so a
#: padded query token never equals a padded corpus token.
QUERY_PAD = np.int64(-2)

#: The pairwise primitives a kernel backend must provide.  Everything else in
#: this module (batch wrappers, similarity normalization, the Winkler boost)
#: composes from these three, so a backend replaces exactly this set.
KERNEL_PRIMITIVES = (
    "levenshtein_distance_pairs",
    "jaro_similarity_pairs",
    "token_jaccard_pairs",
)


class KernelBackendUnavailable(LinkageError, RuntimeError):
    """A requested kernel backend cannot be used on this interpreter.

    Raised when the backend's dependency does not import, fails to compile,
    or — defensively — does not reproduce the NumPy reference bit-for-bit on
    the load-time self-check.
    """


#: name -> dict of primitive implementations, or a zero-argument loader that
#: produces that dict on first use (lazy import/compile).
_BACKEND_FACTORIES: dict[str, "Callable[[], dict[str, Callable]] | None"] = {}
_BACKEND_IMPLS: dict[str, dict[str, Callable]] = {}
_ACTIVE_BACKEND: str | None = None  # resolved lazily (env var, auto fallback)


def register_kernel_backend(
    name: str, loader: "Callable[[], dict[str, Callable]]"
) -> None:
    """Register a kernel backend under ``name``.

    ``loader`` is called (once, lazily) when the backend is first selected and
    must return a mapping with one callable per :data:`KERNEL_PRIMITIVES`
    entry, each bit-identical to the NumPy reference.  It may raise
    :class:`KernelBackendUnavailable` to signal a missing dependency.
    """
    _BACKEND_FACTORIES[name] = loader
    _BACKEND_IMPLS.pop(name, None)


def _load_backend(name: str) -> dict[str, Callable]:
    """The primitive table of backend ``name`` (loading/compiling on first use)."""
    impls = _BACKEND_IMPLS.get(name)
    if impls is not None:
        return impls
    loader = _BACKEND_FACTORIES.get(name)
    if loader is None:
        options = sorted(_BACKEND_FACTORIES)
        raise KernelBackendUnavailable(
            f"unknown kernel backend {name!r}; options: {options + ['auto']}"
        )
    impls = loader()
    missing = [p for p in KERNEL_PRIMITIVES if p not in impls]
    if missing:
        raise KernelBackendUnavailable(
            f"kernel backend {name!r} is missing primitives: {missing}"
        )
    _BACKEND_IMPLS[name] = impls
    return impls


def _select_backend(name: str, strict: bool) -> str:
    """Resolve a requested backend name to a loadable one.

    ``"auto"`` prefers numba and falls back to ``"numpy"``.  With ``strict``
    a named backend that cannot load raises; otherwise (the lazy env-var
    path) it degrades to ``"numpy"`` so a stale environment setting can never
    take the library down.
    """
    if name == "auto":
        try:
            _load_backend("numba")
            return "numba"
        except KernelBackendUnavailable:
            return "numpy"
    try:
        _load_backend(name)
        return name
    except KernelBackendUnavailable:
        if strict:
            raise
        return "numpy"


def set_kernel_backend(name: str) -> str:
    """Select the kernel backend; returns the previously active name.

    ``"auto"`` prefers numba and falls back to ``"numpy"`` silently; naming a
    backend explicitly raises :class:`KernelBackendUnavailable` when it cannot
    be loaded.  Selection is process-global (the kernels are pure functions of
    their arguments, and every backend is bit-identical, so a mid-flight
    switch cannot change any result).
    """
    global _ACTIVE_BACKEND
    previous = active_kernel_backend()
    _ACTIVE_BACKEND = _select_backend(name, strict=True)
    return previous


def active_kernel_backend() -> str:
    """The name of the backend currently answering the pairwise primitives."""
    global _ACTIVE_BACKEND
    if _ACTIVE_BACKEND is None:
        # First use: honour REPRO_KERNEL_BACKEND, defaulting to auto-detect.
        requested = os.environ.get("REPRO_KERNEL_BACKEND", "auto").strip() or "auto"
        _ACTIVE_BACKEND = _select_backend(requested, strict=False)
    return _ACTIVE_BACKEND


def kernel_backend_info() -> dict[str, object]:
    """Introspection snapshot: active backend plus per-backend availability."""
    active = active_kernel_backend()
    availability: dict[str, bool] = {}
    for name in sorted(_BACKEND_FACTORIES):
        try:
            _load_backend(name)
            availability[name] = True
        except KernelBackendUnavailable:
            availability[name] = False
    return {"active": active, "available": availability}


@contextlib.contextmanager
def kernel_backend(name: str):
    """Temporarily select a kernel backend (tests, benchmark A/B runs)."""
    previous = set_kernel_backend(name)
    try:
        yield active_kernel_backend()
    finally:
        set_kernel_backend(previous)


def _primitive(name: str) -> Callable:
    """The active backend's implementation of primitive ``name``."""
    return _load_backend(active_kernel_backend())[name]


def encode_query(text: str) -> np.ndarray:
    """A string as a 1-D ``int32`` array of Unicode code points."""
    return np.fromiter(map(ord, text), dtype=np.int32, count=len(text))


def encode_strings(strings: Sequence[str]) -> tuple[np.ndarray, np.ndarray]:
    """Encode strings into a padded ``(n, width)`` code matrix plus lengths."""
    lengths = np.fromiter(
        (len(s) for s in strings), dtype=np.int32, count=len(strings)
    )
    width = max(int(lengths.max(initial=0)), 1)
    codes = np.full((len(strings), width), PAD, dtype=np.int32)
    for row, text in enumerate(strings):
        if text:
            codes[row, : len(text)] = encode_query(text)
    return codes, lengths


def encode_strings_flat(strings: Sequence[str]) -> tuple[np.ndarray, np.ndarray]:
    """Encode strings into one flat ``int32`` code buffer plus a length vector.

    The flat buffer is the concatenation of every string's code points, built
    in a single ``np.frombuffer`` over the UTF-32 encoding of the joined text
    — no per-string loop.  Lengths come from the same buffer: the strings are
    joined on NUL (falling back to a per-string ``len`` pass in the unlikely
    case a string itself contains NUL) and the separator positions diffed.
    Together with ``lengths`` (and its cumulative sum) the flat buffer is the
    canonical serialized form of a corpus; :func:`pad_ragged` rebuilds the
    padded ``(n, width)`` matrix :func:`encode_strings` returns.
    """
    n_strings = len(strings)
    if n_strings == 0:
        return np.empty(0, dtype=np.int32), np.empty(0, dtype=np.int32)
    with_seps = np.frombuffer(
        "\x00".join(strings).encode("utf-32-le"), dtype="<i4"
    ).astype(np.int32, copy=False)
    separators = np.flatnonzero(with_seps == 0)
    if separators.size != n_strings - 1:  # a string contains NUL itself
        lengths = np.fromiter(
            (len(s) for s in strings), dtype=np.int32, count=n_strings
        )
        flat = np.frombuffer(
            "".join(strings).encode("utf-32-le"), dtype="<i4"
        ).astype(np.int32, copy=False)
        return flat, lengths
    bounds = np.concatenate(([-1], separators, [with_seps.shape[0]]))
    lengths = (np.diff(bounds) - 1).astype(np.int32)
    flat = with_seps[with_seps != 0] if separators.size else with_seps
    return flat, lengths


def pad_ragged(flat: np.ndarray, counts: np.ndarray, pad, dtype) -> np.ndarray:
    """Scatter a flat row-major ragged buffer into a padded ``(n, width)`` matrix.

    ``flat`` concatenates the rows' values; ``counts[r]`` is row ``r``'s length.
    Cells past a row's end hold ``pad``.  Width is at least 1 so downstream
    kernels never see a zero-column matrix.
    """
    n_rows = counts.shape[0]
    width = max(int(counts.max(initial=0)), 1)
    matrix = np.full((n_rows, width), pad, dtype=dtype)
    if flat.size:
        mask = np.arange(width) < np.asarray(counts, dtype=np.int64)[:, None]
        matrix[mask] = flat
    return matrix


def _broadcast_query(query: np.ndarray, n_rows: int) -> np.ndarray:
    """View one 1-D query-code array as an ``(n_rows, m)`` pair matrix."""
    return np.broadcast_to(query, (n_rows, query.shape[0]))


def levenshtein_distance_pairs(
    queries: np.ndarray, codes: np.ndarray, lengths: np.ndarray
) -> np.ndarray:
    """Edit distance of aligned (query, candidate) code-row pairs.

    ``queries`` is an ``(n, m)`` code matrix: row ``i`` is scored against
    ``codes[i]``.  One DP step per query position, vectorized over all pairs;
    the insertion chain inside a DP row is a min-plus prefix scan (see the
    module docstring).  Padding cells always cost a substitution, and the
    answer for row ``r`` is read at column ``lengths[r]``, so padding never
    leaks into the result.
    """
    return _primitive("levenshtein_distance_pairs")(queries, codes, lengths)


def _levenshtein_distance_pairs_numpy(
    queries: np.ndarray, codes: np.ndarray, lengths: np.ndarray
) -> np.ndarray:
    n_rows, width = codes.shape
    span = np.arange(width + 1, dtype=np.int32)
    dp = np.broadcast_to(span, (n_rows, width + 1)).copy()
    for position in range(1, queries.shape[1] + 1):
        chars = queries[:, position - 1, None]
        stepped = np.empty_like(dp)
        stepped[:, 0] = position
        np.minimum(dp[:, 1:] + 1, dp[:, :-1] + (codes != chars), out=stepped[:, 1:])
        dp = np.minimum.accumulate(stepped - span, axis=1) + span
    return dp[np.arange(n_rows), lengths].astype(np.int64)


def levenshtein_distance_batch(
    query: np.ndarray, codes: np.ndarray, lengths: np.ndarray
) -> np.ndarray:
    """Edit distance of one ``query`` against every encoded candidate."""
    return levenshtein_distance_pairs(
        _broadcast_query(query, codes.shape[0]), codes, lengths
    )


def levenshtein_similarity_pairs(
    queries: np.ndarray, codes: np.ndarray, lengths: np.ndarray
) -> np.ndarray:
    """Pairwise edit distance normalized into ``[0, 1]`` (1.0 when both empty)."""
    distances = levenshtein_distance_pairs(queries, codes, lengths)
    longest = np.maximum(queries.shape[1], lengths).astype(np.int64)
    return np.where(longest > 0, 1.0 - distances / np.maximum(longest, 1), 1.0)


def levenshtein_similarity_batch(
    query: np.ndarray, codes: np.ndarray, lengths: np.ndarray
) -> np.ndarray:
    """Edit distance normalized into ``[0, 1]`` (1.0 when both strings empty)."""
    return levenshtein_similarity_pairs(
        _broadcast_query(query, codes.shape[0]), codes, lengths
    )


def jaro_similarity_pairs(
    queries: np.ndarray, codes: np.ndarray, lengths: np.ndarray
) -> np.ndarray:
    """Jaro similarity of aligned (query, candidate) code-row pairs.

    Replays the scalar greedy matching exactly: for each query position, each
    pair claims the first unclaimed equal candidate character inside the Jaro
    window; transpositions compare the claimed characters of both sides in
    order.  All queries must share one length ``m`` (the pair-bucketing
    invariant of ``match_many``).
    """
    return _primitive("jaro_similarity_pairs")(queries, codes, lengths)


def _jaro_similarity_pairs_numpy(
    queries: np.ndarray, codes: np.ndarray, lengths: np.ndarray
) -> np.ndarray:
    n_rows, width = codes.shape
    m = queries.shape[1]
    lengths = lengths.astype(np.int64)
    if m == 0:
        return np.where(lengths == 0, 1.0, 0.0)
    window = np.maximum(np.maximum(m, lengths) // 2 - 1, 0)[:, None]
    columns = np.arange(width)
    right_free = np.ones((n_rows, width), dtype=bool)
    left_matched = np.zeros((n_rows, m), dtype=bool)
    for i in range(m):
        chars = queries[:, i, None]
        start = np.maximum(i - window, 0)
        end = np.minimum(i + window + 1, lengths[:, None])
        available = (columns >= start) & (columns < end) & right_free & (codes == chars)
        hit = available.any(axis=1)
        first = available.argmax(axis=1)
        right_free[hit, first[hit]] = False
        left_matched[hit, i] = True
    matches = left_matched.sum(axis=1)

    # Gather matched characters of both sides in original order (stable sort
    # moves matched positions to the front) and count mismatched pairs.
    left_order = np.argsort(~left_matched, axis=1, kind="stable")
    right_order = np.argsort(right_free, axis=1, kind="stable")
    compare = min(m, width)
    left_chars = np.take_along_axis(queries, left_order[:, :compare], axis=1)
    right_chars = np.take_along_axis(codes, right_order[:, :compare], axis=1)
    in_match = np.arange(compare) < matches[:, None]
    transpositions = ((left_chars != right_chars) & in_match).sum(axis=1) // 2

    jaro = (
        matches / m
        + matches / np.maximum(lengths, 1)
        + (matches - transpositions) / np.maximum(matches, 1)
    ) / 3.0
    return np.where(matches == 0, 0.0, jaro)


def jaro_similarity_batch(
    query: np.ndarray, codes: np.ndarray, lengths: np.ndarray
) -> np.ndarray:
    """Jaro similarity of one ``query`` against every encoded candidate."""
    return jaro_similarity_pairs(
        _broadcast_query(query, codes.shape[0]), codes, lengths
    )


def jaro_winkler_similarity_pairs(
    queries: np.ndarray,
    codes: np.ndarray,
    lengths: np.ndarray,
    prefix_scale: float = 0.1,
) -> np.ndarray:
    """Pairwise Jaro boosted by the common prefix (up to 4 characters)."""
    jaro = jaro_similarity_pairs(queries, codes, lengths)
    limit = min(4, queries.shape[1], codes.shape[1])
    if limit == 0:
        return jaro
    # PAD cells never equal a query character, so candidates shorter than the
    # prefix window stop the cumulative product exactly where zip() stops the
    # scalar loop.
    equal = codes[:, :limit] == queries[:, :limit]
    prefix = equal.cumprod(axis=1).sum(axis=1)
    return jaro + prefix * prefix_scale * (1.0 - jaro)


def jaro_winkler_similarity_batch(
    query: np.ndarray,
    codes: np.ndarray,
    lengths: np.ndarray,
    prefix_scale: float = 0.1,
) -> np.ndarray:
    """Jaro boosted by the common prefix (up to 4 characters), batched."""
    return jaro_winkler_similarity_pairs(
        _broadcast_query(query, codes.shape[0]), codes, lengths, prefix_scale
    )


def token_jaccard_pairs(
    query_token_matrix: np.ndarray,
    query_token_counts: np.ndarray,
    token_matrix: np.ndarray,
    token_counts: np.ndarray,
) -> np.ndarray:
    """Pairwise Jaccard of query token-id sets against corpus token-id rows.

    ``query_token_matrix`` holds each query's *known* (in-vocabulary) unique
    token ids padded with :data:`QUERY_PAD`, aligned row-for-row with
    ``token_matrix`` (each corpus name's unique ids padded with :data:`PAD`);
    ``query_token_counts`` counts all unique query tokens, known or not
    (unknown tokens enlarge the union but can never intersect).  The two pad
    values are distinct, so padding never fakes an intersection.
    """
    return _primitive("token_jaccard_pairs")(
        query_token_matrix, query_token_counts, token_matrix, token_counts
    )


def _token_jaccard_pairs_numpy(
    query_token_matrix: np.ndarray,
    query_token_counts: np.ndarray,
    token_matrix: np.ndarray,
    token_counts: np.ndarray,
) -> np.ndarray:
    intersection = (
        (token_matrix[:, :, None] == query_token_matrix[:, None, :])
        .any(axis=2)
        .sum(axis=1)
    )
    union = query_token_counts + token_counts.astype(np.int64) - intersection
    return np.where(union > 0, intersection / np.maximum(union, 1), 1.0)


def token_jaccard_batch(
    query_token_ids: np.ndarray,
    token_matrix: np.ndarray,
    token_counts: np.ndarray,
    query_token_count: int,
) -> np.ndarray:
    """Jaccard similarity of a query token-id set against every corpus row.

    ``token_matrix`` holds each corpus name's *unique* token ids padded with
    :data:`PAD`; ``query_token_ids`` are the query tokens known to the corpus
    vocabulary, while ``query_token_count`` counts all unique query tokens
    (unknown tokens enlarge the union but can never intersect).
    """
    intersection = np.isin(token_matrix, query_token_ids).sum(axis=1)
    union = query_token_count + token_counts.astype(np.int64) - intersection
    return np.where(union > 0, intersection / np.maximum(union, 1), 1.0)


def _load_numpy_backend() -> dict[str, Callable]:
    return {
        "levenshtein_distance_pairs": _levenshtein_distance_pairs_numpy,
        "jaro_similarity_pairs": _jaro_similarity_pairs_numpy,
        "token_jaccard_pairs": _token_jaccard_pairs_numpy,
    }


def _load_numba_backend() -> dict[str, Callable]:
    from repro.linkage.accel import build_numba_primitives

    return build_numba_primitives()


register_kernel_backend("numpy", _load_numpy_backend)
register_kernel_backend("numba", _load_numba_backend)
