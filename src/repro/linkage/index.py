"""The batched record-linkage engine.

:class:`LinkageIndex` is built once per auxiliary corpus and then answers any
number of approximate-match queries against it:

* corpus names are normalized and pre-encoded into a padded ``int32``
  character-code matrix plus a token-id matrix (built once, at index time);
* a query is resolved by blocking (:mod:`repro.linkage.blocking`) to a
  candidate row set, then scored against *all* candidates at once with the
  vectorized kernels of :mod:`repro.linkage.kernels`;
* the composite score is exactly the scalar reference
  (:func:`repro.fusion.linkage.name_similarity`):
  ``max(0.6 * jaro_winkler + 0.4 * levenshtein, token_jaccard)`` on
  normalized names — bit-identical, so the engine reproduces the historical
  ``NameMatcher`` matches wherever blocking agrees;
* :meth:`match_many` resolves a whole batch of queries (the release's entire
  identifier column) in one pass, deduplicating repeated queries and batching
  the *query* axis too: queries are bucketed by normalized length and each
  bucket's (query, candidate) pairs run through one pairwise DP
  (:mod:`repro.linkage.kernels`, the ``*_pairs`` kernels), bit-identical to
  resolving every query on its own.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.exceptions import LinkageError
from repro.linkage.blocking import BlockingIndex
from repro.linkage.kernels import (
    PAD,
    QUERY_PAD,
    encode_query,
    encode_strings,
    jaro_winkler_similarity_batch,
    jaro_winkler_similarity_pairs,
    levenshtein_similarity_batch,
    levenshtein_similarity_pairs,
    token_jaccard_batch,
    token_jaccard_pairs,
)
from repro.linkage.normalize import normalize_name

__all__ = ["MatchCandidate", "LinkageIndex"]


@dataclass(frozen=True)
class MatchCandidate:
    """A candidate match of a query name against a corpus entry."""

    query: str
    candidate: str
    candidate_index: int
    score: float


class LinkageIndex:
    """Batched approximate name matcher over a fixed corpus.

    Parameters
    ----------
    corpus_names:
        The names known to the auxiliary source (web page owners).
    threshold:
        Minimum composite similarity for a match to be reported.
    blocking:
        Blocking scheme (see :data:`~repro.linkage.blocking.BLOCKING_SCHEMES`):
        ``"qgram"`` (default; multi-key q-gram/token/first-letter),
        ``"first-letter"`` (the historical scheme) or ``"none"`` (full scan).
    qgram_size:
        Character q-gram width used by the ``"qgram"`` scheme.
    prefix_scale:
        Jaro-Winkler common-prefix boost factor, in ``[0, 0.25]``.
    """

    def __init__(
        self,
        corpus_names: Sequence[str],
        threshold: float = 0.82,
        blocking: str = "qgram",
        qgram_size: int = 2,
        prefix_scale: float = 0.1,
    ) -> None:
        if not 0.0 < threshold <= 1.0:
            raise LinkageError(f"threshold must lie in (0, 1], got {threshold}")
        if not 0.0 <= prefix_scale <= 0.25:
            raise LinkageError("prefix_scale must lie in [0, 0.25]")
        self.threshold = threshold
        self.prefix_scale = prefix_scale
        self._names = [str(name) for name in corpus_names]
        self._normalized = [normalize_name(name) for name in self._names]
        self._codes, self._lengths = encode_strings(self._normalized)

        # Token-id matrix: each row holds the unique token ids of one name.
        vocabulary: dict[str, int] = {}
        id_sets = [
            sorted({vocabulary.setdefault(t, len(vocabulary)) for t in normalized.split()})
            for normalized in self._normalized
        ]
        self._token_counts = np.fromiter(
            (len(ids) for ids in id_sets), dtype=np.int64, count=len(id_sets)
        )
        token_width = max(int(self._token_counts.max(initial=0)), 1)
        self._token_matrix = np.full((len(id_sets), token_width), PAD, dtype=np.int64)
        for row, ids in enumerate(id_sets):
            self._token_matrix[row, : len(ids)] = ids
        self._vocabulary = vocabulary
        # Lowest corpus row per token *set*.  The composite score hits exactly
        # 1.0 iff the token sets are equal (token-Jaccard is 1.0 only then,
        # and the 0.6/0.4 blend reaches 1.0 only for identical strings, which
        # have equal token sets a fortiori), so a query whose token set is in
        # this dict resolves to its lowest-row perfect match without touching
        # the kernels — exactly what argmax-first over all candidates returns.
        self._perfect: dict[frozenset[str], int] = {}
        for row, normalized in enumerate(self._normalized):
            if normalized:
                self._perfect.setdefault(frozenset(normalized.split()), row)
        self._blocking = BlockingIndex(
            self._normalized, scheme=blocking, qgram_size=qgram_size
        )
        # Character-count matrix for the match_many pruning bounds: one count
        # per character code occurring anywhere in the corpus.  Normalized
        # names draw from a tiny alphabet (ASCII letters plus space); corpora
        # with an unexpectedly wide alphabet skip count-based pruning rather
        # than build a huge matrix.
        alphabet = np.unique(self._codes)
        alphabet = alphabet[alphabet != PAD]
        if 0 < alphabet.size <= 64:
            self._alphabet: np.ndarray | None = alphabet
            self._char_counts = np.stack(
                [(self._codes == code).sum(axis=1) for code in alphabet], axis=1
            ).astype(np.int32)
        else:
            self._alphabet = None
            self._char_counts = None

    # Introspection ------------------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of corpus entries in the index."""
        return len(self._names)

    @property
    def names(self) -> tuple[str, ...]:
        """The corpus names, in index order."""
        return tuple(self._names)

    @property
    def blocking(self) -> BlockingIndex:
        """The blocking index (scheme, keys, candidate sets)."""
        return self._blocking

    # Scoring ------------------------------------------------------------------------

    def candidate_rows(self, query: str) -> np.ndarray:
        """Corpus rows the blocking scheme pairs with ``query`` (ascending)."""
        return self._blocking.candidate_rows(normalize_name(query))

    def scores(self, query: str, rows: np.ndarray | None = None) -> np.ndarray:
        """Composite similarity of ``query`` against corpus rows (default: all).

        Bit-identical to calling the scalar
        :func:`repro.fusion.linkage.name_similarity` per pair.
        """
        normalized_query = normalize_name(query)
        if rows is None:
            rows = np.arange(len(self._names), dtype=np.intp)
        if not normalized_query:
            return np.zeros(len(rows))
        return self._score_rows(normalized_query, rows)

    def _score_rows(self, normalized_query: str, rows: np.ndarray) -> np.ndarray:
        query_codes = encode_query(normalized_query)
        codes = self._codes[rows]
        lengths = self._lengths[rows]
        jaro_winkler = jaro_winkler_similarity_batch(
            query_codes, codes, lengths, self.prefix_scale
        )
        levenshtein = levenshtein_similarity_batch(query_codes, codes, lengths)
        query_tokens = set(normalized_query.split())
        known_ids = np.fromiter(
            (self._vocabulary[t] for t in query_tokens if t in self._vocabulary),
            dtype=np.int64,
        )
        token_set = token_jaccard_batch(
            known_ids,
            self._token_matrix[rows],
            self._token_counts[rows],
            len(query_tokens),
        )
        return np.maximum(0.6 * jaro_winkler + 0.4 * levenshtein, token_set)

    # Matching -----------------------------------------------------------------------

    def candidates(self, query: str) -> list[MatchCandidate]:
        """All corpus entries scoring above the threshold, best first.

        Ties keep ascending corpus order, exactly like the historical
        ``NameMatcher`` (stable sort over candidates visited in index order).
        """
        query = str(query)
        normalized_query = normalize_name(query)
        if not normalized_query:
            return []
        rows = self._blocking.candidate_rows(normalized_query)
        if rows.size == 0:
            return []
        scores = self._score_rows(normalized_query, rows)
        keep = scores >= self.threshold
        rows, scores = rows[keep], scores[keep]
        order = np.argsort(-scores, kind="stable")
        return [
            MatchCandidate(
                query=query,
                candidate=self._names[row],
                candidate_index=int(row),
                score=float(score),
            )
            for row, score in zip(rows[order], scores[order])
        ]

    def best_match(self, query: str) -> MatchCandidate | None:
        """The single best match above the threshold, or ``None``.

        Equivalent to ``candidates(query)[0]`` without materializing the list
        (``argmax`` keeps the lowest corpus row on ties, like the stable sort).
        """
        query = str(query)
        normalized_query = normalize_name(query)
        if not normalized_query:
            return None
        perfect = self._perfect.get(frozenset(normalized_query.split()))
        if perfect is not None:
            # A 1.0-scoring candidate exists; every blocking scheme pairs it
            # with the query (equal token sets share every token key), and no
            # lower row can tie it (ties at 1.0 are exactly the equal-set rows,
            # of which this is the lowest).
            return MatchCandidate(
                query=query,
                candidate=self._names[perfect],
                candidate_index=perfect,
                score=1.0,
            )
        rows = self._blocking.candidate_rows(normalized_query)
        if rows.size == 0:
            return None
        scores = self._score_rows(normalized_query, rows)
        best = int(np.argmax(scores))
        if scores[best] < self.threshold:
            return None
        return MatchCandidate(
            query=query,
            candidate=self._names[rows[best]],
            candidate_index=int(rows[best]),
            score=float(scores[best]),
        )

    #: Upper bound on (query, candidate) pairs scored per pairwise kernel call;
    #: keeps the DP working set a few dozen MB regardless of batch size.
    _MAX_PAIRS_PER_CHUNK = 262_144

    def match_many(self, queries: Sequence[str]) -> list[MatchCandidate | None]:
        """The best match for every query, in query order.

        Repeated queries are resolved once.  Unique queries that survive the
        perfect-match short-circuit are bucketed by normalized length; each
        bucket concatenates its blocked candidate rows into one
        (query, candidate) pair list and scores it with the pairwise kernels,
        then a per-query segment argmax picks the winner — bit-identical to
        calling :meth:`best_match` per query (same scores, same lowest-row
        tie-breaking, same threshold test).
        """
        resolved: dict[str, MatchCandidate | None] = {}
        pending: dict[int, list[tuple[str, str, np.ndarray]]] = {}
        seen: set[str] = set()
        for query in queries:
            query = str(query)
            if query in seen:
                continue
            seen.add(query)
            normalized = normalize_name(query)
            if not normalized:
                resolved[query] = None
                continue
            perfect = self._perfect.get(frozenset(normalized.split()))
            if perfect is not None:
                resolved[query] = MatchCandidate(
                    query=query,
                    candidate=self._names[perfect],
                    candidate_index=perfect,
                    score=1.0,
                )
                continue
            rows = self._blocking.candidate_rows(normalized)
            if rows.size == 0:
                resolved[query] = None
                continue
            pending.setdefault(len(normalized), []).append((query, normalized, rows))
        for entries in pending.values():
            start = 0
            while start < len(entries):
                stop, total = start, 0
                while stop < len(entries) and (
                    stop == start
                    or total + entries[stop][2].size <= self._MAX_PAIRS_PER_CHUNK
                ):
                    total += entries[stop][2].size
                    stop += 1
                self._resolve_pair_chunk(entries[start:stop], resolved)
                start = stop
        return [resolved[str(query)] for query in queries]

    #: Slack subtracted from the threshold in the pruning bound comparison so
    #: float rounding in the bound arithmetic can only *keep* extra pairs,
    #: never drop one whose true score reaches the threshold.
    _PRUNE_SLACK = 1e-9

    def _resolve_pair_chunk(
        self,
        entries: Sequence[tuple[str, str, np.ndarray]],
        resolved: dict[str, MatchCandidate | None],
    ) -> None:
        """Score one equal-length bucket chunk pairwise and record the winners.

        The full composite score only decides a match when it reaches the
        threshold, so pairs that provably cannot get there are pruned before
        the expensive DP kernels using cheap per-pair bounds:

        * the token-set Jaccard branch is computed **exactly** (one small
          padded-id comparison per pair);
        * with ``c`` the character-multiset overlap of the pair (one
          ``min(counts).sum()`` over the corpus alphabet), the Levenshtein
          distance is at least ``max(m, len) - c``, so
          ``lev <= c / max(m, len)``, and Jaro matches are at most ``c``, so
          ``jaro <= (c/m + c/len + 1) / 3``; the Winkler boost uses the
          pair's **exact** common prefix (a 4-column comparison).

        A pruned pair scores strictly below the threshold, so it can neither
        be returned nor tie a returned candidate — the surviving pairs'
        exact argmax is the global answer, bit-identical to
        :meth:`best_match` (pinned by the hypothesis suite).
        """
        length = len(entries[0][1])
        query_codes = np.empty((len(entries), length), dtype=np.int32)
        token_sets = []
        for row, (_, normalized, _) in enumerate(entries):
            query_codes[row] = encode_query(normalized)
            token_sets.append(set(normalized.split()))
        token_width = max(len(tokens) for tokens in token_sets)
        query_tokens = np.full((len(entries), token_width), QUERY_PAD, dtype=np.int64)
        query_token_counts = np.empty(len(entries), dtype=np.int64)
        for row, tokens in enumerate(token_sets):
            query_token_counts[row] = len(tokens)
            known = [self._vocabulary[t] for t in tokens if t in self._vocabulary]
            query_tokens[row, : len(known)] = known

        counts = np.fromiter(
            (rows.size for _, _, rows in entries), dtype=np.intp, count=len(entries)
        )
        pair_rows = np.concatenate([rows for _, _, rows in entries])
        pair_query = np.repeat(np.arange(len(entries)), counts)

        token_set = token_jaccard_pairs(
            query_tokens[pair_query],
            query_token_counts[pair_query],
            self._token_matrix[pair_rows],
            self._token_counts[pair_rows],
        )
        lengths = self._lengths[pair_rows].astype(np.int64)
        longest = np.maximum(length, lengths)
        if self._char_counts is not None:
            query_char_counts = np.stack(
                [(query_codes == code).sum(axis=1) for code in self._alphabet],
                axis=1,
            ).astype(np.int32)
            common = np.minimum(
                self._char_counts[pair_rows], query_char_counts[pair_query]
            ).sum(axis=1)
        else:
            common = np.minimum(length, lengths)
        levenshtein_bound = common / np.maximum(longest, 1)
        jaro_bound = np.where(
            common > 0,
            (common / length + common / np.maximum(lengths, 1) + 1.0) / 3.0,
            0.0,
        )
        # Exact Winkler boost: the pair's true common prefix (up to 4 chars).
        window = min(4, length, self._codes.shape[1])
        if window:
            equal = (
                self._codes[pair_rows, :window] == query_codes[pair_query, :window]
            )
            prefix = equal.cumprod(axis=1).sum(axis=1)
        else:
            prefix = np.zeros(pair_rows.shape[0], dtype=np.int64)
        jw_bound = jaro_bound + prefix * self.prefix_scale * (1.0 - jaro_bound)
        cutoff = self.threshold - self._PRUNE_SLACK
        viable = (0.6 * jw_bound + 0.4 * levenshtein_bound >= cutoff) | (
            token_set >= cutoff
        )

        scores = np.full(pair_rows.shape[0], -np.inf)
        kept = np.nonzero(viable)[0]
        if kept.size:
            queries = query_codes[pair_query[kept]]
            codes = self._codes[pair_rows[kept]]
            kept_lengths = self._lengths[pair_rows[kept]]
            jaro_winkler = jaro_winkler_similarity_pairs(
                queries, codes, kept_lengths, self.prefix_scale
            )
            levenshtein = levenshtein_similarity_pairs(queries, codes, kept_lengths)
            scores[kept] = np.maximum(
                0.6 * jaro_winkler + 0.4 * levenshtein, token_set[kept]
            )

        offset = 0
        for (query, _, rows), count in zip(entries, counts):
            segment = scores[offset : offset + count]
            best = int(np.argmax(segment))
            if segment[best] >= self.threshold:
                resolved[query] = MatchCandidate(
                    query=query,
                    candidate=self._names[int(rows[best])],
                    candidate_index=int(rows[best]),
                    score=float(segment[best]),
                )
            else:
                resolved[query] = None
            offset += int(count)
