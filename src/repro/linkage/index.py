"""The batched record-linkage engine.

:class:`LinkageIndex` is built once per auxiliary corpus and then answers any
number of approximate-match queries against it:

* corpus names are normalized and pre-encoded into a padded ``int32``
  character-code matrix plus a token-id matrix (built once, at index time);
* a query is resolved by blocking (:mod:`repro.linkage.blocking`) to a
  candidate row set, then scored against *all* candidates at once with the
  vectorized kernels of :mod:`repro.linkage.kernels`;
* the composite score is exactly the scalar reference
  (:func:`repro.fusion.linkage.name_similarity`):
  ``max(0.6 * jaro_winkler + 0.4 * levenshtein, token_jaccard)`` on
  normalized names — bit-identical, so the engine reproduces the historical
  ``NameMatcher`` matches wherever blocking agrees;
* :meth:`match_many` resolves a whole batch of queries (the release's entire
  identifier column) in one pass, deduplicating repeated queries and batching
  the *query* axis too: queries are bucketed by normalized length and each
  bucket's (query, candidate) pairs run through one pairwise DP
  (:mod:`repro.linkage.kernels`, the ``*_pairs`` kernels), bit-identical to
  resolving every query on its own.

Construction is vectorized end to end and the index *is* a bundle of flat
NumPy buffers:

* normalization runs once over the joined corpus
  (:func:`~repro.linkage.normalize.normalize_names`), and the character
  codes come from a single ``np.frombuffer`` over the joined normalized text
  (:func:`~repro.linkage.kernels.encode_strings_flat`);
* token ids, the per-row token matrix, per-token-id postings and the
  blocking postings all derive from one flattened
  :class:`~repro.linkage.blocking.TokenStream` via ``np.unique`` over
  combined ``(key, row)`` integer keys — no per-name Python loops;
* the perfect-match table and the pruning character-count matrix are built
  lazily on first use, so constructing (or unpickling) an index does no
  per-row Python work at all;
* pickling (:meth:`__getstate__`) serializes only the flat buffers — padded
  matrices and lazy caches are rebuilt on load — and :meth:`shard` splits an
  index into row-range shards whose :meth:`match_many` results merge back
  (:meth:`merge_matches`) bit-identically to the unsharded answer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.exceptions import LinkageError
from repro.linkage.blocking import (
    BlockingIndex,
    _compact_ints,
    tokenize_corpus,
)
from repro.linkage.kernels import (
    PAD,
    QUERY_PAD,
    encode_query,
    encode_strings_flat,
    jaro_winkler_similarity_batch,
    jaro_winkler_similarity_pairs,
    levenshtein_similarity_batch,
    levenshtein_similarity_pairs,
    pad_ragged,
    token_jaccard_batch,
    token_jaccard_pairs,
)
from repro.linkage.normalize import normalize_name, normalize_names

__all__ = ["MatchCandidate", "LinkageIndex"]

#: Placeholder distinguishing "never computed" from a computed ``None``.
_UNSET = object()


@dataclass(frozen=True)
class MatchCandidate:
    """A candidate match of a query name against a corpus entry."""

    query: str
    candidate: str
    candidate_index: int
    score: float


class LinkageIndex:
    """Batched approximate name matcher over a fixed corpus.

    Parameters
    ----------
    corpus_names:
        The names known to the auxiliary source (web page owners).
    threshold:
        Minimum composite similarity for a match to be reported.
    blocking:
        Blocking scheme (see :data:`~repro.linkage.blocking.BLOCKING_SCHEMES`):
        ``"qgram"`` (default; multi-key q-gram/token/first-letter),
        ``"first-letter"`` (the historical scheme) or ``"none"`` (full scan).
    qgram_size:
        Character q-gram width used by the ``"qgram"`` scheme.
    prefix_scale:
        Jaro-Winkler common-prefix boost factor, in ``[0, 0.25]``.
    """

    def __init__(
        self,
        corpus_names: Sequence[str],
        threshold: float = 0.82,
        blocking: str = "qgram",
        qgram_size: int = 2,
        prefix_scale: float = 0.1,
    ) -> None:
        if not 0.0 < threshold <= 1.0:
            raise LinkageError(f"threshold must lie in (0, 1], got {threshold}")
        if not 0.0 <= prefix_scale <= 0.25:
            raise LinkageError("prefix_scale must lie in [0, 0.25]")
        names = [str(name) for name in corpus_names]
        normalized = normalize_names(names)
        flat_codes, lengths = encode_strings_flat(normalized)
        n_rows = len(names)
        # Token counts straight from the code buffer (space code 32): spaces
        # per row plus one for every non-empty row.
        row_of_char = np.repeat(
            np.arange(n_rows, dtype=np.int64), lengths.astype(np.int64)
        )
        spaces = np.bincount(row_of_char[flat_codes == 32], minlength=n_rows)
        stream = tokenize_corpus(normalized, token_counts=spaces + (lengths > 0))
        vocab_size = len(stream.unique)
        # Dedupe (row, token) pairs once; both orderings of the same pair set
        # give the token matrix (grouped by row, ids ascending — exactly the
        # historical per-name ``sorted(set(...))``) and the per-id postings
        # (grouped by id, rows ascending).
        stride = np.int64(max(vocab_size, 1))
        pairs = np.sort(
            _compact_ints(stream.rows * stride + stream.ids, n_rows * int(stride))
        )
        if pairs.size:
            pairs = pairs[np.concatenate(([True], pairs[1:] != pairs[:-1]))]
        pair_rows = (pairs // stride).astype(np.intp)
        pair_ids = pairs % stride
        token_counts = np.bincount(pair_rows, minlength=n_rows).astype(np.int64)
        # pair_rows is ascending, so a stable sort by id keeps rows ascending
        # within each id group — the postings invariant.
        by_id = np.argsort(_compact_ints(pair_ids, vocab_size), kind="stable")
        post_counts = np.bincount(pair_ids, minlength=vocab_size)
        name_lengths = np.fromiter(
            (len(name) for name in names), dtype=np.int64, count=n_rows
        )
        self._attach_buffers(
            threshold=threshold,
            prefix_scale=prefix_scale,
            row_offset=0,
            names_joined="".join(names),
            name_offsets=np.concatenate(([0], np.cumsum(name_lengths))),
            flat_codes=flat_codes,
            lengths=lengths,
            vocab=stream.unique,
            token_ids=pair_ids,
            token_counts=token_counts,
            post_rows=pair_rows[by_id],
            post_offsets=np.concatenate(([0], np.cumsum(post_counts))),
            blocking=BlockingIndex(
                normalized, scheme=blocking, qgram_size=qgram_size, tokens=stream
            ),
        )

    def _attach_buffers(
        self,
        *,
        threshold: float,
        prefix_scale: float,
        row_offset: int,
        names_joined: "str | Callable[[], str]",
        name_offsets: np.ndarray,
        flat_codes: np.ndarray,
        lengths: np.ndarray,
        vocab: tuple[str, ...],
        token_ids: np.ndarray,
        token_counts: np.ndarray,
        post_rows: np.ndarray,
        post_offsets: np.ndarray,
        blocking: BlockingIndex,
        codes: np.ndarray | None = None,
        token_matrix: np.ndarray | None = None,
        perfect_sorted: tuple[np.ndarray, np.ndarray] | None = None,
        char_bounds: "tuple[np.ndarray, np.ndarray] | None | object" = _UNSET,
    ) -> None:
        """Adopt the flat buffers and rebuild the derived padded matrices.

        The buffers are the index's canonical state (what pickling ships and
        :meth:`shard` slices); everything else — padded code/token matrices,
        the vocabulary dict, the perfect-match table, pruning counts, the
        materialized name list — is derived, vectorized or lazy.  A
        shared-memory attach (:mod:`repro.linkage.shm`) passes the padded
        ``codes`` / ``token_matrix`` as segment views so no worker re-derives
        them, and ``names_joined`` may be a zero-argument callable decoding
        the joined corpus text on first use.
        """
        self.threshold = threshold
        self.prefix_scale = prefix_scale
        #: Global row number of this index's row 0 (non-zero only for shards);
        #: added to every reported ``candidate_index``.
        self.row_offset = row_offset
        self._names_joined = names_joined
        self._name_offsets = name_offsets
        self._flat_codes = flat_codes
        self._lengths = lengths
        self._codes = (
            pad_ragged(flat_codes, lengths, PAD, np.int32) if codes is None else codes
        )
        self._vocab = vocab
        self._vocabulary = {token: i for i, token in enumerate(vocab)}
        self._token_ids = token_ids
        self._token_counts = token_counts
        self._token_matrix = (
            pad_ragged(token_ids, token_counts, PAD, np.int64)
            if token_matrix is None
            else token_matrix
        )
        self._token_post_rows = post_rows
        self._token_post_offsets = post_offsets
        self._blocking = blocking
        self._names_list: list[str] | None = None
        self._perfect_cache: dict[bytes, int] | None = None
        #: Shared-memory form of the perfect-match table (attachers only): a
        #: byte-lexicographically sorted ``uint8`` key matrix plus the matching
        #: corpus rows, published once by the segment owner.
        self._perfect_sorted = perfect_sorted
        self._char_cache: tuple[np.ndarray, np.ndarray] | None | object = char_bounds
        #: Grow-by-doubling capacity buffers backing :meth:`extend`, keyed by
        #: buffer name; reset whenever fresh buffers are adopted.
        self._growable: dict[str, np.ndarray] = {}

    # Introspection ------------------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of corpus entries in the index."""
        return int(self._lengths.shape[0])

    @property
    def names(self) -> tuple[str, ...]:
        """The corpus names, in index order."""
        return tuple(self._materialized_names())

    @property
    def blocking(self) -> BlockingIndex:
        """The blocking index (scheme, keys, candidate sets)."""
        return self._blocking

    def _joined_names(self) -> str:
        """The concatenated corpus names, decoding a lazy blob on first use.

        A shared-memory attach stores the joined text as UTF-8 bytes in the
        segment and hands ``_names_joined`` as a decode callable — workers
        that never report a candidate name never pay the private-memory cost
        of the decoded string.
        """
        joined = self._names_joined
        if not isinstance(joined, str):
            joined = self._names_joined = joined()
        return joined

    def _materialized_names(self) -> list[str]:
        if self._names_list is None:
            joined, offsets = self._joined_names(), self._name_offsets
            self._names_list = [
                joined[int(offsets[i]) : int(offsets[i + 1])]
                for i in range(offsets.shape[0] - 1)
            ]
        return self._names_list

    def _name_at(self, row: int) -> str:
        if self._names_list is not None:
            return self._names_list[row]
        offsets = self._name_offsets
        return self._joined_names()[int(offsets[row]) : int(offsets[row + 1])]

    # Lazy derived state -------------------------------------------------------------

    def _perfect_rows(self) -> dict[bytes, int]:
        """Lowest corpus row per token *set*, keyed by the row's padded id bytes.

        The composite score hits exactly 1.0 iff the token sets are equal
        (token-Jaccard is 1.0 only then, and the 0.6/0.4 blend reaches 1.0
        only for identical strings, which have equal token sets a fortiori),
        so a query whose token set is in this table resolves to its lowest-row
        perfect match without touching the kernels — exactly what argmax-first
        over all candidates returns.  Built on first use: rows are fed in
        descending order so the lowest row wins each key.
        """
        if self._perfect_cache is None:
            matrix = np.ascontiguousarray(self._token_matrix)
            row_bytes = matrix.tobytes()
            stride = matrix.shape[1] * matrix.itemsize
            mapping: dict[bytes, int] = {}
            for row in np.flatnonzero(self._token_counts > 0)[::-1].tolist():
                mapping[row_bytes[row * stride : (row + 1) * stride]] = row
            self._perfect_cache = mapping
        return self._perfect_cache

    def _perfect_row(self, normalized_query: str) -> int | None:
        """The lowest corpus row whose token set equals the query's, if any."""
        ids = []
        for token in set(normalized_query.split()):
            token_id = self._vocabulary.get(token)
            if token_id is None:
                return None
            ids.append(token_id)
        width = self._token_matrix.shape[1]
        if len(ids) > width:
            return None
        ids.sort()
        key = np.full(width, PAD, dtype=np.int64)
        key[: len(ids)] = ids
        shared = self._perfect_sorted
        if shared is not None:
            # Attached over shared memory: binary-search the owner's sorted
            # key matrix instead of building a private dict per worker.
            keys, rows = shared
            target = key.tobytes()
            lo, hi = 0, keys.shape[0]
            while lo < hi:
                mid = (lo + hi) // 2
                if keys[mid].tobytes() < target:
                    lo = mid + 1
                else:
                    hi = mid
            if lo < keys.shape[0] and keys[lo].tobytes() == target:
                return int(rows[lo])
            return None
        return self._perfect_rows().get(key.tobytes())

    def _char_bounds(self) -> tuple[np.ndarray, np.ndarray] | None:
        """Character-count matrix for the match_many pruning bounds.

        One count per character code occurring anywhere in the corpus.
        Normalized names draw from a tiny alphabet (ASCII letters plus
        space); corpora with an unexpectedly wide alphabet skip count-based
        pruning rather than build a huge matrix.  Built on first use.
        """
        if self._char_cache is _UNSET:
            flat = self._flat_codes
            small_codes = flat.size > 0 and int(flat.max()) < 4096
            if small_codes:
                # Normalized text draws from [a-z ]: a histogram over the
                # tiny code range beats sorting the whole buffer.
                histogram = np.bincount(flat)
                alphabet = np.flatnonzero(histogram).astype(flat.dtype)
            else:
                alphabet = np.unique(flat)
            if 0 < alphabet.size <= 64:
                n_rows = self._lengths.shape[0]
                if small_codes:
                    lookup = np.zeros(histogram.shape[0], dtype=np.int64)
                    lookup[alphabet] = np.arange(alphabet.size, dtype=np.int64)
                    positions = lookup[flat]
                else:
                    positions = np.searchsorted(alphabet, flat)
                row_of_char = np.repeat(
                    np.arange(n_rows, dtype=np.int64), self._lengths.astype(np.int64)
                )
                counts = (
                    np.bincount(
                        row_of_char * alphabet.size + positions,
                        minlength=n_rows * alphabet.size,
                    )
                    .reshape(n_rows, alphabet.size)
                    .astype(np.int32)
                )
                self._char_cache = (alphabet, counts)
            else:
                self._char_cache = None
        return self._char_cache

    # Scoring ------------------------------------------------------------------------

    def candidate_rows(self, query: str) -> np.ndarray:
        """Corpus rows the blocking scheme pairs with ``query`` (ascending).

        Rows are local to this index (a shard's rows start at 0; add
        :attr:`row_offset` for the global row).
        """
        return self._blocking.candidate_rows(normalize_name(query))

    def scores(self, query: str, rows: np.ndarray | None = None) -> np.ndarray:
        """Composite similarity of ``query`` against corpus rows (default: all).

        Bit-identical to calling the scalar
        :func:`repro.fusion.linkage.name_similarity` per pair.
        """
        normalized_query = normalize_name(query)
        if rows is None:
            rows = np.arange(self.size, dtype=np.intp)
        if not normalized_query:
            return np.zeros(len(rows))
        return self._score_rows(normalized_query, rows)

    def _score_rows(self, normalized_query: str, rows: np.ndarray) -> np.ndarray:
        query_codes = encode_query(normalized_query)
        codes = self._codes[rows]
        lengths = self._lengths[rows]
        jaro_winkler = jaro_winkler_similarity_batch(
            query_codes, codes, lengths, self.prefix_scale
        )
        levenshtein = levenshtein_similarity_batch(query_codes, codes, lengths)
        query_tokens = set(normalized_query.split())
        known_ids = np.fromiter(
            (self._vocabulary[t] for t in query_tokens if t in self._vocabulary),
            dtype=np.int64,
        )
        token_set = token_jaccard_batch(
            known_ids,
            self._token_matrix[rows],
            self._token_counts[rows],
            len(query_tokens),
        )
        return np.maximum(0.6 * jaro_winkler + 0.4 * levenshtein, token_set)

    # Matching -----------------------------------------------------------------------

    def candidates(self, query: str) -> list[MatchCandidate]:
        """All corpus entries scoring above the threshold, best first.

        Ties keep ascending corpus order, exactly like the historical
        ``NameMatcher`` (stable sort over candidates visited in index order).
        """
        query = str(query)
        normalized_query = normalize_name(query)
        if not normalized_query:
            return []
        rows = self._blocking.candidate_rows(normalized_query)
        if rows.size == 0:
            return []
        scores = self._score_rows(normalized_query, rows)
        keep = scores >= self.threshold
        rows, scores = rows[keep], scores[keep]
        order = np.argsort(-scores, kind="stable")
        return [
            MatchCandidate(
                query=query,
                candidate=self._name_at(int(row)),
                candidate_index=int(row) + self.row_offset,
                score=float(score),
            )
            for row, score in zip(rows[order], scores[order])
        ]

    def best_match(self, query: str) -> MatchCandidate | None:
        """The single best match above the threshold, or ``None``.

        Equivalent to ``candidates(query)[0]`` without materializing the list
        (``argmax`` keeps the lowest corpus row on ties, like the stable sort).
        """
        query = str(query)
        normalized_query = normalize_name(query)
        if not normalized_query:
            return None
        perfect = self._perfect_row(normalized_query)
        if perfect is not None:
            # A 1.0-scoring candidate exists; every blocking scheme pairs it
            # with the query (equal token sets share every token key), and no
            # lower row can tie it (ties at 1.0 are exactly the equal-set rows,
            # of which this is the lowest).
            return MatchCandidate(
                query=query,
                candidate=self._name_at(perfect),
                candidate_index=perfect + self.row_offset,
                score=1.0,
            )
        rows = self._blocking.candidate_rows(normalized_query)
        if rows.size == 0:
            return None
        scores = self._score_rows(normalized_query, rows)
        best = int(np.argmax(scores))
        if scores[best] < self.threshold:
            return None
        return MatchCandidate(
            query=query,
            candidate=self._name_at(int(rows[best])),
            candidate_index=int(rows[best]) + self.row_offset,
            score=float(scores[best]),
        )

    #: Upper bound on (query, candidate) pairs scored per pairwise kernel call;
    #: keeps the DP working set a few dozen MB regardless of batch size.
    _MAX_PAIRS_PER_CHUNK = 262_144

    def match_many(self, queries: Sequence[str]) -> list[MatchCandidate | None]:
        """The best match for every query, in query order.

        Repeated queries are resolved once.  Unique queries that survive the
        perfect-match short-circuit are bucketed by normalized length; each
        bucket concatenates its blocked candidate rows into one
        (query, candidate) pair list and scores it with the pairwise kernels,
        then a per-query segment argmax picks the winner — bit-identical to
        calling :meth:`best_match` per query (same scores, same lowest-row
        tie-breaking, same threshold test).
        """
        resolved: dict[str, MatchCandidate | None] = {}
        pending: dict[int, list[tuple[str, str, np.ndarray]]] = {}
        seen: set[str] = set()
        for query in queries:
            query = str(query)
            if query in seen:
                continue
            seen.add(query)
            normalized = normalize_name(query)
            if not normalized:
                resolved[query] = None
                continue
            perfect = self._perfect_row(normalized)
            if perfect is not None:
                resolved[query] = MatchCandidate(
                    query=query,
                    candidate=self._name_at(perfect),
                    candidate_index=perfect + self.row_offset,
                    score=1.0,
                )
                continue
            rows = self._blocking.candidate_rows(normalized)
            if rows.size == 0:
                resolved[query] = None
                continue
            pending.setdefault(len(normalized), []).append((query, normalized, rows))
        for entries in pending.values():
            start = 0
            while start < len(entries):
                stop, total = start, 0
                while stop < len(entries) and (
                    stop == start
                    or total + entries[stop][2].size <= self._MAX_PAIRS_PER_CHUNK
                ):
                    total += entries[stop][2].size
                    stop += 1
                self._resolve_pair_chunk(entries[start:stop], resolved)
                start = stop
        return [resolved[str(query)] for query in queries]

    #: Slack subtracted from the threshold in the pruning bound comparison so
    #: float rounding in the bound arithmetic can only *keep* extra pairs,
    #: never drop one whose true score reaches the threshold.
    _PRUNE_SLACK = 1e-9

    def _shared_token_mask(
        self,
        entries: Sequence[tuple[str, str, np.ndarray]],
        known_ids: Sequence[list[int]],
        n_pairs: int,
    ) -> np.ndarray:
        """Which (query, candidate) pairs share at least one corpus token.

        A merge-join of the query's token postings against the entry's sorted
        candidate rows.  Pairs outside the mask have an **exact** token-set
        Jaccard of 0 (no shared in-vocabulary token means an empty
        intersection, and the union is at least the query's token count, which
        is positive), so the Jaccard kernel only runs on pairs in the mask.
        """
        mask = np.zeros(n_pairs, dtype=bool)
        offsets = self._token_post_offsets
        posting_rows = self._token_post_rows
        position = 0
        for (_, _, rows), ids in zip(entries, known_ids):
            count = rows.size
            if ids:
                hits = [
                    posting_rows[offsets[i] : offsets[i + 1]] for i in ids
                ]
                shared = hits[0] if len(hits) == 1 else np.unique(np.concatenate(hits))
                if shared.size:
                    found = np.searchsorted(shared, rows)
                    clipped = np.minimum(found, shared.size - 1)
                    mask[position : position + count] = (found < shared.size) & (
                        shared[clipped] == rows
                    )
            position += count
        return mask

    def _resolve_pair_chunk(
        self,
        entries: Sequence[tuple[str, str, np.ndarray]],
        resolved: dict[str, MatchCandidate | None],
    ) -> None:
        """Score one equal-length bucket chunk pairwise and record the winners.

        The full composite score only decides a match when it reaches the
        threshold, so pairs that provably cannot get there are pruned before
        the expensive DP kernels using cheap per-pair bounds:

        * the token-set Jaccard branch is computed **exactly**: a postings
          merge-join (:meth:`_shared_token_mask`) finds the pairs sharing at
          least one token, every other pair's Jaccard is exactly 0, and the
          small padded-id kernel runs only on the sharing pairs;
        * with ``c`` the character-multiset overlap of the pair (one
          ``min(counts).sum()`` over the corpus alphabet), the Levenshtein
          distance is at least ``max(m, len) - c``, so
          ``lev <= c / max(m, len)``, and Jaro matches are at most ``c``, so
          ``jaro <= (c/m + c/len + 1) / 3``; the Winkler boost uses the
          pair's **exact** common prefix (a 4-column comparison).

        A pruned pair scores strictly below the threshold, so it can neither
        be returned nor tie a returned candidate — the surviving pairs'
        exact argmax is the global answer, bit-identical to
        :meth:`best_match` (pinned by the hypothesis suite).
        """
        length = len(entries[0][1])
        query_codes = np.empty((len(entries), length), dtype=np.int32)
        token_sets = []
        for row, (_, normalized, _) in enumerate(entries):
            query_codes[row] = encode_query(normalized)
            token_sets.append(set(normalized.split()))
        token_width = max(len(tokens) for tokens in token_sets)
        query_tokens = np.full((len(entries), token_width), QUERY_PAD, dtype=np.int64)
        query_token_counts = np.empty(len(entries), dtype=np.int64)
        known_ids: list[list[int]] = []
        for row, tokens in enumerate(token_sets):
            query_token_counts[row] = len(tokens)
            known = [self._vocabulary[t] for t in tokens if t in self._vocabulary]
            query_tokens[row, : len(known)] = known
            known_ids.append(known)

        counts = np.fromiter(
            (rows.size for _, _, rows in entries), dtype=np.intp, count=len(entries)
        )
        pair_rows = np.concatenate([rows for _, _, rows in entries])
        pair_query = np.repeat(np.arange(len(entries)), counts)

        # Token-postings merge-join prefilter: the Jaccard kernel only sees
        # pairs sharing a token; everything else is exactly 0.
        token_set = np.zeros(pair_rows.shape[0])
        sharing = np.flatnonzero(
            self._shared_token_mask(entries, known_ids, pair_rows.shape[0])
        )
        if sharing.size:
            token_set[sharing] = token_jaccard_pairs(
                query_tokens[pair_query[sharing]],
                query_token_counts[pair_query[sharing]],
                self._token_matrix[pair_rows[sharing]],
                self._token_counts[pair_rows[sharing]],
            )
        lengths = self._lengths[pair_rows].astype(np.int64)
        longest = np.maximum(length, lengths)
        char_bounds = self._char_bounds()
        if char_bounds is not None:
            alphabet, char_counts = char_bounds
            query_char_counts = np.stack(
                [(query_codes == code).sum(axis=1) for code in alphabet],
                axis=1,
            ).astype(np.int32)
            common = np.minimum(
                char_counts[pair_rows], query_char_counts[pair_query]
            ).sum(axis=1)
        else:
            common = np.minimum(length, lengths)
        levenshtein_bound = common / np.maximum(longest, 1)
        jaro_bound = np.where(
            common > 0,
            (common / length + common / np.maximum(lengths, 1) + 1.0) / 3.0,
            0.0,
        )
        # Exact Winkler boost: the pair's true common prefix (up to 4 chars).
        window = min(4, length, self._codes.shape[1])
        if window:
            equal = (
                self._codes[pair_rows, :window] == query_codes[pair_query, :window]
            )
            prefix = equal.cumprod(axis=1).sum(axis=1)
        else:
            prefix = np.zeros(pair_rows.shape[0], dtype=np.int64)
        jw_bound = jaro_bound + prefix * self.prefix_scale * (1.0 - jaro_bound)
        cutoff = self.threshold - self._PRUNE_SLACK
        viable = (0.6 * jw_bound + 0.4 * levenshtein_bound >= cutoff) | (
            token_set >= cutoff
        )

        scores = np.full(pair_rows.shape[0], -np.inf)
        kept = np.nonzero(viable)[0]
        if kept.size:
            queries = query_codes[pair_query[kept]]
            codes = self._codes[pair_rows[kept]]
            kept_lengths = self._lengths[pair_rows[kept]]
            jaro_winkler = jaro_winkler_similarity_pairs(
                queries, codes, kept_lengths, self.prefix_scale
            )
            levenshtein = levenshtein_similarity_pairs(queries, codes, kept_lengths)
            scores[kept] = np.maximum(
                0.6 * jaro_winkler + 0.4 * levenshtein, token_set[kept]
            )

        offset = 0
        for (query, _, rows), count in zip(entries, counts):
            segment = scores[offset : offset + count]
            best = int(np.argmax(segment))
            if segment[best] >= self.threshold:
                resolved[query] = MatchCandidate(
                    query=query,
                    candidate=self._name_at(int(rows[best])),
                    candidate_index=int(rows[best]) + self.row_offset,
                    score=float(segment[best]),
                )
            else:
                resolved[query] = None
            offset += int(count)

    # Incremental growth ---------------------------------------------------------------

    def _grown(self, key: str, old: np.ndarray, delta: np.ndarray) -> np.ndarray:
        """Append ``delta`` after ``old`` inside an amortized-O(1) capacity buffer.

        Returns a length-exact view over a private buffer that doubles when
        full, so a stream of small :meth:`extend` calls copies each element
        O(1) times instead of reallocating every flat buffer per call.
        """
        total = old.shape[0] + delta.shape[0]
        buffer = self._growable.get(key)
        if buffer is None or old.base is not buffer or buffer.shape[0] < total:
            buffer = np.empty(max(total, 2 * old.shape[0], 8), dtype=old.dtype)
            buffer[: old.shape[0]] = old
            self._growable[key] = buffer
        buffer[old.shape[0] : total] = delta
        return buffer[:total]

    def _grown_matrix(
        self, key: str, old: np.ndarray, delta: np.ndarray, width: int, pad: int
    ) -> np.ndarray:
        """Row-append ``delta`` under ``old``, re-padding only when ``width`` grew.

        Capacity rows are pre-filled with ``pad`` at allocation and written
        exactly once, so the result is cell-identical to padding the full
        ragged buffer from scratch at the new width.
        """
        total = old.shape[0] + delta.shape[0]
        buffer = self._growable.get(key)
        if (
            buffer is None
            or old.base is not buffer
            or buffer.shape[0] < total
            or buffer.shape[1] != width
        ):
            buffer = np.full(
                (max(total, 2 * old.shape[0], 8), width), pad, dtype=old.dtype
            )
            buffer[: old.shape[0], : old.shape[1]] = old
            self._growable[key] = buffer
        buffer[old.shape[0] : total, : delta.shape[1]] = delta
        return buffer[:total]

    def extend(self, corpus_names: Sequence[str]) -> None:
        """Append ``corpus_names`` to the corpus, updating every artifact in place.

        Bit-identical to building a fresh index over ``old + new`` names
        (pinned artifact-by-artifact by the hypothesis suite): the delta is
        normalized, encoded and tokenized alone (batch normalization is
        per-name, so slicing commutes with it), new vocabulary ids continue
        the first-appearance numbering, the per-id postings receive the new
        rows through one vectorized splice, and the padded code/token
        matrices re-pad only when the delta grows the corpus maximum width.
        Flat buffers live in grow-by-doubling capacity arrays
        (:meth:`_grown`), so appending N rows costs O(N) amortized encode
        work plus one O(corpus) postings memcpy — no re-normalization,
        re-tokenization or re-sort of the existing rows.  The lazy
        perfect-match and char-bound caches are patched in place when the
        append leaves their shape valid and invalidated otherwise.

        A shared-memory *attacher* (read-only views over another process's
        segment) cannot grow its buffers — extending one raises
        :class:`~repro.exceptions.LinkageError`; extend the publishing index
        instead, which refreshes its publication automatically.  Extending a
        :meth:`shard` is allowed and appends rows at the shard's end.
        """
        if getattr(self, "_shm_attachment", None) is not None:
            raise LinkageError(
                "cannot extend a shared-memory attached LinkageIndex: its "
                "buffers are read-only views over the owner's segment; "
                "extend the publishing index and re-attach"
            )
        names = [str(name) for name in corpus_names]
        if not names:
            return
        old_n = self.size
        delta_n = len(names)
        normalized = normalize_names(names)
        flat_codes, lengths = encode_strings_flat(normalized)
        row_of_char = np.repeat(
            np.arange(delta_n, dtype=np.int64), lengths.astype(np.int64)
        )
        spaces = np.bincount(row_of_char[flat_codes == 32], minlength=delta_n)
        stream = tokenize_corpus(normalized, token_counts=spaces + (lengths > 0))

        # Vocabulary ids continue the global first-appearance numbering: a
        # delta token unseen so far gets the next free id, in delta order —
        # exactly the numbering a full rebuild assigns.
        old_vocab_size = len(self._vocab)
        new_tokens: list[str] = []
        mapping = np.empty(len(stream.unique), dtype=np.int64)
        for local_id, token in enumerate(stream.unique):
            global_id = self._vocabulary.get(token)
            if global_id is None:
                global_id = old_vocab_size + len(new_tokens)
                new_tokens.append(token)
            mapping[local_id] = global_id
        vocab_size = old_vocab_size + len(new_tokens)

        # Dedupe the delta's (row, token) pairs exactly like ``__init__``;
        # old and new rows are disjoint, so the full corpus's deduped pair
        # set is the concatenation of the old pairs with these.
        global_rows = stream.rows + old_n
        mapped_ids = mapping[stream.ids]
        stride = np.int64(max(vocab_size, 1))
        pairs = np.sort(
            _compact_ints(
                global_rows * stride + mapped_ids, (old_n + delta_n) * int(stride)
            )
        )
        if pairs.size:
            pairs = pairs[np.concatenate(([True], pairs[1:] != pairs[:-1]))]
        delta_pair_rows = (pairs // stride).astype(np.intp)
        delta_pair_ids = pairs % stride
        delta_token_counts = np.bincount(
            delta_pair_rows - old_n, minlength=delta_n
        ).astype(np.int64)

        # Postings splice: every id's rows stay ascending (new rows exceed
        # all old ones), so the spliced arrays equal a rebuild's stable
        # id-sort over the combined pair set.
        old_post_rows = self._token_post_rows
        old_offsets = self._token_post_offsets
        old_counts = np.diff(old_offsets)
        padded_old_counts = np.zeros(vocab_size, dtype=np.int64)
        padded_old_counts[:old_vocab_size] = old_counts
        delta_post_counts = np.bincount(delta_pair_ids, minlength=vocab_size)
        new_post_offsets = np.concatenate(
            ([0], np.cumsum(padded_old_counts + delta_post_counts))
        )
        new_post_rows = np.empty(
            old_post_rows.shape[0] + delta_pair_rows.shape[0], dtype=np.intp
        )
        if old_post_rows.size:
            shift = new_post_offsets[:old_vocab_size] - old_offsets[:-1]
            ids_per_old = np.repeat(
                np.arange(old_vocab_size, dtype=np.int64), old_counts
            )
            new_post_rows[
                np.arange(old_post_rows.shape[0]) + shift[ids_per_old]
            ] = old_post_rows
        if delta_pair_rows.size:
            by_id = np.argsort(
                _compact_ints(delta_pair_ids, vocab_size), kind="stable"
            )
            within = np.arange(
                delta_pair_rows.shape[0], dtype=np.int64
            ) - np.repeat(
                np.concatenate(([0], np.cumsum(delta_post_counts)[:-1])),
                delta_post_counts,
            )
            targets = (
                np.repeat(
                    new_post_offsets[:-1] + padded_old_counts, delta_post_counts
                )
                + within
            )
            new_post_rows[targets] = delta_pair_rows[by_id]

        new_width = max(self._codes.shape[1], max(int(lengths.max(initial=0)), 1))
        new_token_width = max(
            self._token_matrix.shape[1],
            max(int(delta_token_counts.max(initial=0)), 1),
        )
        token_width_grew = new_token_width > self._token_matrix.shape[1]
        delta_codes = pad_ragged(flat_codes, lengths, PAD, np.int32)
        delta_token_matrix = pad_ragged(
            delta_pair_ids, delta_token_counts, PAD, np.int64
        )
        delta_name_lengths = np.fromiter(
            (len(name) for name in names), dtype=np.int64, count=delta_n
        )

        # Adopt the grown buffers.
        self._names_joined = self._joined_names() + "".join(names)
        self._name_offsets = self._grown(
            "name_offsets",
            self._name_offsets,
            self._name_offsets[-1] + np.cumsum(delta_name_lengths),
        )
        self._flat_codes = self._grown("flat_codes", self._flat_codes, flat_codes)
        self._lengths = self._grown("lengths", self._lengths, lengths)
        self._codes = self._grown_matrix(
            "codes", self._codes, delta_codes, new_width, PAD
        )
        self._vocab = self._vocab + tuple(new_tokens)
        for i, token in enumerate(new_tokens):
            self._vocabulary[token] = old_vocab_size + i
        self._token_ids = self._grown("token_ids", self._token_ids, delta_pair_ids)
        self._token_counts = self._grown(
            "token_counts", self._token_counts, delta_token_counts
        )
        self._token_matrix = self._grown_matrix(
            "token_matrix", self._token_matrix, delta_token_matrix, new_token_width, PAD
        )
        self._token_post_rows = new_post_rows
        self._token_post_offsets = new_post_offsets
        self._blocking.extend(delta_n, stream)

        # Patch or invalidate the lazy caches.
        if self._names_list is not None:
            self._names_list.extend(names)
        if self._perfect_cache is not None:
            if token_width_grew:
                # Every key's padding changed width; rebuild lazily.
                self._perfect_cache = None
            else:
                matrix = np.ascontiguousarray(self._token_matrix[old_n:])
                row_bytes = matrix.tobytes()
                stride_bytes = matrix.shape[1] * matrix.itemsize
                cache = self._perfect_cache
                # Delta rows ascend, and every cached row is lower still, so
                # setdefault keeps the lowest row per key — the rebuild rule.
                for local in np.flatnonzero(delta_token_counts > 0).tolist():
                    cache.setdefault(
                        row_bytes[local * stride_bytes : (local + 1) * stride_bytes],
                        old_n + local,
                    )
        if self._char_cache is None:
            # The corpus alphabet may have left the empty/oversized regime.
            self._char_cache = _UNSET
        elif self._char_cache is not _UNSET:
            alphabet, counts = self._char_cache
            positions = np.searchsorted(alphabet, flat_codes)
            clipped = np.minimum(positions, alphabet.size - 1)
            if flat_codes.size == 0 or bool(np.all(alphabet[clipped] == flat_codes)):
                delta_counts = (
                    np.bincount(
                        row_of_char * alphabet.size + positions,
                        minlength=delta_n * alphabet.size,
                    )
                    .reshape(delta_n, alphabet.size)
                    .astype(np.int32)
                )
                self._char_cache = (alphabet, np.concatenate([counts, delta_counts]))
            else:
                # New characters widen the alphabet; rebuild lazily.
                self._char_cache = _UNSET

        publication = getattr(self, "_shm_publication", None)
        if publication is not None and publication.active:
            publication.refresh()

    # Serialization / sharding ---------------------------------------------------------

    def __getstate__(self) -> dict:
        """Only the flat buffers go on the wire.

        Padded matrices, the vocabulary dict and the lazy caches are rebuilt
        by :meth:`__setstate__`, so pickling an index (process-pool sweeps,
        cache spill) costs one contiguous copy per buffer instead of a deep
        object graph.

        While the index is published to shared memory
        (:meth:`repro.linkage.shm.SharedLinkageIndex.publish`), pickling
        ships only the segment manifest — a version-2 state a few hundred
        bytes long — and :meth:`__setstate__` attaches zero-copy views over
        the one shared segment instead of rebuilding buffers per process.
        """
        publication = getattr(self, "_shm_publication", None)
        if publication is not None and publication.active:
            return {"version": 2, "shm": publication.manifest}
        return {
            "version": 1,
            "threshold": self.threshold,
            "prefix_scale": self.prefix_scale,
            "row_offset": self.row_offset,
            "names_joined": self._joined_names(),
            "name_offsets": self._name_offsets,
            "flat_codes": np.ascontiguousarray(self._flat_codes),
            "lengths": self._lengths,
            "vocab": " ".join(self._vocab),  # tokens are space-free and non-empty
            "token_ids": self._token_ids,
            "token_counts": self._token_counts,
            "post_rows": self._token_post_rows,
            "post_counts": np.diff(self._token_post_offsets),
            "blocking": self._blocking,
        }

    def __setstate__(self, state: dict) -> None:
        if state.get("version") == 2:
            from repro.linkage.shm import attach_into

            attach_into(self, state["shm"])
            return
        vocab = tuple(state["vocab"].split(" ")) if state["vocab"] else ()
        self._attach_buffers(
            threshold=state["threshold"],
            prefix_scale=state["prefix_scale"],
            row_offset=state["row_offset"],
            names_joined=state["names_joined"],
            name_offsets=state["name_offsets"],
            flat_codes=state["flat_codes"],
            lengths=state["lengths"],
            vocab=vocab,
            token_ids=state["token_ids"],
            token_counts=state["token_counts"],
            post_rows=state["post_rows"],
            post_offsets=np.concatenate(
                ([0], np.cumsum(state["post_counts"], dtype=np.int64))
            ),
            blocking=state["blocking"],
        )

    def shard(self, n_shards: int) -> list["LinkageIndex"]:
        """Split the index into ``n_shards`` contiguous row-range shards.

        Each shard is a self-contained :class:`LinkageIndex` over its row
        slice (sharing the global vocabulary, so token ids stay comparable)
        whose reported ``candidate_index`` values are global corpus rows via
        :attr:`row_offset`.  Running :meth:`match_many` per shard and folding
        with :meth:`merge_matches` reproduces the unsharded result exactly:
        scores are per-pair, blocking is row-local, and the score-then-index
        merge order equals the full argmax's lowest-row tie-breaking.
        """
        if n_shards < 1:
            raise LinkageError(f"n_shards must be >= 1, got {n_shards}")
        base, extra = divmod(self.size, n_shards)
        shards, start = [], 0
        for i in range(n_shards):
            stop = start + base + (1 if i < extra else 0)
            shards.append(self._slice(start, stop))
            start = stop
        return shards

    def _slice(self, start: int, stop: int) -> "LinkageIndex":
        """A self-contained index over corpus rows ``[start, stop)``."""
        name_offsets = self._name_offsets
        code_offsets = np.concatenate(
            ([0], np.cumsum(self._lengths, dtype=np.int64))
        )
        token_offsets = np.concatenate(
            ([0], np.cumsum(self._token_counts, dtype=np.int64))
        )
        vocab_size = len(self._vocab)
        posting_rows = self._token_post_rows
        keep = (posting_rows >= start) & (posting_rows < stop)
        ids_per_posting = np.repeat(
            np.arange(vocab_size, dtype=np.int64),
            np.diff(self._token_post_offsets),
        )
        post_counts = np.bincount(ids_per_posting[keep], minlength=vocab_size)
        clone = object.__new__(LinkageIndex)
        clone._attach_buffers(
            threshold=self.threshold,
            prefix_scale=self.prefix_scale,
            row_offset=self.row_offset + start,
            names_joined=self._joined_names()[
                int(name_offsets[start]) : int(name_offsets[stop])
            ],
            name_offsets=name_offsets[start : stop + 1] - name_offsets[start],
            flat_codes=self._flat_codes[code_offsets[start] : code_offsets[stop]],
            lengths=self._lengths[start:stop],
            vocab=self._vocab,
            token_ids=self._token_ids[token_offsets[start] : token_offsets[stop]],
            token_counts=self._token_counts[start:stop],
            post_rows=(posting_rows[keep] - start).astype(np.intp),
            post_offsets=np.concatenate(([0], np.cumsum(post_counts))),
            blocking=self._blocking.restrict(start, stop),
        )
        return clone

    @staticmethod
    def merge_matches(
        shard_matches: Sequence[Sequence[MatchCandidate | None]],
    ) -> list[MatchCandidate | None]:
        """Fold per-shard :meth:`match_many` results into the global answer.

        Per query: highest score wins, ties go to the lowest (global)
        ``candidate_index`` — exactly the unsharded index's argmax-lowest-row
        rule, since shards hold disjoint contiguous row ranges.
        """
        if not shard_matches:
            return []
        merged: list[MatchCandidate | None] = []
        for results in zip(*shard_matches, strict=True):
            best: MatchCandidate | None = None
            for candidate in results:
                if candidate is None:
                    continue
                if (
                    best is None
                    or candidate.score > best.score
                    or (
                        candidate.score == best.score
                        and candidate.candidate_index < best.candidate_index
                    )
                ):
                    best = candidate
            merged.append(best)
        return merged
