"""The batched record-linkage engine.

:class:`LinkageIndex` is built once per auxiliary corpus and then answers any
number of approximate-match queries against it:

* corpus names are normalized and pre-encoded into a padded ``int32``
  character-code matrix plus a token-id matrix (built once, at index time);
* a query is resolved by blocking (:mod:`repro.linkage.blocking`) to a
  candidate row set, then scored against *all* candidates at once with the
  vectorized kernels of :mod:`repro.linkage.kernels`;
* the composite score is exactly the scalar reference
  (:func:`repro.fusion.linkage.name_similarity`):
  ``max(0.6 * jaro_winkler + 0.4 * levenshtein, token_jaccard)`` on
  normalized names — bit-identical, so the engine reproduces the historical
  ``NameMatcher`` matches wherever blocking agrees;
* :meth:`match_many` resolves a whole batch of queries (the release's entire
  identifier column) in one pass, deduplicating repeated queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.exceptions import LinkageError
from repro.linkage.blocking import BlockingIndex
from repro.linkage.kernels import (
    PAD,
    encode_query,
    encode_strings,
    jaro_winkler_similarity_batch,
    levenshtein_similarity_batch,
    token_jaccard_batch,
)
from repro.linkage.normalize import normalize_name

__all__ = ["MatchCandidate", "LinkageIndex"]


@dataclass(frozen=True)
class MatchCandidate:
    """A candidate match of a query name against a corpus entry."""

    query: str
    candidate: str
    candidate_index: int
    score: float


class LinkageIndex:
    """Batched approximate name matcher over a fixed corpus.

    Parameters
    ----------
    corpus_names:
        The names known to the auxiliary source (web page owners).
    threshold:
        Minimum composite similarity for a match to be reported.
    blocking:
        Blocking scheme (see :data:`~repro.linkage.blocking.BLOCKING_SCHEMES`):
        ``"qgram"`` (default; multi-key q-gram/token/first-letter),
        ``"first-letter"`` (the historical scheme) or ``"none"`` (full scan).
    qgram_size:
        Character q-gram width used by the ``"qgram"`` scheme.
    prefix_scale:
        Jaro-Winkler common-prefix boost factor, in ``[0, 0.25]``.
    """

    def __init__(
        self,
        corpus_names: Sequence[str],
        threshold: float = 0.82,
        blocking: str = "qgram",
        qgram_size: int = 2,
        prefix_scale: float = 0.1,
    ) -> None:
        if not 0.0 < threshold <= 1.0:
            raise LinkageError(f"threshold must lie in (0, 1], got {threshold}")
        if not 0.0 <= prefix_scale <= 0.25:
            raise LinkageError("prefix_scale must lie in [0, 0.25]")
        self.threshold = threshold
        self.prefix_scale = prefix_scale
        self._names = [str(name) for name in corpus_names]
        self._normalized = [normalize_name(name) for name in self._names]
        self._codes, self._lengths = encode_strings(self._normalized)

        # Token-id matrix: each row holds the unique token ids of one name.
        vocabulary: dict[str, int] = {}
        id_sets = [
            sorted({vocabulary.setdefault(t, len(vocabulary)) for t in normalized.split()})
            for normalized in self._normalized
        ]
        self._token_counts = np.fromiter(
            (len(ids) for ids in id_sets), dtype=np.int64, count=len(id_sets)
        )
        token_width = max(int(self._token_counts.max(initial=0)), 1)
        self._token_matrix = np.full((len(id_sets), token_width), PAD, dtype=np.int64)
        for row, ids in enumerate(id_sets):
            self._token_matrix[row, : len(ids)] = ids
        self._vocabulary = vocabulary
        # Lowest corpus row per token *set*.  The composite score hits exactly
        # 1.0 iff the token sets are equal (token-Jaccard is 1.0 only then,
        # and the 0.6/0.4 blend reaches 1.0 only for identical strings, which
        # have equal token sets a fortiori), so a query whose token set is in
        # this dict resolves to its lowest-row perfect match without touching
        # the kernels — exactly what argmax-first over all candidates returns.
        self._perfect: dict[frozenset[str], int] = {}
        for row, normalized in enumerate(self._normalized):
            if normalized:
                self._perfect.setdefault(frozenset(normalized.split()), row)
        self._blocking = BlockingIndex(
            self._normalized, scheme=blocking, qgram_size=qgram_size
        )

    # Introspection ------------------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of corpus entries in the index."""
        return len(self._names)

    @property
    def names(self) -> tuple[str, ...]:
        """The corpus names, in index order."""
        return tuple(self._names)

    @property
    def blocking(self) -> BlockingIndex:
        """The blocking index (scheme, keys, candidate sets)."""
        return self._blocking

    # Scoring ------------------------------------------------------------------------

    def candidate_rows(self, query: str) -> np.ndarray:
        """Corpus rows the blocking scheme pairs with ``query`` (ascending)."""
        return self._blocking.candidate_rows(normalize_name(query))

    def scores(self, query: str, rows: np.ndarray | None = None) -> np.ndarray:
        """Composite similarity of ``query`` against corpus rows (default: all).

        Bit-identical to calling the scalar
        :func:`repro.fusion.linkage.name_similarity` per pair.
        """
        normalized_query = normalize_name(query)
        if rows is None:
            rows = np.arange(len(self._names), dtype=np.intp)
        if not normalized_query:
            return np.zeros(len(rows))
        return self._score_rows(normalized_query, rows)

    def _score_rows(self, normalized_query: str, rows: np.ndarray) -> np.ndarray:
        query_codes = encode_query(normalized_query)
        codes = self._codes[rows]
        lengths = self._lengths[rows]
        jaro_winkler = jaro_winkler_similarity_batch(
            query_codes, codes, lengths, self.prefix_scale
        )
        levenshtein = levenshtein_similarity_batch(query_codes, codes, lengths)
        query_tokens = set(normalized_query.split())
        known_ids = np.fromiter(
            (self._vocabulary[t] for t in query_tokens if t in self._vocabulary),
            dtype=np.int64,
        )
        token_set = token_jaccard_batch(
            known_ids,
            self._token_matrix[rows],
            self._token_counts[rows],
            len(query_tokens),
        )
        return np.maximum(0.6 * jaro_winkler + 0.4 * levenshtein, token_set)

    # Matching -----------------------------------------------------------------------

    def candidates(self, query: str) -> list[MatchCandidate]:
        """All corpus entries scoring above the threshold, best first.

        Ties keep ascending corpus order, exactly like the historical
        ``NameMatcher`` (stable sort over candidates visited in index order).
        """
        query = str(query)
        normalized_query = normalize_name(query)
        if not normalized_query:
            return []
        rows = self._blocking.candidate_rows(normalized_query)
        if rows.size == 0:
            return []
        scores = self._score_rows(normalized_query, rows)
        keep = scores >= self.threshold
        rows, scores = rows[keep], scores[keep]
        order = np.argsort(-scores, kind="stable")
        return [
            MatchCandidate(
                query=query,
                candidate=self._names[row],
                candidate_index=int(row),
                score=float(score),
            )
            for row, score in zip(rows[order], scores[order])
        ]

    def best_match(self, query: str) -> MatchCandidate | None:
        """The single best match above the threshold, or ``None``.

        Equivalent to ``candidates(query)[0]`` without materializing the list
        (``argmax`` keeps the lowest corpus row on ties, like the stable sort).
        """
        query = str(query)
        normalized_query = normalize_name(query)
        if not normalized_query:
            return None
        perfect = self._perfect.get(frozenset(normalized_query.split()))
        if perfect is not None:
            # A 1.0-scoring candidate exists; every blocking scheme pairs it
            # with the query (equal token sets share every token key), and no
            # lower row can tie it (ties at 1.0 are exactly the equal-set rows,
            # of which this is the lowest).
            return MatchCandidate(
                query=query,
                candidate=self._names[perfect],
                candidate_index=perfect,
                score=1.0,
            )
        rows = self._blocking.candidate_rows(normalized_query)
        if rows.size == 0:
            return None
        scores = self._score_rows(normalized_query, rows)
        best = int(np.argmax(scores))
        if scores[best] < self.threshold:
            return None
        return MatchCandidate(
            query=query,
            candidate=self._names[rows[best]],
            candidate_index=int(rows[best]),
            score=float(scores[best]),
        )

    def match_many(self, queries: Sequence[str]) -> list[MatchCandidate | None]:
        """The best match for every query, in query order.

        Repeated queries are resolved once; every returned candidate carries
        the query it answered.
        """
        best_by_query: dict[str, MatchCandidate | None] = {}
        results: list[MatchCandidate | None] = []
        for query in queries:
            query = str(query)
            if query not in best_by_query:
                best_by_query[query] = self.best_match(query)
            results.append(best_by_query[query])
        return results
