"""Batched record linkage: normalization, blocking, vectorized kernels.

This package is the engine behind step 1 of the paper's attack (linking
release identifiers to web auxiliary records).  It factors linkage into three
layers — normalization (:mod:`repro.linkage.normalize`), candidate generation
(:mod:`repro.linkage.blocking`) and vectorized similarity scoring
(:mod:`repro.linkage.kernels`) — composed by :class:`LinkageIndex`, which is
built once per corpus and resolves whole batches of queries at a time.

The scalar similarity functions in :mod:`repro.fusion.linkage` remain the
executable specification: the batched kernels reproduce them bit-for-bit, and
``NameMatcher`` there is now a thin compatibility wrapper over
:class:`LinkageIndex`.
"""

from repro.linkage.blocking import (
    BLOCKING_SCHEMES,
    BlockingIndex,
    TokenStream,
    tokenize_corpus,
)
from repro.linkage.index import LinkageIndex, MatchCandidate
from repro.linkage.kernels import (
    encode_query,
    encode_strings,
    encode_strings_flat,
    jaro_similarity_batch,
    jaro_winkler_similarity_batch,
    levenshtein_distance_batch,
    levenshtein_similarity_batch,
    pad_ragged,
    token_jaccard_batch,
)
from repro.linkage.normalize import (
    name_tokens,
    normalize_name,
    normalize_names,
    token_qgrams,
)

__all__ = [
    "LinkageIndex",
    "MatchCandidate",
    "BlockingIndex",
    "BLOCKING_SCHEMES",
    "TokenStream",
    "tokenize_corpus",
    "normalize_name",
    "normalize_names",
    "name_tokens",
    "token_qgrams",
    "encode_query",
    "encode_strings",
    "encode_strings_flat",
    "pad_ragged",
    "levenshtein_distance_batch",
    "levenshtein_similarity_batch",
    "jaro_similarity_batch",
    "jaro_winkler_similarity_batch",
    "token_jaccard_batch",
]
