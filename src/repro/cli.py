"""Command-line interface.

The CLI exposes the three operations a downstream user actually runs on their
own data, all operating on the CSV format of :mod:`repro.dataset.io` (two
header lines: column names, then ``role:kind`` declarations):

* ``repro anonymize``  — k-anonymize a private table and write the enterprise
  release (identifiers kept, quasi-identifiers generalized, sensitive column
  dropped);
* ``repro attack``     — run the web-based information-fusion attack against a
  release, using an auxiliary CSV as the harvested web data, and write the
  per-record sensitive-attribute estimates; ``--linkage-threshold`` switches
  the name lookup from exact to approximate record linkage (with
  ``--blocking`` / ``--qgram-size`` knobs), for auxiliary CSVs holding
  scraped web-name spellings;
* ``repro fred``       — run the FRED sweep on a private table plus auxiliary
  CSV and report the selected anonymization level (optionally writing the
  chosen release);
* ``repro serve``      — run the long-lived anonymization service: a threaded
  JSON/HTTP server with dataset registration, fingerprint-keyed release and
  attack caching, and asynchronous FRED jobs (see :mod:`repro.service`);
* ``repro append``     — append delta rows from one CSV onto a base CSV using
  the chunked streaming reader, writing the combined table and reporting its
  *chained* content fingerprint (``sha256(base_fp ‖ delta_fp)`` — the same
  identity ``POST /append/<fp>`` registers, so offline and served pipelines
  agree on what an appended dataset is called).

Example
-------
::

    python -m repro.cli anonymize --input private.csv --k 5 --output release.csv
    python -m repro.cli attack --release release.csv --auxiliary web.csv \
        --sensitive-low 40000 --sensitive-high 160000 --output estimates.csv
    python -m repro.cli fred --input private.csv --auxiliary web.csv \
        --kmin 2 --kmax 16 --output fused_release.csv
    python -m repro.cli serve --port 8080 --cache-dir /tmp/repro-cache
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from repro.anonymize.clustering import GreedyClusterAnonymizer
from repro.anonymize.mdav import MDAVAnonymizer
from repro.anonymize.mondrian import MondrianAnonymizer
from repro.core.fred import FREDAnonymizer, FREDConfig
from repro.core.objective import WeightedObjective
from repro.dataset.io import append_csv, read_csv, write_csv
from repro.dataset.schema import Attribute, AttributeKind, AttributeRole, Schema
from repro.dataset.table import Table
from repro.exceptions import ReproError
from repro.fusion.attack import AttackConfig, WebFusionAttack
from repro.fusion.auxiliary import TableAuxiliarySource
from repro.linkage import BLOCKING_SCHEMES
from repro.linkage.kernels import set_kernel_backend

__all__ = ["main", "build_parser"]

_ANONYMIZERS = {
    "mdav": MDAVAnonymizer,
    "mondrian": MondrianAnonymizer,
    "greedy-cluster": GreedyClusterAnonymizer,
}


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fusion attacks and fusion-resilient anonymization for enterprise data",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    anonymize = subparsers.add_parser("anonymize", help="k-anonymize a private CSV table")
    anonymize.add_argument("--input", type=Path, required=True, help="private table CSV")
    anonymize.add_argument("--output", type=Path, required=True, help="release CSV to write")
    anonymize.add_argument("--k", type=int, required=True, help="anonymity parameter k")
    anonymize.add_argument(
        "--algorithm", choices=sorted(_ANONYMIZERS), default="mdav", help="partitioning scheme"
    )
    anonymize.add_argument(
        "--style", choices=("interval", "centroid"), default="interval",
        help="how generalized quasi-identifier cells are published",
    )

    attack = subparsers.add_parser(
        "attack", help="run the web-based information-fusion attack on a release CSV"
    )
    attack.add_argument("--release", type=Path, required=True, help="anonymized release CSV")
    attack.add_argument(
        "--auxiliary", type=Path, required=True,
        help="auxiliary (web) CSV keyed by a name column",
    )
    attack.add_argument("--name-column", default="name", help="identifier column in the auxiliary CSV")
    attack.add_argument("--output", type=Path, default=None, help="estimates CSV to write")
    attack.add_argument("--sensitive-name", default="sensitive_estimate", help="name of the estimated attribute")
    attack.add_argument("--sensitive-low", type=float, required=True, help="assumed sensitive range low end")
    attack.add_argument("--sensitive-high", type=float, required=True, help="assumed sensitive range high end")
    attack.add_argument(
        "--engine", choices=("mamdani", "sugeno"), default="mamdani", help="fusion engine"
    )
    _add_linkage_arguments(attack)

    fred = subparsers.add_parser("fred", help="run the FRED sweep on a private CSV table")
    fred.add_argument("--input", type=Path, required=True, help="private table CSV")
    fred.add_argument("--auxiliary", type=Path, required=True, help="auxiliary (web) CSV")
    fred.add_argument("--name-column", default="name", help="identifier column in the auxiliary CSV")
    fred.add_argument("--output", type=Path, default=None, help="write the selected release CSV")
    fred.add_argument("--kmin", type=int, default=2)
    fred.add_argument("--kmax", type=int, default=16)
    fred.add_argument("--sensitive-low", type=float, default=None, help="assumed sensitive range low end")
    fred.add_argument("--sensitive-high", type=float, default=None, help="assumed sensitive range high end")
    fred.add_argument("--protection-weight", type=float, default=0.5, help="W1")
    fred.add_argument("--utility-weight", type=float, default=0.5, help="W2")
    fred.add_argument("--protection-threshold", type=float, default=None, help="Tp")
    fred.add_argument("--utility-threshold", type=float, default=None, help="Tu")
    fred.add_argument(
        "--parallelism",
        type=int,
        default=1,
        help="number of anonymization levels to evaluate concurrently",
    )
    fred.add_argument(
        "--executor",
        choices=("thread", "process"),
        default="thread",
        help="pool kind for parallel sweeps (process pools benefit from "
        "--shared-index)",
    )
    fred.add_argument(
        "--shared-index",
        choices=("auto", "always", "never"),
        default="auto",
        help="publish the linkage index to POSIX shared memory for "
        "--executor process sweeps so workers attach zero-copy instead of "
        "unpickling private replicas (auto: when shared memory is available)",
    )
    _add_linkage_arguments(fred)

    append = subparsers.add_parser(
        "append",
        help="append delta CSV rows onto a base CSV (chained content fingerprint)",
    )
    append.add_argument("--base", type=Path, required=True, help="base table CSV")
    append.add_argument("--delta", type=Path, required=True, help="delta rows CSV (same schema)")
    append.add_argument("--output", type=Path, required=True, help="combined CSV to write")
    append.add_argument(
        "--chunk-rows", type=int, default=65536,
        help="rows per streamed parse chunk of the delta read",
    )

    serve = subparsers.add_parser(
        "serve",
        help="run the anonymization service (threaded JSON/HTTP server with "
        "dataset registration, release/attack caching and async FRED jobs)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument("--port", type=int, default=8080, help="bind port (0 picks a free one)")
    serve.add_argument(
        "--cache-size", type=int, default=128,
        help="in-memory LRU entry budget of the release/result cache",
    )
    serve.add_argument(
        "--cache-dir", type=Path, default=None,
        help="optional on-disk spill directory for cached artifacts",
    )
    serve.add_argument(
        "--job-workers", type=int, default=2, help="worker threads for async FRED jobs"
    )
    serve.add_argument(
        "--fred-parallelism", type=int, default=1,
        help="default per-sweep level parallelism for FRED jobs",
    )
    serve.add_argument(
        "--max-body-mb", type=int, default=64,
        help="largest accepted request body in MiB (oversize requests get 413)",
    )
    serve.add_argument(
        "--workers", type=int, default=1,
        help="server processes accepting on one port via SO_REUSEPORT; the "
        "spill directory (--cache-dir, a temporary one if unset) is their "
        "shared cache tier",
    )
    serve.add_argument(
        "--max-spill-mb", type=int, default=None,
        help="optional spill-directory budget in MiB (LRU files evicted past it)",
    )
    serve.add_argument(
        "--stream-threshold-kb", type=int, default=1024,
        help="release bodies at or above this size stream out chunked",
    )
    serve.add_argument(
        "--max-keepalive", type=int, default=None,
        help="requests served per keep-alive connection before the server "
        "closes it, so long-lived clients reconnect and re-balance across "
        "--workers processes (unset: connections are never capped)",
    )
    serve.add_argument(
        "--kernel-backend",
        choices=("auto", "numpy", "numba"),
        default="auto",
        help="pairwise string-kernel implementation used by linkage-backed "
        "attacks (auto: numba when importable, else numpy)",
    )
    serve.add_argument(
        "--verbose", action="store_true", help="log every HTTP request to stderr"
    )
    return parser


def _add_linkage_arguments(parser: argparse.ArgumentParser) -> None:
    """Record-linkage knobs shared by ``attack`` and ``fred``."""
    parser.add_argument(
        "--linkage-threshold",
        type=float,
        default=None,
        help="minimum composite name similarity for an auxiliary row to match; "
        "omit for exact name lookups",
    )
    parser.add_argument(
        "--blocking",
        choices=BLOCKING_SCHEMES,
        default="qgram",
        help="candidate blocking scheme of the linkage index "
        "(only used with --linkage-threshold)",
    )
    parser.add_argument(
        "--qgram-size",
        type=int,
        default=2,
        help="character q-gram width of the 'qgram' blocking scheme",
    )
    parser.add_argument(
        "--kernel-backend",
        choices=("auto", "numpy", "numba"),
        default="auto",
        help="pairwise string-kernel implementation (auto: numba when "
        "importable, else numpy; results are bit-identical either way)",
    )


def _auxiliary_source(path: Path, arguments: argparse.Namespace) -> TableAuxiliarySource:
    auxiliary = read_csv(path)
    return TableAuxiliarySource(
        table=auxiliary,
        name_column=arguments.name_column,
        linkage_threshold=arguments.linkage_threshold,
        blocking=arguments.blocking,
        qgram_size=arguments.qgram_size,
    )


def _attack_config(
    release: Table,
    source: TableAuxiliarySource,
    output_name: str,
    output_universe: tuple[float, float],
    engine: str,
) -> AttackConfig:
    release_inputs = tuple(release.schema.numeric_quasi_identifiers)
    auxiliary_inputs = tuple(source.attribute_names)
    return AttackConfig(
        release_inputs=release_inputs,
        auxiliary_inputs=auxiliary_inputs,
        output_name=output_name,
        output_universe=output_universe,
        engine=engine,
    )


def _command_anonymize(arguments: argparse.Namespace) -> int:
    private = read_csv(arguments.input)
    anonymizer_class = _ANONYMIZERS[arguments.algorithm]
    if arguments.algorithm == "mdav":
        anonymizer = anonymizer_class(release_style=arguments.style)
    else:
        anonymizer = anonymizer_class()
    result = anonymizer.anonymize(private, arguments.k)
    write_csv(result.release, arguments.output)
    print(
        f"wrote {arguments.output} (k={arguments.k}, algorithm={arguments.algorithm}, "
        f"{len(result.classes)} equivalence classes, smallest={result.minimum_class_size})"
    )
    return 0


def _command_attack(arguments: argparse.Namespace) -> int:
    if arguments.sensitive_low >= arguments.sensitive_high:
        raise ReproError("--sensitive-low must be below --sensitive-high")
    set_kernel_backend(arguments.kernel_backend)
    release = read_csv(arguments.release)
    source = _auxiliary_source(arguments.auxiliary, arguments)
    config = _attack_config(
        release,
        source,
        arguments.sensitive_name,
        (arguments.sensitive_low, arguments.sensitive_high),
        arguments.engine,
    )
    result = WebFusionAttack(source, config).run(release)

    names = [str(n) for n in release.identifier_column()]
    print(f"matched auxiliary data for {result.match_rate:.0%} of {len(names)} records")
    schema = Schema(
        [
            Attribute("name", AttributeRole.IDENTIFIER, AttributeKind.TEXT),
            Attribute(arguments.sensitive_name, AttributeRole.SENSITIVE),
        ]
    )
    estimates_table = Table(
        schema,
        {
            "name": names,
            arguments.sensitive_name: [float(v) for v in result.estimates],
        },
    )
    if arguments.output is not None:
        write_csv(estimates_table, arguments.output)
        print(f"wrote {arguments.output}")
    else:
        print(estimates_table.to_text(max_rows=None))
    return 0


def _command_fred(arguments: argparse.Namespace) -> int:
    set_kernel_backend(arguments.kernel_backend)
    private = read_csv(arguments.input)
    source = _auxiliary_source(arguments.auxiliary, arguments)
    sensitive = private.sensitive_vector()
    low = arguments.sensitive_low
    high = arguments.sensitive_high
    if low is None:
        low = float(np.floor(sensitive.min()))
    if high is None:
        high = float(np.ceil(sensitive.max()))
    if low >= high:
        raise ReproError("the assumed sensitive range is empty; pass --sensitive-low/high")

    release_view = private.release_view()
    config = _attack_config(
        release_view, source, private.schema.sensitive_attribute, (low, high), "mamdani"
    )
    fred = FREDAnonymizer(
        source,
        config,
        FREDConfig(
            levels=tuple(range(arguments.kmin, arguments.kmax + 1)),
            protection_threshold=arguments.protection_threshold,
            utility_threshold=arguments.utility_threshold,
            objective=WeightedObjective(arguments.protection_weight, arguments.utility_weight),
            stop_below_utility=arguments.utility_threshold is not None,
            parallelism=arguments.parallelism,
            executor=arguments.executor,
            shared_index=arguments.shared_index,
        ),
    )
    result = fred.run(private)
    print(result.summary())
    if arguments.output is not None:
        write_csv(result.optimal_release, arguments.output)
        print(f"wrote {arguments.output} (k={result.optimal_level})")
    return 0


def _command_serve(arguments: argparse.Namespace) -> int:
    from repro.service import AnonymizationService, ServiceConfig, build_server

    set_kernel_backend(arguments.kernel_backend)
    cache_dir = arguments.cache_dir
    if arguments.workers > 1 and cache_dir is None:
        # Multi-process mode needs a shared spill directory; provision one.
        import tempfile

        cache_dir = Path(tempfile.mkdtemp(prefix="repro-serve-cache-"))
        print(f"using shared cache directory {cache_dir}", flush=True)
    config = ServiceConfig(
        cache_capacity=arguments.cache_size,
        cache_dir=str(cache_dir) if cache_dir is not None else None,
        job_workers=arguments.job_workers,
        fred_parallelism=arguments.fred_parallelism,
        max_spill_bytes=(
            arguments.max_spill_mb * 1024 * 1024
            if arguments.max_spill_mb is not None
            else None
        ),
    )
    service = AnonymizationService.from_config(config)
    server = build_server(
        host=arguments.host,
        port=arguments.port,
        service=service,
        verbose=arguments.verbose,
        max_body_bytes=arguments.max_body_mb * 1024 * 1024,
        stream_threshold_bytes=arguments.stream_threshold_kb * 1024,
        workers=arguments.workers,
        config=config,
        max_keepalive_requests=arguments.max_keepalive,
    )
    print(f"serving on http://{arguments.host}:{server.port}", flush=True)
    if arguments.workers > 1:
        print(f"workers: {arguments.workers} processes on one port", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down (draining in-flight jobs)", flush=True)
    finally:
        server.close(wait_jobs=True)
    return 0


def _command_append(arguments: argparse.Namespace) -> int:
    base = read_csv(arguments.base)
    combined = append_csv(arguments.delta, base, chunk_rows=arguments.chunk_rows)
    write_csv(combined, arguments.output)
    appended = combined.num_rows - base.num_rows
    print(
        f"wrote {arguments.output} ({base.num_rows} + {appended} rows, "
        f"chained fingerprint {combined.fingerprint})"
    )
    return 0


_COMMANDS = {
    "anonymize": _command_anonymize,
    "append": _command_append,
    "attack": _command_attack,
    "fred": _command_fred,
    "serve": _command_serve,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    arguments = parser.parse_args(argv)
    try:
        return _COMMANDS[arguments.command](arguments)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - module shim
    raise SystemExit(main())
