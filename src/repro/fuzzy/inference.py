"""Mamdani fuzzy inference engine.

This is the information-fusion system ``F`` of the paper (Section III.A,
Figure 2).  Evaluation follows the classic Mamdani pipeline:

1. **fuzzify** every crisp input against its linguistic variable;
2. compute each rule's **firing strength** (min for AND, max for OR, scaled by
   the rule weight);
3. **imply** each rule's consequent by clipping (min) the consequent term's
   membership curve at the firing strength;
4. **aggregate** the implied curves with max;
5. **defuzzify** the aggregated curve (centroid by default) to obtain the
   crisp output — the adversary's estimate of the sensitive attribute.

Missing inputs (``None`` / NaN — e.g. a suppressed release cell or a person
with no web presence) are handled by treating every term of that variable as
fully possible (membership 1), i.e. the input contributes no information,
which is the conservative choice for an adversary.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.exceptions import FuzzyDefinitionError, FuzzyEvaluationError
from repro.fuzzy.defuzzify import defuzzify
from repro.fuzzy.rules import FuzzyRule
from repro.fuzzy.variables import LinguisticVariable

__all__ = ["MamdaniSystem", "InferenceTrace"]


@dataclass
class InferenceTrace:
    """Intermediate quantities of one Mamdani evaluation (for explanations/tests)."""

    fuzzified: dict[str, dict[str, float]]
    firing_strengths: list[float]
    aggregated: np.ndarray
    output: float


@dataclass
class MamdaniSystem:
    """A Mamdani fuzzy inference system.

    Parameters
    ----------
    inputs:
        The input linguistic variables, keyed by name.
    output:
        The output linguistic variable (the sensitive attribute to estimate).
    rules:
        The fuzzy rule base.
    defuzzification:
        ``"centroid"`` (default), ``"bisector"`` or ``"mom"``.
    resolution:
        Number of samples of the output universe used for aggregation.
    """

    inputs: dict[str, LinguisticVariable]
    output: LinguisticVariable
    rules: list[FuzzyRule] = field(default_factory=list)
    defuzzification: str = "centroid"
    resolution: int = 201

    def __post_init__(self) -> None:
        if not self.inputs:
            raise FuzzyDefinitionError("a Mamdani system needs at least one input variable")
        for name, variable in self.inputs.items():
            if name != variable.name:
                raise FuzzyDefinitionError(
                    f"input key {name!r} does not match variable name {variable.name!r}"
                )
        for rule in self.rules:
            rule.validate_against(self.inputs, self.output)

    # Rule management ------------------------------------------------------------

    def add_rule(self, rule: FuzzyRule) -> "MamdaniSystem":
        """Validate and append a rule (returns ``self`` for chaining)."""
        rule.validate_against(self.inputs, self.output)
        self.rules.append(rule)
        return self

    def add_rules(self, rules: Sequence[FuzzyRule]) -> "MamdaniSystem":
        """Validate and append several rules."""
        for rule in rules:
            self.add_rule(rule)
        return self

    # Evaluation -------------------------------------------------------------------

    def fuzzify(self, inputs: Mapping[str, float | None]) -> dict[str, dict[str, float]]:
        """Fuzzify the crisp inputs; unknown/missing inputs map every term to 1."""
        fuzzified: dict[str, dict[str, float]] = {}
        for name, variable in self.inputs.items():
            value = inputs.get(name)
            if value is None or (isinstance(value, float) and math.isnan(value)):
                fuzzified[name] = {term: 1.0 for term in variable.term_names}
            else:
                fuzzified[name] = variable.fuzzify(float(value))
        return fuzzified

    def evaluate(self, inputs: Mapping[str, float | None]) -> float:
        """Crisp output for the given crisp inputs."""
        return self.trace(inputs).output

    def trace(self, inputs: Mapping[str, float | None]) -> InferenceTrace:
        """Evaluate and return every intermediate quantity."""
        if not self.rules:
            raise FuzzyEvaluationError("the rule base is empty; add rules before evaluating")
        unknown = set(inputs) - set(self.inputs)
        if unknown:
            raise FuzzyEvaluationError(
                f"inputs reference unknown variables: {sorted(unknown)}"
            )

        fuzzified = self.fuzzify(inputs)
        universe = self.output.grid(self.resolution)
        aggregated = np.zeros_like(universe)
        strengths: list[float] = []

        for rule in self.rules:
            strength = rule.firing_strength(fuzzified)
            strengths.append(strength)
            if strength <= 0.0:
                continue
            term_curve = np.asarray(
                self.output.term(rule.consequent_term).membership(universe), dtype=float
            )
            implied = np.minimum(term_curve, strength)
            aggregated = np.maximum(aggregated, implied)

        if float(aggregated.max(initial=0.0)) <= 0.0:
            # No rule fired: fall back to the midpoint of the output universe,
            # the least-informative estimate (an adversary can always guess the
            # middle of the declared range).
            output_value = float((self.output.universe[0] + self.output.universe[1]) / 2.0)
        else:
            output_value = defuzzify(universe, aggregated, self.defuzzification)

        return InferenceTrace(
            fuzzified=fuzzified,
            firing_strengths=strengths,
            aggregated=aggregated,
            output=output_value,
        )

    def evaluate_batch(self, records: Sequence[Mapping[str, float | None]]) -> np.ndarray:
        """Crisp outputs for a sequence of input records."""
        return np.array([self.evaluate(record) for record in records], dtype=float)

    def describe(self) -> str:
        """Human-readable summary of the system (variables, terms, rules)."""
        lines = [f"Mamdani system -> {self.output.name} ({self.defuzzification})"]
        for name, variable in self.inputs.items():
            lines.append(
                f"  input {name}: universe={variable.universe} terms={list(variable.term_names)}"
            )
        lines.append(
            f"  output {self.output.name}: universe={self.output.universe} "
            f"terms={list(self.output.term_names)}"
        )
        for rule in self.rules:
            lines.append(f"  rule: {rule}")
        return "\n".join(lines)
