"""Mamdani fuzzy inference engine.

This is the information-fusion system ``F`` of the paper (Section III.A,
Figure 2).  Evaluation follows the classic Mamdani pipeline:

1. **fuzzify** every crisp input against its linguistic variable;
2. compute each rule's **firing strength** (min for AND, max for OR, scaled by
   the rule weight);
3. **imply** each rule's consequent by clipping (min) the consequent term's
   membership curve at the firing strength;
4. **aggregate** the implied curves with max;
5. **defuzzify** the aggregated curve (centroid by default) to obtain the
   crisp output — the adversary's estimate of the sensitive attribute.

Missing inputs (``None`` / NaN — e.g. a suppressed release cell or a person
with no web presence) are handled by treating every term of that variable as
fully possible (membership 1), i.e. the input contributes no information,
which is the conservative choice for an adversary.

The pipeline is implemented as a **batch kernel**: :meth:`evaluate_batch`
fuzzifies whole ``(N,)`` input columns at once, forms the ``(N, n_rules)``
firing-strength matrix, aggregates implied curves into an ``(N, resolution)``
block (grouping rules by consequent term, since ``max_j min(curve, s_j) ==
min(curve, max_j s_j)`` exactly), and defuzzifies all rows together.  The
scalar :meth:`evaluate` / :meth:`trace` API is a thin wrapper running the same
kernel on a single-record batch, so explanations stay available and scalar
and batch outputs agree to within 1e-9 (the property suite in
``tests/test_batch_equivalence.py`` enforces this, including against a
reference implementation of the original per-record loop).  Records whose
aggregated curve is identically
zero (no rule fired) fall back to the midpoint of the output universe.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.exceptions import FuzzyDefinitionError, FuzzyEvaluationError
from repro.fuzzy.batch import BatchRecords, as_columns
from repro.fuzzy.defuzzify import defuzzify_batch
from repro.fuzzy.rules import FuzzyRule, firing_strength_matrix
from repro.fuzzy.variables import LinguisticVariable

__all__ = ["MamdaniSystem", "InferenceTrace"]


@dataclass
class InferenceTrace:
    """Intermediate quantities of one Mamdani evaluation (for explanations/tests)."""

    fuzzified: dict[str, dict[str, float]]
    firing_strengths: list[float]
    aggregated: np.ndarray
    output: float


@dataclass
class MamdaniSystem:
    """A Mamdani fuzzy inference system.

    Parameters
    ----------
    inputs:
        The input linguistic variables, keyed by name.
    output:
        The output linguistic variable (the sensitive attribute to estimate).
    rules:
        The fuzzy rule base.
    defuzzification:
        ``"centroid"`` (default), ``"bisector"`` or ``"mom"``.
    resolution:
        Number of samples of the output universe used for aggregation.
    """

    inputs: dict[str, LinguisticVariable]
    output: LinguisticVariable
    rules: list[FuzzyRule] = field(default_factory=list)
    defuzzification: str = "centroid"
    resolution: int = 201

    def __post_init__(self) -> None:
        if not self.inputs:
            raise FuzzyDefinitionError("a Mamdani system needs at least one input variable")
        for name, variable in self.inputs.items():
            if name != variable.name:
                raise FuzzyDefinitionError(
                    f"input key {name!r} does not match variable name {variable.name!r}"
                )
        for rule in self.rules:
            rule.validate_against(self.inputs, self.output)

    # Rule management ------------------------------------------------------------

    def add_rule(self, rule: FuzzyRule) -> "MamdaniSystem":
        """Validate and append a rule (returns ``self`` for chaining)."""
        rule.validate_against(self.inputs, self.output)
        self.rules.append(rule)
        return self

    def add_rules(self, rules: Sequence[FuzzyRule]) -> "MamdaniSystem":
        """Validate and append several rules."""
        for rule in rules:
            self.add_rule(rule)
        return self

    # Evaluation -------------------------------------------------------------------

    def fuzzify(self, inputs: Mapping[str, float | None]) -> dict[str, dict[str, float]]:
        """Fuzzify the crisp inputs; unknown/missing inputs map every term to 1."""
        fuzzified: dict[str, dict[str, float]] = {}
        for name, variable in self.inputs.items():
            value = inputs.get(name)
            if value is None or (isinstance(value, float) and math.isnan(value)):
                fuzzified[name] = {term: 1.0 for term in variable.term_names}
            else:
                fuzzified[name] = variable.fuzzify(float(value))
        return fuzzified

    def fuzzify_batch(
        self, columns: Mapping[str, np.ndarray]
    ) -> dict[str, dict[str, np.ndarray]]:
        """Fuzzify whole input columns; NaN cells map every term to 1."""
        return {
            name: variable.fuzzify_batch(columns[name])
            for name, variable in self.inputs.items()
        }

    def evaluate(self, inputs: Mapping[str, float | None]) -> float:
        """Crisp output for the given crisp inputs."""
        return self.trace(inputs).output

    def trace(self, inputs: Mapping[str, float | None]) -> InferenceTrace:
        """Evaluate one record through the batch kernel and return every
        intermediate quantity (for explanations and tests)."""
        fuzzified_batch, strengths, aggregated, outputs = self._batch_kernel([inputs])
        return InferenceTrace(
            fuzzified={
                name: {term: float(degrees[0]) for term, degrees in terms.items()}
                for name, terms in fuzzified_batch.items()
            },
            firing_strengths=[float(s) for s in strengths[0]],
            aggregated=aggregated[0],
            output=float(outputs[0]),
        )

    def evaluate_batch(self, records: BatchRecords) -> np.ndarray:
        """Crisp outputs for a whole batch of records at once.

        ``records`` is either a sequence of per-record mappings (``None`` /
        NaN marking missing cells) or a column mapping of ``(N,)`` float
        arrays (NaN marking missing cells) — the layout produced by
        :meth:`repro.fusion.attack.WebFusionAttack.assemble_columns`.
        """
        return self._batch_kernel(records)[3]

    # Batch kernel ---------------------------------------------------------------

    def _batch_kernel(
        self, records: BatchRecords
    ) -> tuple[dict[str, dict[str, np.ndarray]], np.ndarray, np.ndarray, np.ndarray]:
        """Run the full Mamdani pipeline over a batch.

        Returns ``(fuzzified, strengths, aggregated, outputs)`` where
        ``fuzzified`` maps variable -> term -> ``(N,)`` degrees, ``strengths``
        is the ``(N, n_rules)`` firing matrix, ``aggregated`` the
        ``(N, resolution)`` aggregated output curves and ``outputs`` the
        ``(N,)`` crisp estimates.
        """
        if not self.rules:
            raise FuzzyEvaluationError("the rule base is empty; add rules before evaluating")
        n, columns = as_columns(records, list(self.inputs), strict=True)
        fuzzified = self.fuzzify_batch(columns)
        strengths = firing_strength_matrix(self.rules, fuzzified)

        universe = self.output.grid(self.resolution)
        aggregated = np.zeros((n, universe.size))
        # Group rules by consequent term: max over same-term rules commutes
        # with the min-clip (both are exact), so each term's curve is clipped
        # once at the per-record maximum strength instead of once per rule.
        term_rule_indices: dict[str, list[int]] = {}
        for j, rule in enumerate(self.rules):
            term_rule_indices.setdefault(rule.consequent_term, []).append(j)
        for term, indices in term_rule_indices.items():
            term_strengths = strengths[:, indices].max(axis=1)
            term_curve = np.asarray(
                self.output.term(term).membership(universe), dtype=float
            )
            np.maximum(
                aggregated,
                np.minimum(term_curve, term_strengths[:, None]),
                out=aggregated,
            )

        midpoint = (self.output.universe[0] + self.output.universe[1]) / 2.0
        outputs = np.full(n, midpoint, dtype=float)
        # No rule fired for a record: keep the midpoint of the output
        # universe, the least-informative estimate (an adversary can always
        # guess the middle of the declared range).
        fired = aggregated.max(axis=1, initial=0.0) > 0.0
        if np.any(fired):
            outputs[fired] = defuzzify_batch(
                universe, aggregated[fired], self.defuzzification
            )
        return fuzzified, strengths, aggregated, outputs

    def describe(self) -> str:
        """Human-readable summary of the system (variables, terms, rules)."""
        lines = [f"Mamdani system -> {self.output.name} ({self.defuzzification})"]
        for name, variable in self.inputs.items():
            lines.append(
                f"  input {name}: universe={variable.universe} terms={list(variable.term_names)}"
            )
        lines.append(
            f"  output {self.output.name}: universe={self.output.universe} "
            f"terms={list(self.output.term_names)}"
        )
        for rule in self.rules:
            lines.append(f"  rule: {rule}")
        return "\n".join(lines)
