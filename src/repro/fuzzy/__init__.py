"""Fuzzy inference substrate (the paper's information-fusion engine)."""

from repro.fuzzy.batch import as_columns, batch_length, columns_to_records
from repro.fuzzy.defuzzify import (
    BATCH_STRATEGIES,
    STRATEGIES,
    bisector,
    bisector_batch,
    centroid,
    centroid_batch,
    defuzzify,
    defuzzify_batch,
    mean_of_maxima,
    mean_of_maxima_batch,
)
from repro.fuzzy.inference import InferenceTrace, MamdaniSystem
from repro.fuzzy.membership import GaussianMF, MembershipFunction, TrapezoidalMF, TriangularMF
from repro.fuzzy.rules import (
    Condition,
    FuzzyRule,
    firing_strength_matrix,
    parse_rule,
    parse_rules,
)
from repro.fuzzy.tsk import SugenoSystem, term_centroids
from repro.fuzzy.variables import FuzzySet, LinguisticVariable

__all__ = [
    "MembershipFunction",
    "TriangularMF",
    "TrapezoidalMF",
    "GaussianMF",
    "FuzzySet",
    "LinguisticVariable",
    "Condition",
    "FuzzyRule",
    "firing_strength_matrix",
    "parse_rule",
    "parse_rules",
    "MamdaniSystem",
    "InferenceTrace",
    "SugenoSystem",
    "term_centroids",
    "defuzzify",
    "centroid",
    "bisector",
    "mean_of_maxima",
    "STRATEGIES",
    "defuzzify_batch",
    "centroid_batch",
    "bisector_batch",
    "mean_of_maxima_batch",
    "BATCH_STRATEGIES",
    "as_columns",
    "batch_length",
    "columns_to_records",
]
