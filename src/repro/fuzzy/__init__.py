"""Fuzzy inference substrate (the paper's information-fusion engine)."""

from repro.fuzzy.defuzzify import STRATEGIES, bisector, centroid, defuzzify, mean_of_maxima
from repro.fuzzy.inference import InferenceTrace, MamdaniSystem
from repro.fuzzy.membership import GaussianMF, MembershipFunction, TrapezoidalMF, TriangularMF
from repro.fuzzy.rules import Condition, FuzzyRule, parse_rule, parse_rules
from repro.fuzzy.tsk import SugenoSystem, term_centroids
from repro.fuzzy.variables import FuzzySet, LinguisticVariable

__all__ = [
    "MembershipFunction",
    "TriangularMF",
    "TrapezoidalMF",
    "GaussianMF",
    "FuzzySet",
    "LinguisticVariable",
    "Condition",
    "FuzzyRule",
    "parse_rule",
    "parse_rules",
    "MamdaniSystem",
    "InferenceTrace",
    "SugenoSystem",
    "term_centroids",
    "defuzzify",
    "centroid",
    "bisector",
    "mean_of_maxima",
    "STRATEGIES",
]
