"""Column-oriented record batches for the vectorized fusion engines.

The batch fusion kernels (:class:`~repro.fuzzy.inference.MamdaniSystem` and
:class:`~repro.fuzzy.tsk.SugenoSystem`) operate on a **column block**: one
``(N,)`` float array per input variable, with ``NaN`` marking a missing cell
(a suppressed release value, a person with no web presence).  This module
normalizes the two accepted record representations into that layout:

* a *sequence of mapping records* — ``[{"x": 1.0, "y": None}, ...]`` — the
  historical per-record form kept for API compatibility;
* a *column mapping* — ``{"x": np.array([...]), "y": np.array([...])}`` — the
  fast path used by :class:`~repro.fusion.attack.WebFusionAttack`, which
  assembles inputs column-wise straight from the release table.

``None`` cells and absent keys both become ``NaN``; downstream the fuzzifier
masks ``NaN`` inputs by assigning full membership to every term (the input
contributes no information), matching the scalar engines' ``None`` handling.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.exceptions import FuzzyEvaluationError

__all__ = ["BatchRecords", "batch_length", "as_columns", "columns_to_records"]

#: The two accepted batch layouts (see module docstring).
BatchRecords = Sequence[Mapping[str, float | None]] | Mapping[str, np.ndarray]


def _column_array(values: object, name: str) -> np.ndarray:
    """Coerce one column to a 1-D float array, mapping ``None`` cells to NaN."""
    try:
        column = np.asarray(values, dtype=float)
    except (TypeError, ValueError):
        column = np.array(
            [np.nan if v is None else float(v) for v in values],  # type: ignore[union-attr]
            dtype=float,
        )
    if column.ndim == 0:
        column = column.reshape(1)
    if column.ndim != 1:
        raise FuzzyEvaluationError(
            f"column {name!r} must be 1-D, got shape {column.shape}"
        )
    return column


def batch_length(records: BatchRecords) -> int:
    """Number of records in either batch representation."""
    if isinstance(records, Mapping):
        if not records:
            return 0
        return len(_column_array(next(iter(records.values())), "first"))
    return len(records)


def as_columns(
    records: BatchRecords,
    variable_names: Sequence[str],
    strict: bool = False,
) -> tuple[int, dict[str, np.ndarray]]:
    """Normalize ``records`` into ``(N, {variable: (N,) float array})``.

    Every name in ``variable_names`` gets a column; cells that are ``None``,
    NaN, or simply absent become ``NaN``.  With ``strict=True`` any key not in
    ``variable_names`` raises (mirroring the scalar Mamdani ``trace``
    validation); otherwise extra keys are ignored (scalar Sugeno behaviour).
    """
    names = list(variable_names)
    if isinstance(records, Mapping):
        unknown = set(records) - set(names)
        if strict and unknown:
            raise FuzzyEvaluationError(
                f"inputs reference unknown variables: {sorted(unknown)}"
            )
        # Every provided column — recognized or not — participates in the
        # length check, so a mapping of only-unknown keys still yields an
        # N-record batch (of all-NaN inputs) rather than collapsing to N=0.
        known = set(names)
        columns: dict[str, np.ndarray] = {}
        lengths: dict[str, int] = {}
        for name, values in records.items():
            column = _column_array(values, name)
            lengths[name] = len(column)
            if name in known:
                columns[name] = column
        if len(set(lengths.values())) > 1:
            raise FuzzyEvaluationError(
                f"input columns have inconsistent lengths: {lengths}"
            )
        n = next(iter(lengths.values())) if lengths else 0
        for name in names:
            if name not in columns:
                columns[name] = np.full(n, np.nan)
        return n, columns

    n = len(records)
    if strict:
        known = set(names)
        for record in records:
            unknown = set(record) - known
            if unknown:
                raise FuzzyEvaluationError(
                    f"inputs reference unknown variables: {sorted(unknown)}"
                )
    columns = {name: np.full(n, np.nan) for name in names}
    for i, record in enumerate(records):
        for name in names:
            value = record.get(name)
            if value is None:
                continue
            columns[name][i] = float(value)
    return n, columns


def columns_to_records(
    columns: Mapping[str, np.ndarray],
) -> list[dict[str, float | None]]:
    """Expand a column block back into per-record dicts (``NaN`` -> ``None``).

    Used to keep :class:`~repro.fusion.attack.AttackResult.records` in its
    historical per-record form while the fusion itself runs column-wise.
    """
    names = list(columns)
    arrays = {name: _column_array(columns[name], name) for name in names}
    lengths = {len(a) for a in arrays.values()}
    if len(lengths) > 1:
        raise FuzzyEvaluationError("input columns have inconsistent lengths")
    n = lengths.pop() if lengths else 0
    # One isnan pass + tolist per column, then plain-Python assembly: per-cell
    # numpy scalar indexing is ~10x slower and this runs on the attack path.
    cells = {}
    for name, array in arrays.items():
        cells[name] = [
            None if missing else value
            for missing, value in zip(np.isnan(array).tolist(), array.tolist())
        ]
    return [{name: cells[name][i] for name in names} for i in range(n)]
