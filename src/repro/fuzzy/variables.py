"""Linguistic variables and fuzzy sets.

A :class:`LinguisticVariable` bundles a crisp universe of discourse (the value
range of an input or output attribute) with a set of named linguistic terms,
each backed by a membership function.  In the paper's attack the inputs are
the release quasi-identifiers and the harvested web attributes, the output is
the sensitive attribute (personal income), and the terms are ranges such as
``Low = [$40,000 - $60,000]``, ``Medium``, ``High``.

The :meth:`LinguisticVariable.with_uniform_terms` and
:meth:`LinguisticVariable.from_values` constructors build evenly-spaced and
quantile-calibrated term partitions, which is how the adversary calibrates the
fuzzy sets from whatever marginal information is available.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.exceptions import FuzzyDefinitionError
from repro.fuzzy.membership import MembershipFunction, TrapezoidalMF, TriangularMF

__all__ = ["FuzzySet", "LinguisticVariable"]


@dataclass(frozen=True)
class FuzzySet:
    """A named linguistic term with its membership function."""

    name: str
    membership: MembershipFunction

    def degree(self, value: float) -> float:
        """Membership degree of a crisp value in this set."""
        return self.membership.degree(value)

    def degrees(self, values: np.ndarray) -> np.ndarray:
        """Vectorized membership degrees of an ``(N,)`` array of crisp values."""
        return self.membership.degrees(values)


@dataclass
class LinguisticVariable:
    """A crisp variable with linguistic terms defined over its universe."""

    name: str
    universe: tuple[float, float]
    terms: dict[str, FuzzySet] = field(default_factory=dict)

    def __post_init__(self) -> None:
        low, high = self.universe
        if not low < high:
            raise FuzzyDefinitionError(
                f"variable {self.name!r}: universe must satisfy low < high, got {self.universe}"
            )

    # Term management -----------------------------------------------------------

    def add_term(self, name: str, membership: MembershipFunction) -> "LinguisticVariable":
        """Register a linguistic term (returns ``self`` for chaining)."""
        if name in self.terms:
            raise FuzzyDefinitionError(f"variable {self.name!r} already has a term {name!r}")
        self.terms[name] = FuzzySet(name, membership)
        return self

    def term(self, name: str) -> FuzzySet:
        """Look up a term by name."""
        if name not in self.terms:
            raise FuzzyDefinitionError(
                f"variable {self.name!r} has no term {name!r}; known terms: {sorted(self.terms)}"
            )
        return self.terms[name]

    @property
    def term_names(self) -> tuple[str, ...]:
        """Names of all registered terms, in registration order."""
        return tuple(self.terms)

    # Evaluation -----------------------------------------------------------------

    def fuzzify(self, value: float) -> dict[str, float]:
        """Membership degree of ``value`` in every term."""
        if not self.terms:
            raise FuzzyDefinitionError(f"variable {self.name!r} has no terms defined")
        return {name: fuzzy_set.degree(value) for name, fuzzy_set in self.terms.items()}

    def fuzzify_batch(self, values: np.ndarray) -> dict[str, np.ndarray]:
        """Membership degrees of an ``(N,)`` value array in every term.

        ``NaN`` entries mark missing inputs and fuzzify to full membership
        (degree 1) in every term — the input contributes no information —
        matching the scalar engines' ``None`` handling.
        """
        if not self.terms:
            raise FuzzyDefinitionError(f"variable {self.name!r} has no terms defined")
        values = np.asarray(values, dtype=float)
        missing = np.isnan(values)
        # Evaluate the membership functions at a harmless stand-in so NaN does
        # not propagate, then overwrite the masked rows.
        safe = np.where(missing, self.universe[0], values)
        fuzzified: dict[str, np.ndarray] = {}
        for name, fuzzy_set in self.terms.items():
            degrees = fuzzy_set.degrees(safe)
            degrees[missing] = 1.0
            fuzzified[name] = degrees
        return fuzzified

    def grid(self, resolution: int = 201) -> np.ndarray:
        """A uniform sampling of the universe, used by Mamdani defuzzification."""
        if resolution < 3:
            raise FuzzyDefinitionError("grid resolution must be at least 3")
        return np.linspace(self.universe[0], self.universe[1], resolution)

    # Constructors ------------------------------------------------------------------

    @classmethod
    def with_uniform_terms(
        cls, name: str, universe: tuple[float, float], term_names: Sequence[str]
    ) -> "LinguisticVariable":
        """Evenly spaced triangular terms with shoulder trapezoids at the ends.

        This is the textbook construction: for terms ``Low / Medium / High``
        over ``[0, 10]`` it produces a left shoulder for ``Low``, a centred
        triangle for ``Medium`` and a right shoulder for ``High``.
        """
        if len(term_names) < 2:
            raise FuzzyDefinitionError("a variable needs at least 2 linguistic terms")
        low, high = universe
        variable = cls(name=name, universe=universe)
        centers = np.linspace(low, high, len(term_names))
        step = centers[1] - centers[0]
        for i, term_name in enumerate(term_names):
            center = centers[i]
            if i == 0:
                membership: MembershipFunction = TrapezoidalMF(
                    low, low, center, center + step
                )
            elif i == len(term_names) - 1:
                membership = TrapezoidalMF(center - step, center, high, high)
            else:
                membership = TriangularMF(center - step, center, center + step)
            variable.add_term(term_name, membership)
        return variable

    @classmethod
    def from_values(
        cls,
        name: str,
        values: Iterable[float],
        term_names: Sequence[str],
        padding: float = 0.05,
    ) -> "LinguisticVariable":
        """Quantile-calibrated terms: term centres sit at evenly spaced quantiles.

        The adversary uses this constructor when calibrating input fuzzy sets
        from the released (or harvested) marginal distributions rather than
        from a known domain range.
        """
        data = np.asarray(list(values), dtype=float)
        data = data[~np.isnan(data)]
        if data.size < 2:
            raise FuzzyDefinitionError(
                f"variable {name!r}: need at least 2 finite values to calibrate terms"
            )
        low, high = float(data.min()), float(data.max())
        if high <= low:
            high = low + 1.0
        span = high - low
        low -= padding * span
        high += padding * span

        quantiles = np.linspace(0.0, 1.0, len(term_names))
        centers = np.quantile(data, quantiles)
        centers = np.clip(centers, low, high)
        # Enforce strictly increasing centres so the triangles are well formed.
        for i in range(1, len(centers)):
            if centers[i] <= centers[i - 1]:
                centers[i] = centers[i - 1] + 1e-9 * max(1.0, abs(span))

        variable = cls(name=name, universe=(low, high))
        for i, term_name in enumerate(term_names):
            center = float(centers[i])
            left = float(centers[i - 1]) if i > 0 else low
            right = float(centers[i + 1]) if i < len(term_names) - 1 else high
            if i == 0:
                membership: MembershipFunction = TrapezoidalMF(low, low, center, right)
            elif i == len(term_names) - 1:
                membership = TrapezoidalMF(left, center, high, high)
            else:
                membership = TriangularMF(left, center, right)
            variable.add_term(term_name, membership)
        return variable

    @classmethod
    def from_ranges(
        cls,
        name: str,
        ranges: Mapping[str, tuple[float, float]],
        overlap: float = 0.25,
    ) -> "LinguisticVariable":
        """Terms defined by explicit crisp ranges, as the paper's Figure 2 does.

        ``ranges`` maps term names to ``(low, high)`` intervals, e.g.
        ``{"Low": (40_000, 60_000), "Medium": (60_000, 80_000), "High": (80_000, 100_000)}``.
        Adjacent terms are given a proportional ``overlap`` so inference is not
        piecewise-constant.
        """
        if not ranges:
            raise FuzzyDefinitionError("from_ranges requires at least one term range")
        sorted_items = sorted(ranges.items(), key=lambda item: item[1][0])
        low = min(r[0] for r in ranges.values())
        high = max(r[1] for r in ranges.values())
        variable = cls(name=name, universe=(low, high))
        for i, (term_name, (term_low, term_high)) in enumerate(sorted_items):
            if term_high <= term_low:
                raise FuzzyDefinitionError(
                    f"term {term_name!r} of variable {name!r} has an empty range"
                )
            width = term_high - term_low
            fuzz = overlap * width
            a = max(low, term_low - fuzz) if i > 0 else low
            d = min(high, term_high + fuzz) if i < len(sorted_items) - 1 else high
            variable.add_term(term_name, TrapezoidalMF(a, term_low, term_high, d))
        return variable
