"""Zero-order Sugeno (Takagi-Sugeno-Kang) inference engine.

The paper uses Mamdani inference; the Sugeno engine is provided as an ablation
alternative for the fusion system (DESIGN.md §6).  A zero-order Sugeno rule
asserts a crisp consequent value instead of a fuzzy term; the system output is
the firing-strength-weighted average of the consequent values::

    output = sum(strength_i * value_i) / sum(strength_i)

Consequent values can be given explicitly, or derived from an output
:class:`~repro.fuzzy.variables.LinguisticVariable` by taking each term's
centroid — this makes it a drop-in replacement for a Mamdani rule base.

Like the Mamdani engine, evaluation is implemented as a batch kernel: the
``(N, n_rules)`` firing matrix is built from whole input columns and the
weighted average is one matrix-vector product; the scalar :meth:`evaluate`
wraps the kernel on a single-record batch.  Records for which no rule fires
fall back to the midpoint of the output universe.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.exceptions import FuzzyDefinitionError, FuzzyEvaluationError
from repro.fuzzy.batch import BatchRecords, as_columns
from repro.fuzzy.rules import FuzzyRule, firing_strength_matrix
from repro.fuzzy.variables import LinguisticVariable

__all__ = ["SugenoSystem", "term_centroids"]


def term_centroids(variable: LinguisticVariable, resolution: int = 401) -> dict[str, float]:
    """Centroid of each linguistic term of ``variable`` (crisp consequent values)."""
    universe = variable.grid(resolution)
    centroids: dict[str, float] = {}
    for name in variable.term_names:
        curve = np.asarray(variable.term(name).membership(universe), dtype=float)
        area = float(np.trapezoid(curve, universe))
        if area <= 0.0:
            raise FuzzyDefinitionError(f"term {name!r} has zero area; cannot take centroid")
        centroids[name] = float(np.trapezoid(curve * universe, universe) / area)
    return centroids


@dataclass
class SugenoSystem:
    """Zero-order Sugeno system sharing the Mamdani rule representation.

    Parameters
    ----------
    inputs:
        Input linguistic variables keyed by name.
    output:
        The output linguistic variable (used for term centroids and the
        fallback estimate).
    rules:
        Fuzzy rules; each rule's ``consequent_term`` selects the crisp value
        from ``consequents``.
    consequents:
        Optional explicit mapping from consequent term name to crisp value.
        When omitted it defaults to the output variable's term centroids.
    """

    inputs: dict[str, LinguisticVariable]
    output: LinguisticVariable
    rules: list[FuzzyRule] = field(default_factory=list)
    consequents: dict[str, float] | None = None

    def __post_init__(self) -> None:
        if not self.inputs:
            raise FuzzyDefinitionError("a Sugeno system needs at least one input variable")
        if self.consequents is None:
            self.consequents = term_centroids(self.output)
        for rule in self.rules:
            self._validate_rule(rule)

    def _validate_rule(self, rule: FuzzyRule) -> None:
        rule.validate_against(self.inputs, self.output)
        if rule.consequent_term not in self.consequents:
            raise FuzzyDefinitionError(
                f"no crisp consequent registered for term {rule.consequent_term!r}"
            )

    def add_rule(self, rule: FuzzyRule) -> "SugenoSystem":
        """Validate and append a rule."""
        self._validate_rule(rule)
        self.rules.append(rule)
        return self

    def add_rules(self, rules: Sequence[FuzzyRule]) -> "SugenoSystem":
        """Validate and append several rules."""
        for rule in rules:
            self.add_rule(rule)
        return self

    def fuzzify(self, inputs: Mapping[str, float | None]) -> dict[str, dict[str, float]]:
        """Fuzzify crisp inputs, treating missing inputs as uninformative."""
        fuzzified: dict[str, dict[str, float]] = {}
        for name, variable in self.inputs.items():
            value = inputs.get(name)
            if value is None or (isinstance(value, float) and np.isnan(value)):
                fuzzified[name] = {term: 1.0 for term in variable.term_names}
            else:
                fuzzified[name] = variable.fuzzify(float(value))
        return fuzzified

    def fuzzify_batch(
        self, columns: Mapping[str, np.ndarray]
    ) -> dict[str, dict[str, np.ndarray]]:
        """Fuzzify whole input columns; NaN cells map every term to 1."""
        return {
            name: variable.fuzzify_batch(columns[name])
            for name, variable in self.inputs.items()
        }

    def evaluate(self, inputs: Mapping[str, float | None]) -> float:
        """Weighted-average crisp output for the given inputs."""
        return float(self.evaluate_batch([inputs])[0])

    def evaluate_batch(self, records: BatchRecords) -> np.ndarray:
        """Crisp outputs for a whole batch of records at once.

        Accepts either a sequence of per-record mappings or a column mapping
        of ``(N,)`` float arrays with NaN marking missing cells.  The
        ``(N, n_rules)`` firing matrix is contracted against the consequent
        value vector; zero-denominator records (no rule fired) fall back to
        the output-universe midpoint.
        """
        if not self.rules:
            raise FuzzyEvaluationError("the rule base is empty; add rules before evaluating")
        n, columns = as_columns(records, list(self.inputs), strict=False)
        fuzzified = self.fuzzify_batch(columns)
        strengths = firing_strength_matrix(self.rules, fuzzified)
        values = np.array(
            [self.consequents[rule.consequent_term] for rule in self.rules], dtype=float
        )
        numerators = strengths @ values
        denominators = strengths.sum(axis=1)
        midpoint = (self.output.universe[0] + self.output.universe[1]) / 2.0
        fired = denominators > 0.0
        outputs = np.full(n, midpoint, dtype=float)
        np.divide(numerators, denominators, out=outputs, where=fired)
        return outputs
