"""Zero-order Sugeno (Takagi-Sugeno-Kang) inference engine.

The paper uses Mamdani inference; the Sugeno engine is provided as an ablation
alternative for the fusion system (DESIGN.md §6).  A zero-order Sugeno rule
asserts a crisp consequent value instead of a fuzzy term; the system output is
the firing-strength-weighted average of the consequent values::

    output = sum(strength_i * value_i) / sum(strength_i)

Consequent values can be given explicitly, or derived from an output
:class:`~repro.fuzzy.variables.LinguisticVariable` by taking each term's
centroid — this makes it a drop-in replacement for a Mamdani rule base.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.exceptions import FuzzyDefinitionError, FuzzyEvaluationError
from repro.fuzzy.rules import FuzzyRule
from repro.fuzzy.variables import LinguisticVariable

__all__ = ["SugenoSystem", "term_centroids"]


def term_centroids(variable: LinguisticVariable, resolution: int = 401) -> dict[str, float]:
    """Centroid of each linguistic term of ``variable`` (crisp consequent values)."""
    universe = variable.grid(resolution)
    centroids: dict[str, float] = {}
    for name in variable.term_names:
        curve = np.asarray(variable.term(name).membership(universe), dtype=float)
        area = float(np.trapezoid(curve, universe))
        if area <= 0.0:
            raise FuzzyDefinitionError(f"term {name!r} has zero area; cannot take centroid")
        centroids[name] = float(np.trapezoid(curve * universe, universe) / area)
    return centroids


@dataclass
class SugenoSystem:
    """Zero-order Sugeno system sharing the Mamdani rule representation.

    Parameters
    ----------
    inputs:
        Input linguistic variables keyed by name.
    output:
        The output linguistic variable (used for term centroids and the
        fallback estimate).
    rules:
        Fuzzy rules; each rule's ``consequent_term`` selects the crisp value
        from ``consequents``.
    consequents:
        Optional explicit mapping from consequent term name to crisp value.
        When omitted it defaults to the output variable's term centroids.
    """

    inputs: dict[str, LinguisticVariable]
    output: LinguisticVariable
    rules: list[FuzzyRule] = field(default_factory=list)
    consequents: dict[str, float] | None = None

    def __post_init__(self) -> None:
        if not self.inputs:
            raise FuzzyDefinitionError("a Sugeno system needs at least one input variable")
        if self.consequents is None:
            self.consequents = term_centroids(self.output)
        for rule in self.rules:
            self._validate_rule(rule)

    def _validate_rule(self, rule: FuzzyRule) -> None:
        rule.validate_against(self.inputs, self.output)
        if rule.consequent_term not in self.consequents:
            raise FuzzyDefinitionError(
                f"no crisp consequent registered for term {rule.consequent_term!r}"
            )

    def add_rule(self, rule: FuzzyRule) -> "SugenoSystem":
        """Validate and append a rule."""
        self._validate_rule(rule)
        self.rules.append(rule)
        return self

    def add_rules(self, rules: Sequence[FuzzyRule]) -> "SugenoSystem":
        """Validate and append several rules."""
        for rule in rules:
            self.add_rule(rule)
        return self

    def fuzzify(self, inputs: Mapping[str, float | None]) -> dict[str, dict[str, float]]:
        """Fuzzify crisp inputs, treating missing inputs as uninformative."""
        fuzzified: dict[str, dict[str, float]] = {}
        for name, variable in self.inputs.items():
            value = inputs.get(name)
            if value is None or (isinstance(value, float) and np.isnan(value)):
                fuzzified[name] = {term: 1.0 for term in variable.term_names}
            else:
                fuzzified[name] = variable.fuzzify(float(value))
        return fuzzified

    def evaluate(self, inputs: Mapping[str, float | None]) -> float:
        """Weighted-average crisp output for the given inputs."""
        if not self.rules:
            raise FuzzyEvaluationError("the rule base is empty; add rules before evaluating")
        fuzzified = self.fuzzify(inputs)
        numerator = 0.0
        denominator = 0.0
        for rule in self.rules:
            strength = rule.firing_strength(fuzzified)
            numerator += strength * self.consequents[rule.consequent_term]
            denominator += strength
        if denominator <= 0.0:
            return float((self.output.universe[0] + self.output.universe[1]) / 2.0)
        return numerator / denominator

    def evaluate_batch(self, records: Sequence[Mapping[str, float | None]]) -> np.ndarray:
        """Crisp outputs for a sequence of input records."""
        return np.array([self.evaluate(record) for record in records], dtype=float)
