"""Defuzzification strategies.

The Mamdani engine produces an aggregated output membership curve over the
output universe (the "D E - F U Z Z I F I E R" stage of the paper's Figure 2);
defuzzification collapses it to a single crisp estimate of the sensitive
attribute.  The three standard strategies are provided:

* ``centroid`` — centre of gravity of the aggregated curve (Matlab default,
  used as this library's default);
* ``bisector`` — the abscissa splitting the area under the curve in half;
* ``mom`` — mean of maxima.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import FuzzyEvaluationError

__all__ = [
    "centroid",
    "bisector",
    "mean_of_maxima",
    "defuzzify",
    "STRATEGIES",
    "centroid_batch",
    "bisector_batch",
    "mean_of_maxima_batch",
    "defuzzify_batch",
    "BATCH_STRATEGIES",
]


def centroid(universe: np.ndarray, membership: np.ndarray) -> float:
    """Centre of gravity of the membership curve."""
    _validate(universe, membership)
    total = float(np.trapezoid(membership, universe))
    if total <= 0.0:
        raise FuzzyEvaluationError("cannot defuzzify an all-zero membership curve")
    return float(np.trapezoid(membership * universe, universe) / total)


def bisector(universe: np.ndarray, membership: np.ndarray) -> float:
    """Abscissa that splits the area under the membership curve into equal halves."""
    _validate(universe, membership)
    cumulative = np.concatenate(
        [[0.0], np.cumsum((membership[1:] + membership[:-1]) / 2.0 * np.diff(universe))]
    )
    total = cumulative[-1]
    if total <= 0.0:
        raise FuzzyEvaluationError("cannot defuzzify an all-zero membership curve")
    index = int(np.searchsorted(cumulative, total / 2.0))
    index = min(max(index, 0), len(universe) - 1)
    return float(universe[index])


def mean_of_maxima(universe: np.ndarray, membership: np.ndarray) -> float:
    """Mean of the abscissas where the membership curve attains its maximum."""
    _validate(universe, membership)
    peak = float(membership.max())
    if peak <= 0.0:
        raise FuzzyEvaluationError("cannot defuzzify an all-zero membership curve")
    return float(universe[np.isclose(membership, peak)].mean())


STRATEGIES = {
    "centroid": centroid,
    "bisector": bisector,
    "mom": mean_of_maxima,
}


def defuzzify(universe: np.ndarray, membership: np.ndarray, strategy: str = "centroid") -> float:
    """Dispatch to one of the registered defuzzification strategies."""
    if strategy not in STRATEGIES:
        raise FuzzyEvaluationError(
            f"unknown defuzzification strategy {strategy!r}; options: {sorted(STRATEGIES)}"
        )
    return STRATEGIES[strategy](universe, membership)


# Batch strategies -----------------------------------------------------------------
#
# Each batch function takes the shared ``(R,)`` output universe and an
# ``(N, R)`` block of aggregated membership curves (one row per record) and
# returns the ``(N,)`` crisp outputs.  Row ``i`` mirrors the scalar strategy
# applied to ``membership[i]``; the row-wise reductions may reassociate
# floating-point sums, so batch and scalar agree to tight tolerance (1e-9,
# enforced by tests/test_batch_equivalence.py) rather than bitwise.


def centroid_batch(universe: np.ndarray, membership: np.ndarray) -> np.ndarray:
    """Row-wise centre of gravity of an ``(N, R)`` block of membership curves."""
    _validate_batch(universe, membership)
    totals = np.trapezoid(membership, universe, axis=1)
    if np.any(totals <= 0.0):
        raise FuzzyEvaluationError("cannot defuzzify an all-zero membership curve")
    return np.trapezoid(membership * universe, universe, axis=1) / totals


def bisector_batch(universe: np.ndarray, membership: np.ndarray) -> np.ndarray:
    """Row-wise bisector of an ``(N, R)`` block of membership curves."""
    _validate_batch(universe, membership)
    segments = (membership[:, 1:] + membership[:, :-1]) / 2.0 * np.diff(universe)
    cumulative = np.concatenate(
        [np.zeros((membership.shape[0], 1)), np.cumsum(segments, axis=1)], axis=1
    )
    totals = cumulative[:, -1]
    if np.any(totals <= 0.0):
        raise FuzzyEvaluationError("cannot defuzzify an all-zero membership curve")
    # Count of entries strictly below the half-area target == searchsorted
    # (side='left'), the scalar formulation, vectorized over rows.
    indices = (cumulative < (totals / 2.0)[:, None]).sum(axis=1)
    indices = np.clip(indices, 0, len(universe) - 1)
    return universe[indices].astype(float)


def mean_of_maxima_batch(universe: np.ndarray, membership: np.ndarray) -> np.ndarray:
    """Row-wise mean of maxima of an ``(N, R)`` block of membership curves."""
    _validate_batch(universe, membership)
    peaks = membership.max(axis=1)
    if np.any(peaks <= 0.0):
        raise FuzzyEvaluationError("cannot defuzzify an all-zero membership curve")
    masks = np.isclose(membership, peaks[:, None])
    return (universe * masks).sum(axis=1) / masks.sum(axis=1)


BATCH_STRATEGIES = {
    "centroid": centroid_batch,
    "bisector": bisector_batch,
    "mom": mean_of_maxima_batch,
}


def defuzzify_batch(
    universe: np.ndarray, membership: np.ndarray, strategy: str = "centroid"
) -> np.ndarray:
    """Batch counterpart of :func:`defuzzify` over an ``(N, R)`` curve block."""
    if strategy not in BATCH_STRATEGIES:
        raise FuzzyEvaluationError(
            f"unknown defuzzification strategy {strategy!r}; options: {sorted(BATCH_STRATEGIES)}"
        )
    return BATCH_STRATEGIES[strategy](universe, membership)


def _validate(universe: np.ndarray, membership: np.ndarray) -> None:
    if universe.shape != membership.shape:
        raise FuzzyEvaluationError(
            f"universe and membership shapes differ: {universe.shape} vs {membership.shape}"
        )
    if universe.ndim != 1 or universe.size < 3:
        raise FuzzyEvaluationError("defuzzification needs a 1-D universe with >= 3 samples")


def _validate_batch(universe: np.ndarray, membership: np.ndarray) -> None:
    if universe.ndim != 1 or universe.size < 3:
        raise FuzzyEvaluationError("defuzzification needs a 1-D universe with >= 3 samples")
    if membership.ndim != 2 or membership.shape[1] != universe.size:
        raise FuzzyEvaluationError(
            f"batch membership must have shape (N, {universe.size}), "
            f"got {membership.shape}"
        )
