"""Fuzzy if-then rules and a small textual rule language.

The adversary's domain knowledge is expressed as rules of the form::

    IF valuation IS high AND property_holdings IS high THEN income IS high
    IF invst_vol IS low OR seniority IS low THEN income IS low

Rules can be built programmatically (:class:`FuzzyRule`) or parsed from that
textual form (:func:`parse_rule`), which is how the examples and the rule
induction module express the knowledge base.  Each rule carries a weight in
``(0, 1]``; the paper's experiments assign uniform weights.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.exceptions import FuzzyDefinitionError, FuzzyEvaluationError
from repro.fuzzy.variables import LinguisticVariable

__all__ = [
    "Condition",
    "FuzzyRule",
    "firing_strength_matrix",
    "parse_rule",
    "parse_rules",
]


@dataclass(frozen=True)
class Condition:
    """An atomic antecedent condition ``variable IS term`` (optionally negated)."""

    variable: str
    term: str
    negated: bool = False

    def evaluate(self, fuzzified: Mapping[str, Mapping[str, float]]) -> float:
        """Truth degree of the condition given per-variable fuzzified inputs."""
        if self.variable not in fuzzified:
            raise FuzzyEvaluationError(f"no input provided for variable {self.variable!r}")
        memberships = fuzzified[self.variable]
        if self.term not in memberships:
            raise FuzzyEvaluationError(
                f"variable {self.variable!r} has no term {self.term!r}"
            )
        degree = memberships[self.term]
        return 1.0 - degree if self.negated else degree

    def evaluate_batch(
        self, fuzzified: Mapping[str, Mapping[str, np.ndarray]]
    ) -> np.ndarray:
        """Truth degrees for a whole batch: ``(N,)`` array of per-record degrees.

        ``fuzzified`` maps variable name to per-term ``(N,)`` degree arrays
        (the output of :meth:`LinguisticVariable.fuzzify_batch`).
        """
        if self.variable not in fuzzified:
            raise FuzzyEvaluationError(f"no input provided for variable {self.variable!r}")
        memberships = fuzzified[self.variable]
        if self.term not in memberships:
            raise FuzzyEvaluationError(
                f"variable {self.variable!r} has no term {self.term!r}"
            )
        degrees = np.asarray(memberships[self.term], dtype=float)
        return 1.0 - degrees if self.negated else degrees

    def __str__(self) -> str:
        verb = "IS NOT" if self.negated else "IS"
        return f"{self.variable} {verb} {self.term}"


@dataclass(frozen=True)
class FuzzyRule:
    """A weighted fuzzy if-then rule.

    Parameters
    ----------
    conditions:
        The antecedent conditions.
    operator:
        ``"and"`` combines condition degrees with ``min`` (t-norm), ``"or"``
        with ``max`` (s-norm).
    consequent_term:
        The linguistic term of the output variable asserted by the rule.
    weight:
        Rule weight in ``(0, 1]``; the firing strength is scaled by it.
    """

    conditions: tuple[Condition, ...]
    consequent_term: str
    operator: str = "and"
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.conditions:
            raise FuzzyDefinitionError("a rule needs at least one antecedent condition")
        if self.operator not in ("and", "or"):
            raise FuzzyDefinitionError(f"unknown rule operator: {self.operator!r}")
        if not 0.0 < self.weight <= 1.0:
            raise FuzzyDefinitionError(f"rule weight must be in (0, 1], got {self.weight}")

    def firing_strength(self, fuzzified: Mapping[str, Mapping[str, float]]) -> float:
        """Degree to which the rule fires for the fuzzified inputs."""
        degrees = [condition.evaluate(fuzzified) for condition in self.conditions]
        combined = min(degrees) if self.operator == "and" else max(degrees)
        return self.weight * combined

    def firing_strength_batch(
        self, fuzzified: Mapping[str, Mapping[str, np.ndarray]]
    ) -> np.ndarray:
        """Per-record firing strengths as an ``(N,)`` array.

        Elementwise ``min`` / ``max`` over the condition degree arrays is
        numerically identical to the scalar :meth:`firing_strength` applied to
        each record, so the batch and scalar engines agree exactly.
        """
        degrees = [condition.evaluate_batch(fuzzified) for condition in self.conditions]
        reduce = np.minimum if self.operator == "and" else np.maximum
        return self.weight * reduce.reduce(degrees)

    def variables(self) -> set[str]:
        """Names of the input variables referenced by the rule."""
        return {condition.variable for condition in self.conditions}

    def validate_against(
        self, inputs: Mapping[str, LinguisticVariable], output: LinguisticVariable
    ) -> None:
        """Check every referenced variable/term exists; raise otherwise."""
        for condition in self.conditions:
            if condition.variable not in inputs:
                raise FuzzyDefinitionError(
                    f"rule references unknown input variable {condition.variable!r}"
                )
            inputs[condition.variable].term(condition.term)
        output.term(self.consequent_term)

    def __str__(self) -> str:
        joiner = f" {self.operator.upper()} "
        antecedent = joiner.join(str(c) for c in self.conditions)
        return f"IF {antecedent} THEN {self.consequent_term}"


def firing_strength_matrix(
    rules: Sequence[FuzzyRule],
    fuzzified: Mapping[str, Mapping[str, np.ndarray]],
) -> np.ndarray:
    """Firing strengths of every rule over a batch: an ``(N, n_rules)`` matrix.

    Column ``j`` holds rule ``j``'s per-record strengths; this is the central
    data layout of the vectorized fusion engines (one elementwise min/max chain
    per rule instead of a Python loop per record).
    """
    if not rules:
        raise FuzzyEvaluationError("cannot build a firing matrix from an empty rule base")
    return np.column_stack([rule.firing_strength_batch(fuzzified) for rule in rules])


_RULE_RE = re.compile(
    r"^\s*IF\s+(?P<antecedent>.+?)\s+THEN\s+(?P<output>\w+)\s+IS\s+(?P<term>\w+)"
    r"(?:\s+WITH\s+(?P<weight>[\d.]+))?\s*$",
    flags=re.IGNORECASE,
)
_CONDITION_RE = re.compile(
    r"^\s*(?P<variable>\w+)\s+IS\s+(?:(?P<negated>NOT)\s+)?(?P<term>\w+)\s*$",
    flags=re.IGNORECASE,
)


def parse_rule(text: str, output_variable: str | None = None) -> FuzzyRule:
    """Parse one textual rule.

    The grammar is ``IF <var> IS [NOT] <term> (AND|OR <var> IS [NOT] <term>)*
    THEN <output> IS <term> [WITH <weight>]``.  Mixing AND and OR within a
    single rule is rejected (it would be ambiguous without parentheses).
    """
    match = _RULE_RE.match(text)
    if not match:
        raise FuzzyDefinitionError(f"cannot parse rule: {text!r}")
    antecedent = match.group("antecedent")
    if output_variable is not None and match.group("output").lower() != output_variable.lower():
        raise FuzzyDefinitionError(
            f"rule consequent variable {match.group('output')!r} does not match "
            f"expected output {output_variable!r}"
        )

    has_and = re.search(r"\bAND\b", antecedent, flags=re.IGNORECASE) is not None
    has_or = re.search(r"\bOR\b", antecedent, flags=re.IGNORECASE) is not None
    if has_and and has_or:
        raise FuzzyDefinitionError(f"rule mixes AND and OR, which is ambiguous: {text!r}")
    operator = "or" if has_or else "and"
    parts = re.split(r"\bAND\b|\bOR\b", antecedent, flags=re.IGNORECASE)

    conditions = []
    for part in parts:
        condition_match = _CONDITION_RE.match(part)
        if not condition_match:
            raise FuzzyDefinitionError(f"cannot parse condition {part!r} in rule {text!r}")
        conditions.append(
            Condition(
                variable=condition_match.group("variable"),
                term=condition_match.group("term"),
                negated=condition_match.group("negated") is not None,
            )
        )

    weight_text = match.group("weight")
    weight = float(weight_text) if weight_text else 1.0
    return FuzzyRule(
        conditions=tuple(conditions),
        consequent_term=match.group("term"),
        operator=operator,
        weight=weight,
    )


def parse_rules(texts: Sequence[str], output_variable: str | None = None) -> list[FuzzyRule]:
    """Parse a list of textual rules, skipping blank lines and ``#`` comments."""
    rules = []
    for text in texts:
        stripped = text.strip()
        if not stripped or stripped.startswith("#"):
            continue
        rules.append(parse_rule(stripped, output_variable=output_variable))
    return rules
