"""Membership functions for fuzzy sets.

The fuzzy inference system the adversary builds (Figure 2 of the paper) maps
crisp inputs — investment volume index, customer valuation, property holdings,
... — to degrees of membership in linguistic terms ("Low", "Medium", "High").
This module provides the standard membership function shapes used by Matlab's
fuzzy toolbox, which the paper's experiments were implemented with:

* triangular (``trimf``)
* trapezoidal (``trapmf``), including half-open shoulders
* Gaussian (``gaussmf``)

All functions are vectorized over numpy arrays and clamp their output to
``[0, 1]``.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.exceptions import FuzzyDefinitionError

__all__ = [
    "MembershipFunction",
    "TriangularMF",
    "TrapezoidalMF",
    "GaussianMF",
]


class MembershipFunction(abc.ABC):
    """A function mapping crisp values to membership degrees in ``[0, 1]``."""

    @abc.abstractmethod
    def __call__(self, values: np.ndarray | float) -> np.ndarray | float:
        """Membership degree of ``values``."""

    @abc.abstractmethod
    def support(self) -> tuple[float, float]:
        """An interval outside of which the membership is (essentially) zero."""

    def degree(self, value: float) -> float:
        """Scalar membership degree of a single crisp value."""
        return float(np.clip(self(np.asarray(value, dtype=float)), 0.0, 1.0))

    def degrees(self, values: np.ndarray) -> np.ndarray:
        """Vectorized membership degrees of an ``(N,)`` array of crisp values.

        Applies exactly the same clamp to ``[0, 1]`` as :meth:`degree`, so the
        batch fusion kernels match the scalar path element for element.
        """
        return np.clip(
            np.asarray(self(np.asarray(values, dtype=float)), dtype=float), 0.0, 1.0
        )


@dataclass(frozen=True)
class TriangularMF(MembershipFunction):
    """Triangular membership function with feet ``a``/``c`` and peak ``b``."""

    a: float
    b: float
    c: float

    def __post_init__(self) -> None:
        if not self.a <= self.b <= self.c:
            raise FuzzyDefinitionError(
                f"triangular MF requires a <= b <= c, got ({self.a}, {self.b}, {self.c})"
            )
        if self.a == self.c:
            raise FuzzyDefinitionError("triangular MF must have non-zero width")

    def __call__(self, values: np.ndarray | float) -> np.ndarray | float:
        values = np.asarray(values, dtype=float)
        if self.b > self.a:
            rising = (values - self.a) / (self.b - self.a)
        else:
            # Degenerate left edge: the peak sits on the left foot, so every
            # value at or above the peak is fully rising.
            rising = np.where(values >= self.b, 1.0, 0.0)
        if self.c > self.b:
            falling = (self.c - values) / (self.c - self.b)
        else:
            falling = np.where(values <= self.b, 1.0, 0.0)
        return np.clip(np.minimum(rising, falling), 0.0, 1.0)

    def support(self) -> tuple[float, float]:
        return (self.a, self.c)


@dataclass(frozen=True)
class TrapezoidalMF(MembershipFunction):
    """Trapezoidal membership function with feet ``a``/``d`` and plateau ``[b, c]``.

    Setting ``a == b`` produces a left shoulder (membership 1 at the low end);
    ``c == d`` produces a right shoulder, the usual way the extreme linguistic
    terms ("Low", "High") are modelled.
    """

    a: float
    b: float
    c: float
    d: float

    def __post_init__(self) -> None:
        if not self.a <= self.b <= self.c <= self.d:
            raise FuzzyDefinitionError(
                f"trapezoidal MF requires a <= b <= c <= d, got "
                f"({self.a}, {self.b}, {self.c}, {self.d})"
            )
        if self.a == self.d:
            raise FuzzyDefinitionError("trapezoidal MF must have non-zero width")

    def __call__(self, values: np.ndarray | float) -> np.ndarray | float:
        values = np.asarray(values, dtype=float)
        if self.b > self.a:
            rising = (values - self.a) / (self.b - self.a)
        else:
            # Degenerate left edge (shoulder): membership is full from the
            # plateau onward, including exactly at the edge.
            rising = np.where(values >= self.b, 1.0, 0.0)
        if self.d > self.c:
            falling = (self.d - values) / (self.d - self.c)
        else:
            falling = np.where(values <= self.c, 1.0, 0.0)
        plateau = np.ones_like(values)
        return np.clip(np.minimum(np.minimum(rising, plateau), falling), 0.0, 1.0)

    def support(self) -> tuple[float, float]:
        return (self.a, self.d)


@dataclass(frozen=True)
class GaussianMF(MembershipFunction):
    """Gaussian membership function centred at ``mean`` with width ``sigma``."""

    mean: float
    sigma: float

    def __post_init__(self) -> None:
        if self.sigma <= 0:
            raise FuzzyDefinitionError(f"gaussian MF requires sigma > 0, got {self.sigma}")

    def __call__(self, values: np.ndarray | float) -> np.ndarray | float:
        values = np.asarray(values, dtype=float)
        return np.exp(-0.5 * ((values - self.mean) / self.sigma) ** 2)

    def support(self) -> tuple[float, float]:
        return (self.mean - 4.0 * self.sigma, self.mean + 4.0 * self.sigma)
