"""Exception hierarchy shared by every subsystem of the reproduction.

All library-raised errors derive from :class:`ReproError` so that callers can
catch the library's failures without accidentally swallowing programming
errors (``TypeError``, ``KeyError`` from unrelated code, ...).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SchemaError",
    "TableError",
    "HierarchyError",
    "AnonymizationError",
    "InfeasibleAnonymizationError",
    "FuzzyDefinitionError",
    "FuzzyEvaluationError",
    "LinkageError",
    "AuxiliarySourceError",
    "AttackConfigurationError",
    "MetricError",
    "FREDConfigurationError",
    "FREDInfeasibleError",
    "ExperimentError",
    "ServiceError",
    "UnknownDatasetError",
    "UnknownJobError",
    "PayloadTooLargeError",
]


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class SchemaError(ReproError):
    """A schema definition or schema lookup is invalid.

    Raised for duplicate attribute names, unknown attributes, role
    mismatches (e.g. asking for the sensitive column of a schema that has
    none) and invalid attribute declarations.
    """


class TableError(ReproError):
    """A table operation is invalid (shape mismatch, unknown column, ...)."""


class HierarchyError(ReproError):
    """A generalization hierarchy is malformed or a value cannot be mapped."""


class AnonymizationError(ReproError):
    """An anonymizer received invalid parameters or produced an invalid result."""


class InfeasibleAnonymizationError(AnonymizationError):
    """The requested anonymization level cannot be met for the given data.

    For example ``k`` larger than the number of records, or an ``l``-diversity
    requirement exceeding the number of distinct sensitive values.
    """


class FuzzyDefinitionError(ReproError):
    """A fuzzy variable, set or rule is ill-defined (bad ranges, unknown terms)."""


class FuzzyEvaluationError(ReproError):
    """A fuzzy system could not be evaluated for a given input."""


class LinkageError(ReproError):
    """Record linkage failed due to invalid configuration."""


class AuxiliarySourceError(ReproError):
    """An auxiliary (web) data source query was invalid."""


class AttackConfigurationError(ReproError):
    """The fusion attack was configured inconsistently with the release."""


class MetricError(ReproError):
    """A metric was evaluated on incompatible inputs."""


class FREDConfigurationError(ReproError):
    """The FRED optimizer configuration is invalid (weights, thresholds, sweep)."""


class FREDInfeasibleError(ReproError):
    """No anonymization level satisfies both the protection and utility thresholds."""


class ExperimentError(ReproError):
    """An experiment runner was asked for an unknown figure/table or bad parameters."""


class ServiceError(ReproError):
    """An anonymization-service request was invalid (bad parameters, bad payload)."""


class UnknownDatasetError(ServiceError):
    """A service request referenced a dataset fingerprint that is not registered."""


class UnknownJobError(ServiceError):
    """A service request referenced a job id that does not exist."""


class PayloadTooLargeError(ServiceError):
    """A service request body exceeded the configured size limit (HTTP 413)."""
