"""Generalized value domains used by partitioning-based anonymization.

K-anonymity style releases replace precise quasi-identifier values by coarser
values: numeric values become **intervals** (``[5-10]`` in the paper's
Table III), categorical values become **taxonomy nodes** (e.g. ``Engineering``
generalizing ``{ECE, CSE}``), and fully suppressed cells become ``*``.

These value types are shared by every anonymizer in :mod:`repro.anonymize` and
are understood by the metrics in :mod:`repro.metrics` (e.g. the dissimilarity
measure evaluates an interval by its midpoint, matching how the paper feeds a
k-anonymized release into the fuzzy fusion system).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.exceptions import HierarchyError

__all__ = [
    "Interval",
    "CategorySet",
    "Suppressed",
    "SUPPRESSED",
    "is_generalized",
    "numeric_representative",
    "value_to_text",
]


@dataclass(frozen=True)
class Interval:
    """A closed numeric interval ``[low, high]``.

    Intervals are the generalized form of numeric quasi-identifiers.  The
    *representative* value used when a downstream consumer needs a single
    number (the fuzzy fusion system, the dissimilarity metric) is the interval
    midpoint.
    """

    low: float
    high: float

    def __post_init__(self) -> None:
        if math.isnan(self.low) or math.isnan(self.high):
            raise HierarchyError("interval bounds must not be NaN")
        if self.low > self.high:
            raise HierarchyError(f"invalid interval: low={self.low} > high={self.high}")

    @property
    def midpoint(self) -> float:
        """Midpoint of the interval, the numeric representative of the cell."""
        return (self.low + self.high) / 2.0

    @property
    def width(self) -> float:
        """Width ``high - low`` of the interval."""
        return self.high - self.low

    def contains(self, value: float) -> bool:
        """Whether ``value`` falls inside the closed interval."""
        return self.low <= value <= self.high

    def merge(self, other: "Interval") -> "Interval":
        """Smallest interval covering both ``self`` and ``other``."""
        return Interval(min(self.low, other.low), max(self.high, other.high))

    @classmethod
    def from_values(cls, values: Iterable[float]) -> "Interval":
        """Tightest interval covering ``values``.

        Raises :class:`~repro.exceptions.HierarchyError` when ``values`` is
        empty.
        """
        values = list(values)
        if not values:
            raise HierarchyError("cannot build an interval from an empty value set")
        return cls(float(min(values)), float(max(values)))

    def __str__(self) -> str:
        def _format_bound(value: float) -> str:
            return str(int(value)) if float(value).is_integer() else repr(float(value))

        return f"[{_format_bound(self.low)}-{_format_bound(self.high)}]"


@dataclass(frozen=True)
class CategorySet:
    """A set of categorical values generalized into one cell.

    The set may carry a ``label`` naming the generalizing taxonomy node
    (e.g. ``"Engineering"`` for ``{"ECE", "CSE"}``).  When no taxonomy is
    available the label is the sorted, brace-delimited member list.
    """

    members: tuple[str, ...]
    label: str = ""

    def __init__(self, members: Iterable[str], label: str = "") -> None:
        member_tuple = tuple(sorted({str(m) for m in members}))
        if not member_tuple:
            raise HierarchyError("a CategorySet must contain at least one member")
        object.__setattr__(self, "members", member_tuple)
        object.__setattr__(self, "label", label or "{" + ", ".join(member_tuple) + "}")

    def contains(self, value: str) -> bool:
        """Whether ``value`` is one of the generalized members."""
        return str(value) in self.members

    def merge(self, other: "CategorySet") -> "CategorySet":
        """Union of the two member sets (label recomputed unless equal)."""
        label = self.label if self.label == other.label else ""
        return CategorySet(self.members + other.members, label=label)

    @property
    def size(self) -> int:
        """Number of distinct original values covered by the cell."""
        return len(self.members)

    def __str__(self) -> str:
        return self.label


class Suppressed:
    """Singleton marker for a fully suppressed cell (rendered as ``*``)."""

    _instance: "Suppressed | None" = None

    def __new__(cls) -> "Suppressed":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "Suppressed()"

    def __str__(self) -> str:
        return "*"


#: The canonical suppressed-cell marker.
SUPPRESSED = Suppressed()


def is_generalized(value: object) -> bool:
    """Whether ``value`` is a generalized cell (interval, category set or ``*``)."""
    return isinstance(value, (Interval, CategorySet, Suppressed))


def numeric_representative(value: object) -> float:
    """Numeric representative of a (possibly generalized) cell.

    * plain numbers map to themselves;
    * :class:`Interval` maps to its midpoint;
    * :class:`Suppressed` and :class:`CategorySet` map to ``nan`` (no numeric
      information survives).

    This is the value the adversary plugs into the fusion system for a
    generalized release cell, and the value the dissimilarity metric uses.
    """
    if isinstance(value, Interval):
        return value.midpoint
    if isinstance(value, (Suppressed, CategorySet)):
        return float("nan")
    if isinstance(value, bool):
        return float(value)
    if isinstance(value, (int, float)):
        return float(value)
    try:
        return float(value)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return float("nan")


def value_to_text(value: object) -> str:
    """Render a cell for textual table output (paper-style ``[5-10]`` / ``*``)."""
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


def cover_values(values: Sequence[object]) -> object:
    """Smallest generalized cell covering ``values``.

    Numeric inputs produce an :class:`Interval`; strings produce a
    :class:`CategorySet`; a mixture raises
    :class:`~repro.exceptions.HierarchyError`.  A single distinct value is
    returned unchanged (no generalization needed).
    """
    values = list(values)
    if not values:
        raise HierarchyError("cannot generalize an empty value set")
    distinct = set(values)
    if len(distinct) == 1:
        return values[0]
    if all(isinstance(v, (int, float)) and not isinstance(v, bool) for v in values):
        return Interval.from_values(float(v) for v in values)
    if all(isinstance(v, str) for v in values):
        return CategorySet(values)
    raise HierarchyError(f"cannot generalize mixed-type values: {sorted(map(str, distinct))}")
