"""Column-oriented in-memory table, the substrate every subsystem operates on.

The reproduction does not depend on pandas; instead this module provides a
small, well-tested, column-oriented :class:`Table` with exactly the operations
the paper's pipeline needs:

* schema-aware construction (identifier / quasi-identifier / sensitive roles);
* row and column access, projection, row selection, joins on a key column;
* extraction of the numeric quasi-identifier block as a ``numpy`` matrix
  (generalized cells are resolved to their numeric representative — interval
  midpoints — which is exactly the information an adversary has);
* derivation of the *enterprise release* (keep identifiers, generalize
  quasi-identifiers, drop the sensitive column).

Columnar storage
----------------
Each column is a typed ``numpy`` array: ``int64`` when every cell is a plain
integer, ``float64`` when every cell is numeric (``nan`` marking missing
values), and ``object`` for identifiers, categoricals and generalized cells
(:class:`~repro.dataset.generalization.Interval`, ``CategorySet``, ``*``).
Relational operations (``take``, ``project``, ``join``, ``concat``) move whole
arrays — projections and renames share the underlying arrays outright, row
gathers are single fancy-index calls — instead of rebuilding ``list[object]``
columns cell by cell.  Numeric views (``numeric_column`` and friends) are
computed once per column and cached, so the anonymizers, metrics and the
fusion attack all read from the same float buffers.

Tables are value-semantics objects: every operation returns a new table, the
internal arrays are never mutated after construction, and sequences handed to
the constructor are copied.  Accessors (``column``, ``row``, ``cell``) return
plain Python values, never numpy scalars, so downstream type dispatch
(``isinstance(v, (int, float))``) behaves exactly as it did with list-backed
columns.
"""

from __future__ import annotations

import hashlib
import math
from typing import Callable, Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.dataset.generalization import (
    CategorySet,
    Interval,
    Suppressed,
    numeric_representative,
    value_to_text,
)
from repro.dataset.schema import Attribute, Schema
from repro.exceptions import SchemaError, TableError

__all__ = ["Table", "chain_fingerprints"]


def chain_fingerprints(base: str, delta: str) -> str:
    """The chained fingerprint of appending a ``delta`` table onto ``base``.

    ``sha256(base_fp ‖ delta_fp)`` over the two hex digests: the identity of
    an appended table is a pure function of the identities of its parts, so
    appending N rows costs O(N) hashing (the delta's own digest) instead of
    re-canonicalizing every cell of the combined table.  The chain is
    order-sensitive — ``append(a, b)`` and ``append(b, a)`` differ — and a
    chained fingerprint deliberately differs from the canonical content
    digest of the equivalent monolithic table: the service treats an
    appended dataset as a *new* dataset whose caches start cold.
    """
    hasher = hashlib.sha256()
    hasher.update(b"repro.table.append.v1")
    hasher.update(base.encode("ascii"))
    hasher.update(delta.encode("ascii"))
    return hasher.hexdigest()


def _as_column_array(values: Sequence[object] | np.ndarray) -> np.ndarray:
    """Coerce a column to its typed storage array (int64 / float64 / object)."""
    if isinstance(values, np.ndarray):
        if values.ndim != 1:
            raise TableError(f"columns must be one-dimensional, got shape {values.shape}")
        kind = values.dtype.kind
        if kind in ("i", "u"):
            return values.astype(np.int64)
        if kind == "f":
            return values.astype(np.float64)
        if values.dtype == object:
            return values.copy()
        values = values.tolist()
    else:
        values = list(values)

    all_int = True
    numeric = bool(values)
    for value in values:
        if isinstance(value, (bool, np.bool_)) or not isinstance(
            value, (int, float, np.integer, np.floating)
        ):
            numeric = False
            break
        if not isinstance(value, (int, np.integer)):
            all_int = False

    if numeric:
        try:
            return np.array(values, dtype=np.int64 if all_int else np.float64)
        except (OverflowError, ValueError):
            pass  # e.g. integers beyond int64: keep exact objects
    array = np.empty(len(values), dtype=object)
    if len(values):
        try:
            array[:] = values
        except ValueError:  # cells that look like nested sequences to numpy
            for i, value in enumerate(values):
                array[i] = value
    return array


def _py_value(value: object) -> object:
    """Unwrap numpy scalars so accessors hand out plain Python values."""
    return value.item() if isinstance(value, np.generic) else value


def _column_to_list(array: np.ndarray) -> list[object]:
    """A fresh Python list of a storage array's values."""
    return array.tolist() if array.dtype != object else list(array)


def _cells_equal(left: object, right: object) -> bool:
    """Scalar cell equality that treats NaN as equal to NaN."""
    if left is right:
        return True
    if isinstance(left, float) and isinstance(right, float):
        if math.isnan(left) and math.isnan(right):
            return True
    return bool(left == right)


def _arrays_equal(left: np.ndarray, right: np.ndarray) -> bool:
    """NaN-aware equality of two storage arrays (possibly of different dtypes)."""
    if left.shape != right.shape:
        return False
    left_kind, right_kind = left.dtype.kind, right.dtype.kind
    if left_kind == "i" and right_kind == "i":
        return bool(np.array_equal(left, right))
    if left_kind == "f" and right_kind == "f":
        return bool(np.array_equal(left, right, equal_nan=True))
    # Mixed dtypes (int vs float, object vs anything): exact scalar
    # comparison — casting int64 to float64 would conflate integers that
    # differ beyond 2**53.
    return all(
        _cells_equal(a, b) for a, b in zip(_column_to_list(left), _column_to_list(right))
    )


class Table:
    """An immutable, schema-aware, column-oriented table.

    Parameters
    ----------
    schema:
        The :class:`~repro.dataset.schema.Schema` describing the columns.
    columns:
        Mapping of column name to a sequence of values.  Every schema
        attribute must be present and all columns must share the same length.
    """

    __slots__ = ("_schema", "_columns", "_num_rows", "_numeric_views", "_fingerprint")

    def __init__(self, schema: Schema, columns: Mapping[str, Sequence[object]]) -> None:
        self._schema = schema
        missing = [name for name in schema.names if name not in columns]
        if missing:
            raise TableError(f"missing columns for schema attributes: {missing}")
        extra = [name for name in columns if name not in schema]
        if extra:
            raise TableError(f"columns not declared in schema: {extra}")

        arrays = {name: _as_column_array(columns[name]) for name in schema.names}
        lengths = {name: array.shape[0] for name, array in arrays.items()}
        if len(set(lengths.values())) > 1:
            raise TableError(f"columns have inconsistent lengths: {lengths}")

        self._columns: dict[str, np.ndarray] = arrays
        self._num_rows = next(iter(lengths.values())) if lengths else 0
        self._numeric_views: dict[str, np.ndarray] = {}
        self._fingerprint: str | None = None

    @classmethod
    def _from_arrays(
        cls, schema: Schema, arrays: dict[str, np.ndarray], num_rows: int
    ) -> "Table":
        """Internal zero-copy constructor: ``arrays`` are adopted, not copied.

        Callers must hand over storage arrays that are never mutated again —
        this is how projections, gathers and joins share column buffers.
        """
        table = cls.__new__(cls)
        table._schema = schema
        table._columns = arrays
        table._num_rows = num_rows
        table._numeric_views = {}
        table._fingerprint = None
        return table

    # Construction helpers ------------------------------------------------------

    @classmethod
    def from_rows(cls, schema: Schema, rows: Iterable[Sequence[object] | Mapping[str, object]]) -> "Table":
        """Build a table from an iterable of rows (sequences or mappings)."""
        columns: dict[str, list[object]] = {name: [] for name in schema.names}
        for row in rows:
            if isinstance(row, Mapping):
                for name in schema.names:
                    if name not in row:
                        raise TableError(f"row is missing column {name!r}: {row!r}")
                    columns[name].append(row[name])
            else:
                values = list(row)
                if len(values) != len(schema.names):
                    raise TableError(
                        f"row has {len(values)} values, schema has {len(schema.names)} columns"
                    )
                for name, value in zip(schema.names, values):
                    columns[name].append(value)
        return cls(schema, columns)

    @classmethod
    def from_records(cls, schema: Schema, records: Iterable[Mapping[str, object]]) -> "Table":
        """Alias of :meth:`from_rows` restricted to mapping rows."""
        return cls.from_rows(schema, records)

    # Basic protocol ------------------------------------------------------------

    @property
    def schema(self) -> Schema:
        """The table schema."""
        return self._schema

    @property
    def num_rows(self) -> int:
        """Number of rows."""
        return self._num_rows

    @property
    def num_columns(self) -> int:
        """Number of columns."""
        return len(self._schema)

    def __len__(self) -> int:
        return self._num_rows

    def __iter__(self) -> Iterator[dict[str, object]]:
        return iter(self.rows())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        if self._schema.names != other._schema.names:
            return False
        return all(
            _arrays_equal(self._columns[name], other._columns[name])
            for name in self._schema.names
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Table(rows={self.num_rows}, columns={list(self._schema.names)})"

    # Content identity -----------------------------------------------------------

    @property
    def fingerprint(self) -> str:
        """A stable content fingerprint of the table (sha256 hex digest).

        The fingerprint hashes the schema (column names, roles, kinds, in
        order) together with the *values* of every column buffer.  It is a
        pure function of content: buffer-sharing operations (a full
        :meth:`project`, a :meth:`rename` round trip) and independently
        constructed tables with equal cells produce the same fingerprint,
        while any cell edit, row reorder, or schema change produces a
        different one.  Numeric cells are canonicalized before hashing —
        ``5`` and ``5.0`` hash identically (matching ``__eq__`` and the CSV
        round trip), every NaN hashes the same, and ``-0.0`` hashes as
        ``0.0`` — so the digest does not depend on whether a column happens
        to be stored as ``int64``, ``float64`` or ``object``.

        This is the dataset identity the anonymization service keys its
        release/result caches on.
        """
        if self._fingerprint is None:
            hasher = hashlib.sha256()
            hasher.update(b"repro.table.v1")
            for attribute in self._schema.attributes:
                declaration = (
                    f"{attribute.name}\x1f{attribute.role.value}\x1f{attribute.kind.value}"
                ).encode("utf-8")
                hasher.update(len(declaration).to_bytes(4, "big"))
                hasher.update(declaration)
                hasher.update(_column_digest(self._columns[attribute.name]))
            self._fingerprint = hasher.hexdigest()
        return self._fingerprint

    # Access ---------------------------------------------------------------------

    def column(self, name: str) -> list[object]:
        """A copy of the values of column ``name``."""
        return _column_to_list(self.column_array(name))

    def column_array(self, name: str) -> np.ndarray:
        """The typed storage array of column ``name``.

        The returned array is the table's own buffer — treat it as read-only.
        Numeric columns are ``int64``/``float64``; identifier, categorical and
        generalized columns are ``object``.
        """
        array = self._columns.get(name)
        if array is None:
            raise TableError(f"unknown column: {name!r}")
        return array

    def numeric_column(self, name: str) -> np.ndarray:
        """Column ``name`` as a float array, resolving generalized cells.

        Intervals map to their midpoints; suppressed / categorical cells map
        to ``nan``.  The conversion is cached per column; callers receive a
        fresh copy they are free to mutate.
        """
        return self._numeric_view(name).copy()

    def _numeric_view(self, name: str) -> np.ndarray:
        """The cached float view of a column.  Internal callers must not mutate."""
        view = self._numeric_views.get(name)
        if view is None:
            array = self.column_array(name)
            if array.dtype.kind in "if":
                view = array.astype(np.float64, copy=False)
            else:
                view = _numeric_view_of_objects(array)
            self._numeric_views[name] = view
        return view

    def row(self, index: int) -> dict[str, object]:
        """Row ``index`` as a ``{column: value}`` dict."""
        if not 0 <= index < self._num_rows:
            raise TableError(f"row index {index} out of range [0, {self._num_rows})")
        return {
            name: _py_value(self._columns[name][index]) for name in self._schema.names
        }

    def rows(self) -> list[dict[str, object]]:
        """All rows as dicts (in row order)."""
        names = self._schema.names
        if not names:
            return []
        columns = [self.column(name) for name in names]
        return [dict(zip(names, values)) for values in zip(*columns)]

    def cell(self, index: int, name: str) -> object:
        """The single cell at (``index``, ``name``)."""
        array = self.column_array(name)
        if not 0 <= index < self._num_rows:
            raise TableError(f"row index {index} out of range [0, {self._num_rows})")
        return _py_value(array[index])

    # Relational operations --------------------------------------------------------

    def project(self, names: Sequence[str]) -> "Table":
        """Keep only the columns in ``names`` (schema roles are preserved).

        Column buffers are shared with the parent table (zero-copy).
        """
        schema = self._schema.project(names)
        arrays = {name: self._columns[name] for name in names}
        return Table._from_arrays(schema, arrays, self._num_rows)

    def drop_columns(self, names: Sequence[str]) -> "Table":
        """Drop the columns in ``names`` (remaining buffers are shared)."""
        schema = self._schema.drop(names)
        arrays = {name: self._columns[name] for name in schema.names}
        return Table._from_arrays(schema, arrays, self._num_rows)

    def select(self, predicate: Callable[[dict[str, object]], bool]) -> "Table":
        """Rows for which ``predicate(row_dict)`` is truthy."""
        keep = [i for i, row in enumerate(self.rows()) if predicate(row)]
        return self.take(keep)

    def take(self, indices: Sequence[int]) -> "Table":
        """Rows at ``indices`` in the given order (one fancy-index per column)."""
        index_array = np.asarray(indices, dtype=np.intp)
        if index_array.ndim != 1:
            raise TableError(f"row indices must be one-dimensional, got {index_array.shape}")
        if index_array.size:
            bad = (index_array < 0) | (index_array >= self._num_rows)
            if bad.any():
                offender = int(index_array[bad][0])
                raise TableError(
                    f"row index {offender} out of range [0, {self._num_rows})"
                )
        arrays = {name: array[index_array] for name, array in self._columns.items()}
        return Table._from_arrays(self._schema, arrays, int(index_array.size))

    def sort_by(self, name: str, reverse: bool = False) -> "Table":
        """Rows stably sorted by column ``name``.

        Columns whose cells do not admit a direct total order (``None``,
        generalized cells, mixed types) fall back to sorting by the numeric
        representative of each cell; cells with no numeric representative
        (suppressed / categorical) sort after all resolvable cells regardless
        of ``reverse``.
        """
        values = self.column(name)
        try:
            order = sorted(range(self._num_rows), key=values.__getitem__, reverse=reverse)
        except TypeError:
            keys: list[tuple[int, float]] = []
            for value in values:
                representative = numeric_representative(value)
                if math.isnan(representative):
                    keys.append((1, 0.0))
                else:
                    keys.append((0, -representative if reverse else representative))
            order = sorted(range(self._num_rows), key=keys.__getitem__)
        return self.take(order)

    def with_column(self, attribute: Attribute, values: Sequence[object]) -> "Table":
        """A new table with an extra column appended."""
        if attribute.name in self._schema:
            raise TableError(f"column {attribute.name!r} already exists")
        array = _as_column_array(values)
        if array.shape[0] != self._num_rows:
            raise TableError(
                f"new column has {array.shape[0]} values, table has {self._num_rows} rows"
            )
        schema = Schema(list(self._schema.attributes) + [attribute])
        arrays = dict(self._columns)
        arrays[attribute.name] = array
        return Table._from_arrays(schema, arrays, self._num_rows)

    def replace_column(self, name: str, values: Sequence[object]) -> "Table":
        """A new table with column ``name`` replaced by ``values``."""
        if name not in self._schema:
            raise TableError(f"unknown column: {name!r}")
        array = _as_column_array(values)
        if array.shape[0] != self._num_rows:
            raise TableError(
                f"replacement column has {array.shape[0]} values, table has {self._num_rows} rows"
            )
        arrays = dict(self._columns)
        arrays[name] = array
        return Table._from_arrays(self._schema, arrays, self._num_rows)

    def rename(self, mapping: Mapping[str, str]) -> "Table":
        """A new table with columns renamed according to ``mapping``."""
        attributes = []
        arrays: dict[str, np.ndarray] = {}
        for attribute in self._schema.attributes:
            new_name = mapping.get(attribute.name, attribute.name)
            attributes.append(
                Attribute(new_name, attribute.role, attribute.kind, attribute.description)
            )
            arrays[new_name] = self._columns[attribute.name]
        return Table._from_arrays(Schema(attributes), arrays, self._num_rows)

    def join(self, other: "Table", on: str, how: str = "inner") -> "Table":
        """Join two tables on equality of column ``on``.

        Only ``inner`` and ``left`` joins are supported; the right table must
        have unique join keys (this is how the adversary attaches auxiliary web
        attributes to release records).  Missing right-side values in a left
        join are ``None``.

        The join is a hash join: right keys are indexed once, left keys are
        mapped to right positions in a single pass, and the output columns are
        gathered with one fancy-index per column instead of per-row appends.
        """
        if how not in ("inner", "left"):
            raise TableError(f"unsupported join type: {how!r}")
        if on not in self._schema or on not in other._schema:
            raise TableError(f"join column {on!r} must exist in both tables")

        right_keys = other.column(on)
        if len(set(right_keys)) != len(right_keys):
            raise TableError(f"right table join keys on {on!r} are not unique")
        right_index = {key: i for i, key in enumerate(right_keys)}

        right_only = [a for a in other._schema.attributes if a.name != on]
        clashing = [a.name for a in right_only if a.name in self._schema]
        if clashing:
            raise TableError(f"join would duplicate columns: {clashing}")

        left_keys = self.column(on)
        positions = np.fromiter(
            (right_index.get(key, -1) for key in left_keys),
            dtype=np.intp,
            count=self._num_rows,
        )
        joined_schema = Schema(list(self._schema.attributes) + right_only)

        if how == "inner":
            left_rows = np.nonzero(positions >= 0)[0]
            right_rows = positions[left_rows]
            arrays = {
                name: array[left_rows] for name, array in self._columns.items()
            }
            for attribute in right_only:
                arrays[attribute.name] = other._columns[attribute.name][right_rows]
            return Table._from_arrays(joined_schema, arrays, int(left_rows.size))

        matched = positions >= 0
        arrays = dict(self._columns)
        if bool(matched.all()) and other._num_rows:
            for attribute in right_only:
                arrays[attribute.name] = other._columns[attribute.name][positions]
        elif other._num_rows == 0:
            for attribute in right_only:
                arrays[attribute.name] = np.full(self._num_rows, None, dtype=object)
        else:
            gather = np.where(matched, positions, 0)
            matched_list = matched.tolist()
            for attribute in right_only:
                taken = _column_to_list(other._columns[attribute.name][gather])
                arrays[attribute.name] = _as_column_array(
                    [
                        value if hit else None
                        for value, hit in zip(taken, matched_list)
                    ]
                )
        return Table._from_arrays(joined_schema, arrays, self._num_rows)

    def concat(self, other: "Table") -> "Table":
        """Vertical concatenation of two tables with identical schemas."""
        if self._schema.names != other._schema.names:
            raise TableError("cannot concatenate tables with different schemas")
        arrays: dict[str, np.ndarray] = {}
        for name in self._schema.names:
            left, right = self._columns[name], other._columns[name]
            if left.dtype == right.dtype and left.dtype != object:
                arrays[name] = np.concatenate([left, right])
            else:
                arrays[name] = _as_column_array(
                    _column_to_list(left) + _column_to_list(right)
                )
        return Table._from_arrays(
            self._schema, arrays, self._num_rows + other._num_rows
        )

    def append(self, other: "Table") -> "Table":
        """Append ``other``'s rows, chaining the content fingerprint.

        Array mechanics are exactly :meth:`concat`; the difference is
        identity.  The result's fingerprint is pre-seeded with
        :func:`chain_fingerprints` of the two operands' fingerprints, so the
        cost of identifying the appended table is O(delta rows) — only the
        delta's columns are ever canonicalized — instead of O(total rows).
        The appended schema must match (same names, roles and kinds): a
        chained fingerprint asserts the schema declaration bytes of both
        operands, and diverging roles would silently change what the hash
        covers.
        """
        mine = [(a.name, a.role, a.kind) for a in self._schema.attributes]
        theirs = [(a.name, a.role, a.kind) for a in other._schema.attributes]
        if mine != theirs:
            raise TableError("cannot append a table with a different schema")
        combined = self.concat(other)
        combined._fingerprint = chain_fingerprints(self.fingerprint, other.fingerprint)
        return combined

    def numeric_columns(self, names: Sequence[str]) -> dict[str, np.ndarray]:
        """Several columns as ``(rows,)`` float arrays, resolving generalized cells.

        This is the column-wise access path of the batch fusion engine: the
        attack assembles its inputs directly from these arrays (NaN marking
        suppressed / non-numeric cells) instead of iterating per-record dicts.
        """
        return {name: self.numeric_column(name) for name in names}

    # Privacy-specific views --------------------------------------------------------

    def quasi_identifier_matrix(self) -> np.ndarray:
        """The numeric quasi-identifier block as a ``(rows, qi)`` float matrix.

        Categorical quasi-identifiers are excluded; generalized numeric cells
        resolve to interval midpoints (``nan`` when suppressed).
        """
        names = self._schema.numeric_quasi_identifiers
        if not names:
            raise SchemaError("table has no numeric quasi-identifier columns")
        return np.column_stack([self._numeric_view(name) for name in names])

    def sensitive_vector(self) -> np.ndarray:
        """The (single) sensitive column as a float vector."""
        return self.numeric_column(self._schema.sensitive_attribute)

    def identifier_column(self) -> list[object]:
        """The first identifier column (the 'Name' column of the paper)."""
        identifiers = self._schema.identifiers
        if not identifiers:
            raise SchemaError("table has no identifier column")
        return self.column(identifiers[0])

    def release_view(self, keep_sensitive: bool = False) -> "Table":
        """The enterprise-release view: identifiers + quasi-identifiers.

        The sensitive column is dropped unless ``keep_sensitive`` is set.  Note
        this does **not** anonymize the quasi-identifiers; anonymizers in
        :mod:`repro.anonymize` produce generalized releases from this view.
        """
        schema = self._schema.release_schema(keep_sensitive=keep_sensitive)
        return self.project(list(schema.names))

    # Rendering -----------------------------------------------------------------------

    def to_text(self, max_rows: int | None = 20) -> str:
        """ASCII rendering of the table (used by the experiment harness)."""
        names = list(self._schema.names)
        limit = self._num_rows if max_rows is None else min(max_rows, self._num_rows)
        columns = [
            [value_to_text(value) for value in _column_to_list(self.column_array(name)[:limit])]
            for name in names
        ]
        rendered_rows = [list(row) for row in zip(*columns)] if columns else []
        widths = [
            max(len(name), *(len(row[j]) for row in rendered_rows)) if rendered_rows else len(name)
            for j, name in enumerate(names)
        ]
        header = " | ".join(name.ljust(widths[j]) for j, name in enumerate(names))
        separator = "-+-".join("-" * w for w in widths)
        lines = [header, separator]
        for row in rendered_rows:
            lines.append(" | ".join(cell.ljust(widths[j]) for j, cell in enumerate(row)))
        if limit < self._num_rows:
            lines.append(f"... ({self._num_rows - limit} more rows)")
        return "\n".join(lines)

    def to_records(self) -> list[dict[str, object]]:
        """All rows as dicts; alias of :meth:`rows` for IO symmetry."""
        return self.rows()


def _canonical_float_bytes(array: np.ndarray) -> bytes:
    """Raw bytes of a float column with NaN and signed-zero canonicalized."""
    canonical = array.astype(np.float64, copy=True)
    canonical += 0.0  # -0.0 -> +0.0
    nan_mask = np.isnan(canonical)
    if nan_mask.any():
        canonical[nan_mask] = np.nan  # one NaN bit pattern for all NaNs
    return canonical.tobytes()


def _cell_token(value: object) -> bytes:
    """Canonical byte token of one object-column cell for fingerprinting.

    Integral floats collapse onto their integer token so a cell compares the
    same way it hashes (``5 == 5.0``); NaN maps to a dedicated token.
    """
    if value is None:
        return b"N"
    if isinstance(value, Suppressed):
        return b"*"
    if isinstance(value, Interval):
        return f"I\x1f{_number_token(value.low)}\x1f{_number_token(value.high)}".encode()
    if isinstance(value, CategorySet):
        members = "\x1f".join(value.members)
        return f"C\x1f{value.label}\x1f{members}".encode("utf-8")
    if isinstance(value, (bool, np.bool_)):
        return b"b1" if value else b"b0"
    if isinstance(value, (int, float, np.integer, np.floating)):
        return b"n" + _number_token(value).encode("utf-8")
    if isinstance(value, str):
        return b"s" + value.encode("utf-8")
    return b"r" + repr(value).encode("utf-8")


def _number_token(value: object) -> str:
    """Canonical text of a number: equal values (int or float) share one token.

    Integers tokenize exactly; an integral float tokenizes as the integer it
    exactly equals (floats are exact rationals, so ``int(number)`` is exact at
    any magnitude); non-integral floats use their shortest round-trip repr.
    """
    if isinstance(value, (int, np.integer)) and not isinstance(value, bool):
        return str(int(value))
    number = float(value)  # type: ignore[arg-type]
    if math.isnan(number):
        return "nan"
    if math.isinf(number):
        return "inf" if number > 0 else "-inf"
    if number.is_integer():
        return str(int(number))
    return repr(number)


def _float_exactly_represents(value: object) -> bool:
    """Whether ``float(value)`` preserves the numeric value exactly."""
    if isinstance(value, (float, np.floating)):
        return True
    try:
        return int(float(int(value))) == int(value)  # type: ignore[arg-type]
    except OverflowError:
        return False


def _column_digest(array: np.ndarray) -> bytes:
    """Content digest of one storage array, independent of its dtype.

    Integer columns whose values survive the ``float64`` round trip hash via
    the same canonical float buffer as float columns (so ``[1, 2]`` and
    ``[1.0, 2.0]`` collide on purpose, exactly as they compare equal);
    everything else hashes per-cell canonical tokens.
    """
    hasher = hashlib.sha256()
    kind = array.dtype.kind
    if array.shape[0] == 0:
        # Empty columns digest identically whatever their storage dtype
        # (the constructor stores them as object, gathers keep them typed).
        hasher.update(b"empty")
    elif kind == "f":
        hasher.update(b"num")
        hasher.update(_canonical_float_bytes(array))
    elif kind in "iu":
        # |v| <= 2**53 is always float64-exact (the vectorized common case);
        # larger magnitudes are verified per value through exact Python ints —
        # a float64->int64 round-trip cast would hit undefined overflow near
        # the int64 boundary and emit RuntimeWarnings.
        in_safe_range = bool(
            ((array >= -(2**53)) & (array <= 2**53)).all()
        )
        if in_safe_range or all(_float_exactly_represents(v) for v in array.tolist()):
            hasher.update(b"num")
            hasher.update(array.astype(np.float64).tobytes())
        else:  # integers float64 cannot represent: exact per-value tokens
            hasher.update(b"obj")
            for value in array.tolist():
                token = _cell_token(value)
                hasher.update(len(token).to_bytes(4, "big"))
                hasher.update(token)
    else:
        values = list(array)
        if values and all(
            isinstance(v, (int, float, np.integer, np.floating))
            and not isinstance(v, (bool, np.bool_))
            and _float_exactly_represents(v)
            for v in values
        ):
            # Plain-number object columns (e.g. ungeneralized release cells)
            # hash exactly like their typed int64/float64 counterparts; the
            # exact-representation test mirrors the int64 branch above, so the
            # float-buffer/token decision depends only on the values.
            hasher.update(b"num")
            hasher.update(
                _canonical_float_bytes(np.array([float(v) for v in values], dtype=np.float64))
            )
        else:
            hasher.update(b"obj")
            for value in values:
                token = _cell_token(value)
                hasher.update(len(token).to_bytes(4, "big"))
                hasher.update(token)
    return hasher.digest()


def _numeric_view_of_objects(array: np.ndarray) -> np.ndarray:
    """Float view of an object column via :func:`numeric_representative`.

    Release columns repeat the same generalized cell object across every row
    of an equivalence class, so the representative of each *distinct object*
    is computed once and fanned out by identity.
    """
    out = np.empty(array.shape[0], dtype=np.float64)
    memo: dict[int, float] = {}
    for i, value in enumerate(array):
        key = id(value)
        representative = memo.get(key)
        if representative is None:
            representative = numeric_representative(value)
            memo[key] = representative
        out[i] = representative
    return out
