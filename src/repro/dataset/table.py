"""Column-oriented in-memory table, the substrate every subsystem operates on.

The reproduction does not depend on pandas; instead this module provides a
small, well-tested, column-oriented :class:`Table` with exactly the operations
the paper's pipeline needs:

* schema-aware construction (identifier / quasi-identifier / sensitive roles);
* row and column access, projection, row selection, joins on a key column;
* extraction of the numeric quasi-identifier block as a ``numpy`` matrix
  (generalized cells are resolved to their numeric representative — interval
  midpoints — which is exactly the information an adversary has);
* derivation of the *enterprise release* (keep identifiers, generalize
  quasi-identifiers, drop the sensitive column).

Tables are value-semantics objects: every operation returns a new table, and
columns handed to the constructor are copied.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.dataset.generalization import numeric_representative, value_to_text
from repro.dataset.schema import Attribute, AttributeKind, AttributeRole, Schema
from repro.exceptions import SchemaError, TableError

__all__ = ["Table"]


class Table:
    """An immutable, schema-aware, column-oriented table.

    Parameters
    ----------
    schema:
        The :class:`~repro.dataset.schema.Schema` describing the columns.
    columns:
        Mapping of column name to a sequence of values.  Every schema
        attribute must be present and all columns must share the same length.
    """

    def __init__(self, schema: Schema, columns: Mapping[str, Sequence[object]]) -> None:
        self._schema = schema
        missing = [name for name in schema.names if name not in columns]
        if missing:
            raise TableError(f"missing columns for schema attributes: {missing}")
        extra = [name for name in columns if name not in schema]
        if extra:
            raise TableError(f"columns not declared in schema: {extra}")

        lengths = {name: len(columns[name]) for name in schema.names}
        if len(set(lengths.values())) > 1:
            raise TableError(f"columns have inconsistent lengths: {lengths}")

        self._columns: dict[str, list[object]] = {
            name: list(columns[name]) for name in schema.names
        }
        self._num_rows = next(iter(lengths.values())) if lengths else 0

    # Construction helpers ------------------------------------------------------

    @classmethod
    def from_rows(cls, schema: Schema, rows: Iterable[Sequence[object] | Mapping[str, object]]) -> "Table":
        """Build a table from an iterable of rows (sequences or mappings)."""
        columns: dict[str, list[object]] = {name: [] for name in schema.names}
        for row in rows:
            if isinstance(row, Mapping):
                for name in schema.names:
                    if name not in row:
                        raise TableError(f"row is missing column {name!r}: {row!r}")
                    columns[name].append(row[name])
            else:
                values = list(row)
                if len(values) != len(schema.names):
                    raise TableError(
                        f"row has {len(values)} values, schema has {len(schema.names)} columns"
                    )
                for name, value in zip(schema.names, values):
                    columns[name].append(value)
        return cls(schema, columns)

    @classmethod
    def from_records(cls, schema: Schema, records: Iterable[Mapping[str, object]]) -> "Table":
        """Alias of :meth:`from_rows` restricted to mapping rows."""
        return cls.from_rows(schema, records)

    # Basic protocol ------------------------------------------------------------

    @property
    def schema(self) -> Schema:
        """The table schema."""
        return self._schema

    @property
    def num_rows(self) -> int:
        """Number of rows."""
        return self._num_rows

    @property
    def num_columns(self) -> int:
        """Number of columns."""
        return len(self._schema)

    def __len__(self) -> int:
        return self._num_rows

    def __iter__(self) -> Iterator[dict[str, object]]:
        return iter(self.rows())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        return self._schema.names == other._schema.names and self._columns == other._columns

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Table(rows={self.num_rows}, columns={list(self._schema.names)})"

    # Access ---------------------------------------------------------------------

    def column(self, name: str) -> list[object]:
        """A copy of the values of column ``name``."""
        if name not in self._columns:
            raise TableError(f"unknown column: {name!r}")
        return list(self._columns[name])

    def numeric_column(self, name: str) -> np.ndarray:
        """Column ``name`` as a float array, resolving generalized cells.

        Intervals map to their midpoints; suppressed / categorical cells map
        to ``nan``.
        """
        return np.array([numeric_representative(v) for v in self.column(name)], dtype=float)

    def row(self, index: int) -> dict[str, object]:
        """Row ``index`` as a ``{column: value}`` dict."""
        if not 0 <= index < self._num_rows:
            raise TableError(f"row index {index} out of range [0, {self._num_rows})")
        return {name: self._columns[name][index] for name in self._schema.names}

    def rows(self) -> list[dict[str, object]]:
        """All rows as dicts (in row order)."""
        return [self.row(i) for i in range(self._num_rows)]

    def cell(self, index: int, name: str) -> object:
        """The single cell at (``index``, ``name``)."""
        if name not in self._columns:
            raise TableError(f"unknown column: {name!r}")
        if not 0 <= index < self._num_rows:
            raise TableError(f"row index {index} out of range [0, {self._num_rows})")
        return self._columns[name][index]

    # Relational operations --------------------------------------------------------

    def project(self, names: Sequence[str]) -> "Table":
        """Keep only the columns in ``names`` (schema roles are preserved)."""
        schema = self._schema.project(names)
        return Table(schema, {name: self._columns[name] for name in names})

    def drop_columns(self, names: Sequence[str]) -> "Table":
        """Drop the columns in ``names``."""
        schema = self._schema.drop(names)
        return Table(schema, {name: self._columns[name] for name in schema.names})

    def select(self, predicate: Callable[[dict[str, object]], bool]) -> "Table":
        """Rows for which ``predicate(row_dict)`` is truthy."""
        keep = [i for i in range(self._num_rows) if predicate(self.row(i))]
        return self.take(keep)

    def take(self, indices: Sequence[int]) -> "Table":
        """Rows at ``indices`` in the given order."""
        for i in indices:
            if not 0 <= i < self._num_rows:
                raise TableError(f"row index {i} out of range [0, {self._num_rows})")
        columns = {
            name: [self._columns[name][i] for i in indices] for name in self._schema.names
        }
        return Table(self._schema, columns)

    def sort_by(self, name: str, reverse: bool = False) -> "Table":
        """Rows sorted by column ``name``."""
        column = self.column(name)
        order = sorted(range(self._num_rows), key=lambda i: column[i], reverse=reverse)
        return self.take(order)

    def with_column(self, attribute: Attribute, values: Sequence[object]) -> "Table":
        """A new table with an extra column appended."""
        if attribute.name in self._schema:
            raise TableError(f"column {attribute.name!r} already exists")
        if len(values) != self._num_rows:
            raise TableError(
                f"new column has {len(values)} values, table has {self._num_rows} rows"
            )
        schema = Schema(list(self._schema.attributes) + [attribute])
        columns = dict(self._columns)
        columns[attribute.name] = list(values)
        return Table(schema, columns)

    def replace_column(self, name: str, values: Sequence[object]) -> "Table":
        """A new table with column ``name`` replaced by ``values``."""
        if name not in self._schema:
            raise TableError(f"unknown column: {name!r}")
        if len(values) != self._num_rows:
            raise TableError(
                f"replacement column has {len(values)} values, table has {self._num_rows} rows"
            )
        columns = dict(self._columns)
        columns[name] = list(values)
        return Table(self._schema, columns)

    def rename(self, mapping: Mapping[str, str]) -> "Table":
        """A new table with columns renamed according to ``mapping``."""
        attributes = []
        columns: dict[str, list[object]] = {}
        for attribute in self._schema.attributes:
            new_name = mapping.get(attribute.name, attribute.name)
            attributes.append(
                Attribute(new_name, attribute.role, attribute.kind, attribute.description)
            )
            columns[new_name] = self._columns[attribute.name]
        return Table(Schema(attributes), columns)

    def join(self, other: "Table", on: str, how: str = "inner") -> "Table":
        """Join two tables on equality of column ``on``.

        Only ``inner`` and ``left`` joins are supported; the right table must
        have unique join keys (this is how the adversary attaches auxiliary web
        attributes to release records).  Missing right-side values in a left
        join are ``None``.
        """
        if how not in ("inner", "left"):
            raise TableError(f"unsupported join type: {how!r}")
        if on not in self._schema or on not in other._schema:
            raise TableError(f"join column {on!r} must exist in both tables")

        right_keys = other.column(on)
        if len(set(right_keys)) != len(right_keys):
            raise TableError(f"right table join keys on {on!r} are not unique")
        right_index = {key: i for i, key in enumerate(right_keys)}

        right_only = [a for a in other._schema.attributes if a.name != on]
        clashing = [a.name for a in right_only if a.name in self._schema]
        if clashing:
            raise TableError(f"join would duplicate columns: {clashing}")

        joined_schema = Schema(list(self._schema.attributes) + right_only)
        columns: dict[str, list[object]] = {name: [] for name in joined_schema.names}
        for i in range(self._num_rows):
            key = self._columns[on][i]
            if key not in right_index and how == "inner":
                continue
            for name in self._schema.names:
                columns[name].append(self._columns[name][i])
            if key in right_index:
                j = right_index[key]
                for attribute in right_only:
                    columns[attribute.name].append(other._columns[attribute.name][j])
            else:
                for attribute in right_only:
                    columns[attribute.name].append(None)
        return Table(joined_schema, columns)

    def concat(self, other: "Table") -> "Table":
        """Vertical concatenation of two tables with identical schemas."""
        if self._schema.names != other._schema.names:
            raise TableError("cannot concatenate tables with different schemas")
        columns = {
            name: self._columns[name] + other._columns[name] for name in self._schema.names
        }
        return Table(self._schema, columns)

    def numeric_columns(self, names: Sequence[str]) -> dict[str, np.ndarray]:
        """Several columns as ``(rows,)`` float arrays, resolving generalized cells.

        This is the column-wise access path of the batch fusion engine: the
        attack assembles its inputs directly from these arrays (NaN marking
        suppressed / non-numeric cells) instead of iterating per-record dicts.
        """
        return {name: self.numeric_column(name) for name in names}

    # Privacy-specific views --------------------------------------------------------

    def quasi_identifier_matrix(self) -> np.ndarray:
        """The numeric quasi-identifier block as a ``(rows, qi)`` float matrix.

        Categorical quasi-identifiers are excluded; generalized numeric cells
        resolve to interval midpoints (``nan`` when suppressed).
        """
        names = self._schema.numeric_quasi_identifiers
        if not names:
            raise SchemaError("table has no numeric quasi-identifier columns")
        return np.column_stack([self.numeric_column(name) for name in names])

    def sensitive_vector(self) -> np.ndarray:
        """The (single) sensitive column as a float vector."""
        return self.numeric_column(self._schema.sensitive_attribute)

    def identifier_column(self) -> list[object]:
        """The first identifier column (the 'Name' column of the paper)."""
        identifiers = self._schema.identifiers
        if not identifiers:
            raise SchemaError("table has no identifier column")
        return self.column(identifiers[0])

    def release_view(self, keep_sensitive: bool = False) -> "Table":
        """The enterprise-release view: identifiers + quasi-identifiers.

        The sensitive column is dropped unless ``keep_sensitive`` is set.  Note
        this does **not** anonymize the quasi-identifiers; anonymizers in
        :mod:`repro.anonymize` produce generalized releases from this view.
        """
        schema = self._schema.release_schema(keep_sensitive=keep_sensitive)
        return self.project(list(schema.names))

    # Rendering -----------------------------------------------------------------------

    def to_text(self, max_rows: int | None = 20) -> str:
        """ASCII rendering of the table (used by the experiment harness)."""
        names = list(self._schema.names)
        limit = self._num_rows if max_rows is None else min(max_rows, self._num_rows)
        rendered_rows = [
            [value_to_text(self._columns[name][i]) for name in names] for i in range(limit)
        ]
        widths = [
            max(len(name), *(len(row[j]) for row in rendered_rows)) if rendered_rows else len(name)
            for j, name in enumerate(names)
        ]
        header = " | ".join(name.ljust(widths[j]) for j, name in enumerate(names))
        separator = "-+-".join("-" * w for w in widths)
        lines = [header, separator]
        for row in rendered_rows:
            lines.append(" | ".join(cell.ljust(widths[j]) for j, cell in enumerate(row)))
        if limit < self._num_rows:
            lines.append(f"... ({self._num_rows - limit} more rows)")
        return "\n".join(lines)

    def to_records(self) -> list[dict[str, object]]:
        """All rows as dicts; alias of :meth:`rows` for IO symmetry."""
        return self.rows()
