"""CSV / JSONL persistence for :class:`~repro.dataset.table.Table`.

Two formats round-trip a table with its schema:

* **CSV** — ordinary CSV with a two-line header: the first line holds the
  column names, the second line holds ``role:kind`` declarations so that a
  round-tripped file reconstructs the same schema.  Generalized cells are
  rendered with the paper's textual syntax (``[5-10]``, ``*``) and parsed
  back.
* **JSONL** — one JSON object per line, preceded by a schema line
  (``{"schema": [...]}``).  Generalized cells are tagged objects
  (``{"interval": [low, high]}``, ``{"categories": [...]}``,
  ``{"suppressed": true}``), so text cells that happen to look like
  generalized syntax survive unambiguously.

Streaming ingest
----------------
Both readers are built on *streaming* parsers (:func:`stream_csv`,
:func:`stream_jsonl`) that consume any iterable of text lines — a file
handle, an HTTP request body decoded chunk by chunk — and assemble the table
in fixed-size column chunks (``chunk_rows`` at a time, each chunk coerced to
its typed array and concatenated at the end).  Registration in the
anonymization service feeds these parsers directly from the socket, so a
dataset larger than any single request buffer never has to exist as one
Python string.  ``read_csv(path)`` / ``read_jsonl(path)`` are thin wrappers
over the same code path, which is what makes the chunked and in-memory
results identical by construction (and property-tested to stay that way).

Chunked NumPy fast path
-----------------------
Numeric-heavy CSVs dominate ingest, and for them the per-cell machinery —
``csv.reader`` tokenization plus up to three regex probes and a ``float()``
call per cell — is pure overhead.  :func:`stream_csv` therefore parses
quote-free lines on a *fast path* that never touches lines individually:
each ``chunk_rows`` block is one joined string, the whole cell grid comes
from a single ``replace`` + ``split(",")`` pass over it, and every column is
a strided slice of the flat cell list.  A numeric column chunk that passes a
charclass + dot-position scan (or fullmatches the full number grammar) is
converted with one vectorized ``float64`` parse (then narrowed to ``int64``
exactly when the line-by-line parser would have produced integers); a text
column chunk that fullmatches the plain-text grammar is kept verbatim; and
only chunks with special cells (empty, ``*``, intervals, category sets,
padding) fall back to per-cell :func:`parse_cell`.  The first quote
character seen hands everything not yet parsed to the historical
``csv.reader`` path, so quoted delimiters and quoted embedded newlines
behave exactly as before, and blocks the flat view cannot represent (bare
``\r`` endings, unterminated lines, blank interior lines, ragged rows) take
the historical per-line split.  The two paths are property-tested
equivalent (``fast=False`` forces the line-by-line parser).
"""

from __future__ import annotations

import csv
import io as _io
import json
import math
import re
from itertools import chain, islice, repeat
from pathlib import Path
from typing import Iterable, Iterator, Mapping

import numpy as np

from repro.dataset.generalization import SUPPRESSED, CategorySet, Interval, Suppressed
from repro.dataset.schema import Attribute, AttributeKind, AttributeRole, Schema
from repro.dataset.table import Table, _as_column_array
from repro.exceptions import TableError

__all__ = [
    "write_csv",
    "read_csv",
    "append_csv",
    "render_csv",
    "stream_csv",
    "write_jsonl",
    "read_jsonl",
    "render_jsonl",
    "stream_jsonl",
    "parse_cell",
    "render_cell",
]

_INTERVAL_RE = re.compile(r"^\[(?P<low>-?\d+(?:\.\d+)?)-(?P<high>-?\d+(?:\.\d+)?)\]$")
_CATEGORY_RE = re.compile(r"^\{(?P<members>.+)\}$")
_NUMBER_RE = re.compile(r"^-?\d+(?:\.\d+)?(?:[eE][+-]?\d+)?$")

#: One cell the numeric fast path may hand to ``astype(float64)`` verbatim:
#: exactly the grammar :data:`_NUMBER_RE` accepts, plus the lowercase special
#: floats :func:`render_cell` emits.  Anything else (empty cells, ``*``,
#: intervals, padding spaces, ``+5``-style text) falls back to
#: :func:`parse_cell`, which NumPy's parser would otherwise treat differently.
_FAST_NUMBER = r"-?\d+(?:\.\d+)?(?:[eE][+-]?\d+)?|nan|inf|-inf"
_FAST_NUMERIC_COLUMN_RE = re.compile(rf"(?:{_FAST_NUMBER})(?:\n(?:{_FAST_NUMBER}))*")

#: Characters of a *plain decimal* column chunk: digits, sign, dot and the
#: cell separator.  Within this charset, the only strings NumPy's float
#: parser accepts but :data:`_NUMBER_RE` rejects are leading/trailing-dot
#: forms (``.5``, ``5.``, ``-.5``), so a chunk passing the charclass scan and
#: :func:`_plain_decimal_column`'s dot checks can skip the full grammar regex
#: — NumPy's own ``ValueError`` rejects everything else (``1-2``, ``1.2.3``,
#: empty cells), which then re-parses cell by cell.
_FAST_PLAIN_CHARS_RE = re.compile(r"[0-9.\-\n]+")

#: One text cell the fast path may keep verbatim: non-empty, no leading or
#: trailing whitespace, and not opening with generalized syntax — exactly the
#: cells :func:`parse_cell` returns stripped-and-unchanged.  A column chunk
#: whose joined cells fullmatch this grammar needs no per-cell work at all.
_FAST_TEXT_CELL = r"[^\s*\[{](?:[^\n]*[^\s\n])?"
_FAST_TEXT_COLUMN_RE = re.compile(rf"(?:{_FAST_TEXT_CELL})(?:\n(?:{_FAST_TEXT_CELL}))*")

#: Largest float64 magnitude the fast path narrows to ``int64`` (all integral
#: float64 values below it convert exactly).
_INT64_LIMIT = float(2**63)

#: Rows accumulated per column chunk before coercion to a typed array.
DEFAULT_CHUNK_ROWS = 4096


def render_cell(value: object) -> str:
    """Render a single cell to its CSV text form."""
    if value is None:
        return ""
    if isinstance(value, float):
        if math.isnan(value):
            return "nan"
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        if value.is_integer():
            return str(int(value))
    return str(value)


def parse_cell(text: str, kind: AttributeKind) -> object:
    """Parse a CSV cell back into a Python value or generalized cell."""
    text = text.strip()
    if text == "":
        return None
    if text == "*":
        return SUPPRESSED
    interval_match = _INTERVAL_RE.match(text)
    if interval_match:
        return Interval(float(interval_match.group("low")), float(interval_match.group("high")))
    category_match = _CATEGORY_RE.match(text)
    if category_match:
        members = [m.strip() for m in category_match.group("members").split(",")]
        return CategorySet(members)
    if kind is AttributeKind.NUMERIC:
        if _NUMBER_RE.match(text):
            value = float(text)
            return int(value) if value.is_integer() else value
        lowered = text.lower()
        if lowered == "nan":
            return float("nan")
        if lowered in ("inf", "+inf", "infinity", "+infinity"):
            return float("inf")
        if lowered in ("-inf", "-infinity"):
            return float("-inf")
    return text


# --------------------------------------------------------------------------
# Shared schema-header handling and chunked column assembly.
# --------------------------------------------------------------------------


def _schema_from_declarations(
    names: list[str], declarations: list[str], source: str
) -> Schema:
    if len(declarations) != len(names):
        raise TableError(
            f"CSV header mismatch in {source}: {len(names)} names, "
            f"{len(declarations)} declarations"
        )
    attributes = []
    for name, declaration in zip(names, declarations):
        try:
            role_text, kind_text = declaration.split(":")
            attributes.append(
                Attribute(name, AttributeRole(role_text), AttributeKind(kind_text))
            )
        except ValueError as exc:
            raise TableError(
                f"invalid role:kind declaration {declaration!r} for column {name!r}"
            ) from exc
    return Schema(attributes)


class _ChunkedColumns:
    """Assemble columns from streamed rows, ``chunk_rows`` rows at a time.

    Each full chunk is coerced to its typed storage array immediately, so the
    per-cell Python values of a large ingest are released as parsing
    proceeds; :meth:`finish` concatenates the typed chunks (or falls back to
    an object rebuild when chunk dtypes disagree, which reproduces exactly
    what a single whole-column coercion would have produced).
    """

    def __init__(self, names: list[str], chunk_rows: int) -> None:
        if chunk_rows < 1:
            raise TableError(f"chunk_rows must be >= 1, got {chunk_rows}")
        self._names = names
        self._chunk_rows = chunk_rows
        self._pending: dict[str, list[object]] = {name: [] for name in names}
        self._chunks: dict[str, list[np.ndarray]] = {name: [] for name in names}
        self._pending_rows = 0

    def append_row(self, values: Iterable[object]) -> None:
        for name, value in zip(self._names, values):
            self._pending[name].append(value)
        self._pending_rows += 1
        if self._pending_rows >= self._chunk_rows:
            self._flush()

    def _flush(self) -> None:
        if not self._pending_rows:
            return
        for name in self._names:
            self._chunks[name].append(_as_column_array(self._pending[name]))
            self._pending[name] = []
        self._pending_rows = 0

    def append_chunk(self, arrays: Mapping[str, np.ndarray]) -> None:
        """Append one pre-parsed typed chunk (one equal-length array per column).

        This is the fast-path entry: a whole block of rows arrives as typed
        arrays, bypassing the per-row pending buffer.  Any rows still pending
        are flushed first so row order is preserved when fast and slow chunks
        interleave (e.g. a quoted region in the middle of a numeric file).
        """
        self._flush()
        for name in self._names:
            self._chunks[name].append(arrays[name])

    def finish(self, schema: Schema) -> Table:
        self._flush()
        arrays: dict[str, np.ndarray] = {}
        num_rows = 0
        for name in self._names:
            chunks = self._chunks[name]
            if not chunks:
                array = _as_column_array([])
            elif len(chunks) == 1:
                array = chunks[0]
            elif all(chunk.dtype.kind in "iuf" for chunk in chunks):
                array = np.concatenate(chunks)
            else:
                values: list[object] = []
                for chunk in chunks:
                    values.extend(
                        chunk.tolist() if chunk.dtype != object else list(chunk)
                    )
                array = _as_column_array(values)
            arrays[name] = array
            num_rows = array.shape[0]
        return Table._from_arrays(schema, arrays, num_rows)


# --------------------------------------------------------------------------
# CSV.
# --------------------------------------------------------------------------


def _write_csv_to(handle, table: Table) -> None:
    """Stream ``table`` as CSV rows into an open text handle.

    This is the row-by-row ``csv.writer`` reference renderer; the columnar
    :func:`render_csv` is property-tested byte-identical to it.
    """
    writer = csv.writer(handle)
    writer.writerow(table.schema.names)
    writer.writerow(
        [f"{attr.role.value}:{attr.kind.value}" for attr in table.schema.attributes]
    )
    for row in table.rows():
        writer.writerow([render_cell(row[name]) for name in table.schema.names])


def _render_csv_reference(table: Table) -> str:
    """The historical row-by-row rendering (kept as the property-test oracle)."""
    buffer = _io.StringIO()
    _write_csv_to(buffer, table)
    return buffer.getvalue()


def _quote_cells(cells: list[str]) -> list[str]:
    """Apply ``csv.writer``'s QUOTE_MINIMAL quoting to a column of cells.

    One disjoint-membership scan over the joined column proves the common
    case — no delimiter, quote or line-break anywhere — and returns the
    cells untouched; only columns actually containing special characters pay
    the per-cell pass.
    """
    probe = "\x00".join(cells)
    if (
        '"' not in probe
        and "," not in probe
        and "\r" not in probe
        and "\n" not in probe
    ):
        return cells
    quoted = []
    for cell in cells:
        if '"' in cell:
            quoted.append('"' + cell.replace('"', '""') + '"')
        elif "," in cell or "\r" in cell or "\n" in cell:
            quoted.append('"' + cell + '"')
        else:
            quoted.append(cell)
    return quoted


def _format_int_column(array: np.ndarray) -> list[str]:
    # One vectorized cast: the ``U21`` strings of an int64 array are exactly
    # ``str(value)`` for every representable value.
    return array.astype("U21").tolist()


def _format_float_column(array: np.ndarray) -> list[str]:
    """Format a float64 column with :func:`render_cell` semantics.

    Integral values (including whole-number floats beyond int64, which
    ``str(int(v))`` expands rather than showing ``1e+30``) render as
    integers; non-finite values use the fixed ``nan``/``inf`` spellings;
    everything else is the shortest-repr ``str(value)``.
    """
    finite = np.isfinite(array)
    integral = finite & (array == np.floor(array))
    if integral.all():
        if (np.abs(array) < _INT64_LIMIT).all():
            return array.astype(np.int64).astype("U21").tolist()
    elif finite.all() and not integral.any():
        return [str(value) for value in array.tolist()]
    values = array.tolist()
    flags = integral.tolist()
    cells = []
    for value, is_integral in zip(values, flags):
        if is_integral:
            cells.append(str(int(value)))
        elif value == value and not math.isinf(value):
            cells.append(str(value))
        elif value != value:
            cells.append("nan")
        else:
            cells.append("inf" if value > 0 else "-inf")
    return cells


def _format_object_column(array: np.ndarray) -> list[str]:
    """Render an object column per cell, memoizing repeated cell objects.

    Generalized release columns repeat one :class:`Interval` /
    :class:`CategorySet` object per equivalence class, so the memo (keyed by
    object identity — every cell is kept alive by the array during the pass)
    collapses a million renders into one per class.
    """
    if array.dtype != object:  # id-memoization needs stably-owned cell objects
        return [render_cell(value) for value in array.tolist()]
    memo: dict[int, str] = {}
    cells = []
    for value in array:
        if type(value) is str:
            cells.append(value)
            continue
        rendered = memo.get(id(value))
        if rendered is None:
            rendered = render_cell(value)
            memo[id(value)] = rendered
        cells.append(rendered)
    return cells


def render_csv(table: Table) -> str:
    """Render ``table`` to CSV text (exactly the bytes :func:`write_csv` writes).

    The anonymization service uses this to serve releases: rendering once and
    caching the text guarantees every client of a cached release receives
    byte-identical output.

    The rendering is **columnar**: each column formats in one vectorized (or
    memoized) pass, quoting is decided by one scan per column, and the body
    assembles with bulk ``str.join`` — byte-identical to the row-by-row
    ``csv.writer`` reference (property-tested), at a fraction of the object
    churn.
    """
    header = _io.StringIO()
    writer = csv.writer(header)
    writer.writerow(table.schema.names)
    writer.writerow(
        [f"{attr.role.value}:{attr.kind.value}" for attr in table.schema.attributes]
    )
    if table.num_rows == 0:
        return header.getvalue()
    columns: list[list[str]] = []
    for name in table.schema.names:
        array = table.column_array(name)
        if array.dtype.kind == "i":
            columns.append(_format_int_column(array))
        elif array.dtype.kind == "f":
            columns.append(_format_float_column(array))
        else:
            columns.append(_quote_cells(_format_object_column(array)))
    body = "\r\n".join(",".join(cells) for cells in zip(*columns))
    return header.getvalue() + body + "\r\n"


def write_csv(table: Table, path: str | Path) -> Path:
    """Write ``table`` to ``path`` and return the path (rows are streamed)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="", encoding="utf-8") as handle:
        _write_csv_to(handle, table)
    return path


def _read_csv_header(reader, source: str) -> tuple[list[str], list[str]]:
    """Consume the two header rows (names, role:kind declarations)."""
    try:
        names = next(reader)
        declarations = next(reader)
    except StopIteration as exc:
        raise TableError(
            f"CSV document {source} is missing its two header lines"
        ) from exc
    return names, declarations


def _parse_csv_rows(
    reader,
    columns: _ChunkedColumns,
    names: list[str],
    kinds: list[AttributeKind],
    source: str,
    line_offset: int = 0,
) -> None:
    """Consume a ``csv.reader`` into the column assembler (the slow path)."""
    for row in reader:
        if not row:  # blank line (e.g. the one implied by a trailing newline)
            continue
        if len(row) != len(names):
            raise TableError(
                f"line {reader.line_num + line_offset} of {source} has "
                f"{len(row)} cells, expected {len(names)}"
            )
        columns.append_row(
            parse_cell(cell, kind) for cell, kind in zip(row, kinds)
        )


def _plain_decimal_column(joined: str) -> bool:
    """True when the joined chunk is plain signed decimals, cheaply.

    A charclass fullmatch plus a handful of substring scans (every pass at C
    speed) replaces the full number-grammar regex for the overwhelmingly
    common chunk shape.  The dot checks reject exactly the NumPy-accepted,
    grammar-rejected forms: a dot must have a digit on both sides, i.e. it
    may not touch a cell boundary, a sign, or another dot.
    """
    if not _FAST_PLAIN_CHARS_RE.fullmatch(joined):
        return False
    if "." in joined:
        if joined[0] == "." or joined[-1] == ".":
            return False
        for bad in ("..", "-.", ".-", ".\n", "\n."):
            if bad in joined:
                return False
    return True


def _fast_parse_column(cells: list[str], kind: AttributeKind) -> np.ndarray:
    """Parse one column chunk, vectorizing the all-plain-content cases.

    The joined chunk must pass the plain-decimal scan or fullmatch the
    number grammar (numeric columns), or fullmatch the plain-text grammar
    (everything else), for the vectorized conversion to be trusted; any
    other content — empty cells, generalized syntax, padding, spellings
    NumPy and :func:`parse_cell` disagree on — re-parses the chunk cell by
    cell, which is exactly the line-by-line path.
    """
    if kind is AttributeKind.NUMERIC:
        joined = "\n".join(cells)
        values = None
        if _plain_decimal_column(joined):
            try:
                values = np.asarray(cells, dtype=np.float64)
            except ValueError:
                # NumPy is the arbiter of structure the scans don't check
                # ("1-2", "1.2.3", empty cells): re-parse cell by cell.
                values = None
        elif _FAST_NUMERIC_COLUMN_RE.fullmatch(joined):
            values = np.asarray(cells, dtype=np.float64)
        if values is not None:
            if bool(np.isfinite(values).all()) and bool(
                (values == np.floor(values)).all()
            ):
                # parse_cell returns ints for integral numbers ("5", "5.0",
                # "1e3"); mirror that as an int64 chunk whenever the
                # conversion is exact.  An all-integral chunk reaching past
                # int64 becomes an exact-python-int object column on the
                # line-by-line path, so re-parse it per cell to match dtypes.
                if bool((np.abs(values) < _INT64_LIMIT).all()):
                    return values.astype(np.int64)
            else:
                return values
        return _as_column_array([parse_cell(cell, kind) for cell in cells])
    # Non-numeric columns: an ordinary cell — non-empty once stripped, not
    # starting with generalized syntax — is its stripped text verbatim.  One
    # regex scan proves a chunk is all-ordinary (and already stripped), so
    # only chunks with a special minority pay the per-cell probes.
    if _FAST_TEXT_COLUMN_RE.fullmatch("\n".join(cells)):
        return _as_column_array(cells)
    parsed: list[object] = []
    for cell in cells:
        text = cell.strip()
        if text and text[0] not in "*[{":
            parsed.append(text)
        else:
            parsed.append(parse_cell(text, kind))
    return _as_column_array(parsed)


def _append_fast_chunk_rows(
    columns: _ChunkedColumns,
    chunk_lines: list[str],
    names: list[str],
    kinds: list[AttributeKind],
    source: str,
    start_line: int,
) -> None:
    """Split, transpose and parse a quote-free block line by line.

    This is the exact-error path: it tolerates blank lines, bare ``\\r``
    endings and lines without terminators, and reports the precise document
    line of a row with the wrong cell count.
    """
    expected = len(names)
    rows: list[list[str]] = []
    for offset, raw in enumerate(chunk_lines):
        text = raw.rstrip("\r\n")
        if not text:  # blank line (e.g. the one implied by a trailing newline)
            continue
        cells = text.split(",")
        if len(cells) != expected:
            raise TableError(
                f"line {start_line + offset} of {source} has {len(cells)} cells, "
                f"expected {expected}"
            )
        rows.append(cells)
    if not rows:
        return
    columns.append_chunk(
        {
            name: _fast_parse_column(list(column_cells), kind)
            for name, kind, column_cells in zip(names, kinds, zip(*rows))
        }
    )


def _append_fast_chunk(
    columns: _ChunkedColumns,
    chunk_lines: list[str],
    names: list[str],
    kinds: list[AttributeKind],
    source: str,
    start_line: int,
    block: str | None = None,
) -> None:
    """Split, transpose and parse one quote-free block of raw lines.

    The common case never touches the lines individually: the block is one
    joined string, the whole cell grid comes from a single ``replace`` +
    ``split(",")`` pass over it, and each column is a strided slice of the
    flat cell list.  Anything the flat view cannot represent bit-identically
    — a missing line terminator, a bare ``\\r`` ending, a blank interior
    line, a row with the wrong cell count — falls back to
    :func:`_append_fast_chunk_rows`, which also owns the exact error
    messages.
    """
    if not chunk_lines:
        return
    if block is None:
        block = "".join(chunk_lines)
    if not block.endswith("\n"):
        block += "\n"
    if "\r" in block:
        block = block.replace("\r\n", "\n")
    if (
        "\r" in block  # a bare \r ending survived CRLF normalization
        or block.count("\n") != len(chunk_lines)  # unterminated line mid-chunk
        or block.startswith("\n")  # blank first line
        or "\n\n" in block  # blank interior/trailing line
    ):
        _append_fast_chunk_rows(columns, chunk_lines, names, kinds, source, start_line)
        return
    body = block[:-1]
    expected = len(names)
    if expected == 1:
        if "," in body:  # some row has more than one cell: exact error path
            _append_fast_chunk_rows(
                columns, chunk_lines, names, kinds, source, start_line
            )
            return
        flat = body.split("\n")
    else:
        row_strings = body.split("\n")
        counts = set(map(str.count, row_strings, repeat(",")))
        if counts != {expected - 1}:
            _append_fast_chunk_rows(
                columns, chunk_lines, names, kinds, source, start_line
            )
            return
        flat = body.replace("\n", ",").split(",")
    columns.append_chunk(
        {
            name: _fast_parse_column(flat[index::expected], kind)
            for index, (name, kind) in enumerate(zip(names, kinds))
        }
    )


def stream_csv(
    lines: Iterable[str],
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
    source: str = "<stream>",
    fast: bool = True,
) -> Table:
    """Parse CSV text arriving as an iterable of lines into a table.

    ``lines`` may be a file handle (opened with ``newline=""``) or any
    iterator of decoded text lines — quoted delimiters and quoted embedded
    newlines are handled by the ``csv`` machinery even when a quoted field
    spans lines.  Rows are assembled in ``chunk_rows``-sized column chunks;
    the result is identical to parsing the whole document in memory.

    With ``fast`` set (the default), quote-free lines take the chunked NumPy
    fast path described in the module docstring; the first quote character
    hands the rest of the stream to the line-by-line parser.  ``fast=False``
    forces the line-by-line parser throughout — the two modes are equivalent
    by property test, so the flag only exists for benchmarking and pinning.

    Raises :class:`~repro.exceptions.TableError` for an empty document or a
    document whose two header lines are missing or inconsistent; a
    header-only document yields an empty (zero-row) table, and a trailing
    newline does not produce a phantom row.
    """
    iterator = iter(lines)
    if not fast:
        reader = csv.reader(iterator)
        names, declarations = _read_csv_header(reader, source)
        schema = _schema_from_declarations(names, declarations, source)
        kinds = [schema[name].kind for name in names]
        columns = _ChunkedColumns(list(names), chunk_rows)
        _parse_csv_rows(reader, columns, names, kinds, source)
        return columns.finish(schema)

    header_lines: list[str] = []
    for line in iterator:
        header_lines.append(line)
        if len(header_lines) == 2:
            break
    if any('"' in line for line in header_lines):
        # A quoted header cell may even span physical lines; restart the whole
        # parse on the csv machinery.
        return stream_csv(
            chain(header_lines, iterator), chunk_rows=chunk_rows, source=source,
            fast=False,
        )
    names, declarations = _read_csv_header(csv.reader(iter(header_lines)), source)
    schema = _schema_from_declarations(names, declarations, source)
    kinds = [schema[name].kind for name in names]
    columns = _ChunkedColumns(list(names), chunk_rows)

    chunk_start = 3  # 1-based line number of the first line in the chunk
    while True:
        chunk = list(islice(iterator, chunk_rows))
        if not chunk:
            break
        block = "".join(chunk)
        if '"' in block:
            # Quoted content (possibly spanning lines): parse the quote-free
            # prefix, then hand the rest — starting with the first quoted
            # line — to the csv machinery.
            quoted = next(
                index for index, line in enumerate(chunk) if '"' in line
            )
            _append_fast_chunk(
                columns, chunk[:quoted], names, kinds, source, chunk_start
            )
            _parse_csv_rows(
                csv.reader(chain(chunk[quoted:], iterator)),
                columns,
                names,
                kinds,
                source,
                line_offset=chunk_start + quoted - 1,
            )
            return columns.finish(schema)
        _append_fast_chunk(
            columns, chunk, names, kinds, source, chunk_start, block=block
        )
        chunk_start += len(chunk)
    return columns.finish(schema)


def read_csv(
    path: str | Path, chunk_rows: int = DEFAULT_CHUNK_ROWS, fast: bool = True
) -> Table:
    """Read a table previously written by :func:`write_csv`."""
    path = Path(path)
    with path.open("r", newline="", encoding="utf-8") as handle:
        return stream_csv(handle, chunk_rows=chunk_rows, source=str(path), fast=fast)


def append_csv(
    path: str | Path,
    table: Table,
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
    fast: bool = True,
) -> Table:
    """Append the delta rows of the CSV at ``path`` onto ``table``.

    The delta document carries the same two header lines as any other table
    CSV and must declare the same schema; its rows stream through the chunked
    NumPy fast path exactly like a cold ingest, so parsing cost is O(delta).
    The result is :meth:`Table.append` of the two tables — the fingerprint is
    the *chained* digest of the base and delta fingerprints, making the
    append identity O(delta) end to end.
    """
    delta = read_csv(path, chunk_rows=chunk_rows, fast=fast)
    return table.append(delta)


# --------------------------------------------------------------------------
# JSONL.
# --------------------------------------------------------------------------


def _cell_to_json(value: object) -> object:
    if isinstance(value, Interval):
        return {"interval": [value.low, value.high]}
    if isinstance(value, CategorySet):
        return {"categories": list(value.members), "label": value.label}
    if isinstance(value, Suppressed):
        return {"suppressed": True}
    return value


def _cell_from_json(value: object) -> object:
    if isinstance(value, dict):
        try:
            if "interval" in value:
                low, high = value["interval"]
                return Interval(float(low), float(high))
            if "categories" in value:
                return CategorySet(value["categories"], label=value.get("label", ""))
        except (TypeError, ValueError) as exc:
            raise TableError(f"malformed JSONL generalized cell {value!r}: {exc}") from exc
        if value.get("suppressed"):
            return SUPPRESSED
        raise TableError(f"unrecognized JSONL cell object: {value!r}")
    return value


def render_jsonl(table: Table) -> str:
    """Render ``table`` to JSONL text (schema line + one object per row)."""
    schema_line = json.dumps(
        {
            "schema": [
                {"name": a.name, "role": a.role.value, "kind": a.kind.value}
                for a in table.schema.attributes
            ]
        }
    )
    lines = [schema_line]
    names = table.schema.names
    for row in table.rows():
        lines.append(json.dumps({name: _cell_to_json(row[name]) for name in names}))
    return "\n".join(lines) + "\n"


def write_jsonl(table: Table, path: str | Path) -> Path:
    """Write ``table`` to ``path`` as JSONL and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_jsonl(table), encoding="utf-8")
    return path


def stream_jsonl(
    lines: Iterable[str],
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
    source: str = "<stream>",
) -> Table:
    """Parse JSONL text arriving as an iterable of lines into a table.

    The first non-blank line must be the ``{"schema": [...]}`` header; each
    following non-blank line is one row object.  Rows are assembled in
    ``chunk_rows``-sized column chunks, identically to :func:`stream_csv`.
    """
    iterator: Iterator[str] = iter(lines)
    header: dict | None = None
    for line in iterator:
        if line.strip():
            try:
                header = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TableError(f"invalid JSONL schema line in {source}: {exc}") from exc
            break
    if header is None:
        raise TableError(f"JSONL document {source} is missing its schema line")
    declared = header.get("schema")
    if not isinstance(declared, list) or not declared:
        raise TableError(f"JSONL schema line in {source} must hold a non-empty 'schema' list")
    try:
        schema = Schema(
            [
                Attribute(
                    entry["name"],
                    AttributeRole(entry.get("role", "quasi_identifier")),
                    AttributeKind(entry.get("kind", "numeric")),
                )
                for entry in declared
            ]
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise TableError(f"invalid JSONL schema declaration in {source}: {exc}") from exc

    names = list(schema.names)
    columns = _ChunkedColumns(names, chunk_rows)
    for line_number, line in enumerate(iterator, start=2):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TableError(f"invalid JSON on line {line_number} of {source}: {exc}") from exc
        if not isinstance(record, dict):
            raise TableError(f"line {line_number} of {source} is not a JSON object")
        missing = [name for name in names if name not in record]
        if missing:
            raise TableError(
                f"line {line_number} of {source} is missing columns {missing}"
            )
        columns.append_row(_cell_from_json(record[name]) for name in names)
    return columns.finish(schema)


def read_jsonl(path: str | Path, chunk_rows: int = DEFAULT_CHUNK_ROWS) -> Table:
    """Read a table previously written by :func:`write_jsonl`."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        return stream_jsonl(handle, chunk_rows=chunk_rows, source=str(path))
