"""CSV persistence for :class:`~repro.dataset.table.Table`.

The file format is ordinary CSV with a two-line header: the first line holds
the column names, the second line holds ``role:kind`` declarations so that a
round-tripped file reconstructs the same schema.  Generalized cells are
rendered with the paper's textual syntax (``[5-10]``, ``*``) and parsed back.
"""

from __future__ import annotations

import csv
import re
from pathlib import Path

from repro.dataset.generalization import SUPPRESSED, CategorySet, Interval
from repro.dataset.schema import Attribute, AttributeKind, AttributeRole, Schema
from repro.dataset.table import Table
from repro.exceptions import TableError

__all__ = ["write_csv", "read_csv", "parse_cell", "render_cell"]

_INTERVAL_RE = re.compile(r"^\[(?P<low>-?\d+(?:\.\d+)?)-(?P<high>-?\d+(?:\.\d+)?)\]$")
_CATEGORY_RE = re.compile(r"^\{(?P<members>.+)\}$")
_NUMBER_RE = re.compile(r"^-?\d+(?:\.\d+)?(?:[eE][+-]?\d+)?$")


def render_cell(value: object) -> str:
    """Render a single cell to its CSV text form."""
    if value is None:
        return ""
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


def parse_cell(text: str, kind: AttributeKind) -> object:
    """Parse a CSV cell back into a Python value or generalized cell."""
    text = text.strip()
    if text == "":
        return None
    if text == "*":
        return SUPPRESSED
    interval_match = _INTERVAL_RE.match(text)
    if interval_match:
        return Interval(float(interval_match.group("low")), float(interval_match.group("high")))
    category_match = _CATEGORY_RE.match(text)
    if category_match:
        members = [m.strip() for m in category_match.group("members").split(",")]
        return CategorySet(members)
    if kind is AttributeKind.NUMERIC and _NUMBER_RE.match(text):
        value = float(text)
        return int(value) if value.is_integer() else value
    return text


def write_csv(table: Table, path: str | Path) -> Path:
    """Write ``table`` to ``path`` and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(table.schema.names)
        writer.writerow(
            [f"{attr.role.value}:{attr.kind.value}" for attr in table.schema.attributes]
        )
        for row in table.rows():
            writer.writerow([render_cell(row[name]) for name in table.schema.names])
    return path


def read_csv(path: str | Path) -> Table:
    """Read a table previously written by :func:`write_csv`."""
    path = Path(path)
    with path.open("r", newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        try:
            names = next(reader)
            declarations = next(reader)
        except StopIteration as exc:
            raise TableError(f"CSV file {path} is missing its two header lines") from exc
        if len(declarations) != len(names):
            raise TableError(
                f"CSV header mismatch in {path}: {len(names)} names, {len(declarations)} declarations"
            )
        attributes = []
        for name, declaration in zip(names, declarations):
            try:
                role_text, kind_text = declaration.split(":")
                attributes.append(
                    Attribute(name, AttributeRole(role_text), AttributeKind(kind_text))
                )
            except ValueError as exc:
                raise TableError(
                    f"invalid role:kind declaration {declaration!r} for column {name!r}"
                ) from exc
        schema = Schema(attributes)
        rows: list[dict[str, object]] = []
        for line_number, row in enumerate(reader, start=3):
            if not row:
                continue
            if len(row) != len(names):
                raise TableError(
                    f"line {line_number} of {path} has {len(row)} cells, expected {len(names)}"
                )
            rows.append(
                {
                    name: parse_cell(cell, schema[name].kind)
                    for name, cell in zip(names, row)
                }
            )
    return Table.from_rows(schema, rows)
