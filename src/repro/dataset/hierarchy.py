"""Generalization hierarchies (value generalization taxonomies).

Full-domain generalization schemes in the k-anonymity literature (Samarati &
Sweeney; Datafly) generalize each quasi-identifier along a *domain
generalization hierarchy*: numeric attributes are binned into progressively
wider ranges, categorical attributes are rolled up a taxonomy tree, and the
top level of every hierarchy is total suppression (``*``).

Two hierarchy types are provided:

* :class:`NumericHierarchy` — level ``0`` is the exact value, level ``i`` bins
  the domain into intervals of width ``base_width * branching**(i-1)``, and the
  final level suppresses the value entirely.
* :class:`TaxonomyHierarchy` — an explicit tree over categorical values; level
  ``i`` maps a leaf to its ancestor ``i`` steps up (clamped at the root).

These hierarchies power the :class:`repro.anonymize.datafly.DataflyAnonymizer`
baseline; the paper's own experiments use microaggregation (MDAV), which does
not need hierarchies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.dataset.generalization import SUPPRESSED, CategorySet, Interval
from repro.exceptions import HierarchyError

__all__ = [
    "GeneralizationHierarchy",
    "NumericHierarchy",
    "TaxonomyHierarchy",
]


class GeneralizationHierarchy:
    """Interface of a per-attribute generalization hierarchy."""

    #: Number of generalization levels, including level 0 (exact value) and the
    #: top suppression level.
    levels: int

    def generalize(self, value: object, level: int) -> object:
        """Generalize ``value`` to ``level``.

        Level ``0`` returns the value unchanged; the maximum level returns
        :data:`~repro.dataset.generalization.SUPPRESSED`.
        """
        raise NotImplementedError

    def generalize_column(self, values: Sequence[object] | np.ndarray, level: int) -> np.ndarray:
        """Generalize a whole column to ``level``; returns an object array.

        The generic implementation memoizes :meth:`generalize` per distinct
        value, so equal cells share one generalized object; numeric
        hierarchies override this with a fully vectorized binning.
        """
        self._check_level(level)
        out = np.empty(len(values), dtype=object)
        memo: dict[object, object] = {}
        for i, value in enumerate(values):
            try:
                generalized = memo.get(value, _MISS)
            except TypeError:  # unhashable cell: generalize directly
                out[i] = self.generalize(value, level)
                continue
            if generalized is _MISS:
                generalized = self.generalize(value, level)
                memo[value] = generalized
            out[i] = generalized
        return out

    def _check_level(self, level: int) -> None:
        if not 0 <= level < self.levels:
            raise HierarchyError(
                f"generalization level {level} out of range [0, {self.levels - 1}]"
            )


_MISS = object()


@dataclass
class NumericHierarchy(GeneralizationHierarchy):
    """Interval-binning hierarchy for numeric attributes.

    Parameters
    ----------
    low, high:
        Domain bounds.  Values outside the domain are clamped into it before
        binning (real data occasionally exceeds the declared domain).
    base_width:
        Bin width at level 1.
    branching:
        Factor by which the bin width grows per additional level.
    levels:
        Total number of levels including level 0 (exact) and the top
        suppression level.  Must be at least 2.
    """

    low: float
    high: float
    base_width: float
    branching: int = 2
    levels: int = 5

    def __post_init__(self) -> None:
        if self.high <= self.low:
            raise HierarchyError("numeric hierarchy requires high > low")
        if self.base_width <= 0:
            raise HierarchyError("base_width must be positive")
        if self.branching < 2:
            raise HierarchyError("branching factor must be >= 2")
        if self.levels < 2:
            raise HierarchyError("a hierarchy needs at least 2 levels (exact + suppressed)")

    def width_at(self, level: int) -> float:
        """Bin width used at ``level`` (level >= 1)."""
        self._check_level(level)
        if level == 0:
            return 0.0
        return self.base_width * (self.branching ** (level - 1))

    def generalize(self, value: object, level: int) -> object:
        self._check_level(level)
        if level == 0:
            return value
        if level == self.levels - 1:
            return SUPPRESSED
        numeric = float(value)  # type: ignore[arg-type]
        numeric = min(max(numeric, self.low), self.high)
        width = self.width_at(level)
        bin_index = math.floor((numeric - self.low) / width)
        return self._bin_interval(bin_index, width)

    def _bin_interval(self, bin_index: int, width: float) -> Interval:
        """The interval of one bin (the top edge folds into the last bin)."""
        bin_low = self.low + bin_index * width
        bin_high = min(bin_low + width, self.high)
        if bin_low >= bin_high:  # value sits exactly on the top edge
            bin_low = max(self.low, self.high - width)
            bin_high = self.high
        return Interval(bin_low, bin_high)

    def generalize_column(self, values: Sequence[object] | np.ndarray, level: int) -> np.ndarray:
        """Vectorized binning of a whole numeric column.

        Bin indices are computed for every cell at once; one
        :class:`~repro.dataset.generalization.Interval` is built per occupied
        bin (with the same bounds the scalar :meth:`generalize` produces) and
        fanned out to its rows.  Non-numeric storage falls back to the
        memoized scalar path.
        """
        self._check_level(level)
        array = np.asarray(values)
        if array.dtype.kind not in "if":
            return super().generalize_column(array, level)
        if level == 0:
            out = np.empty(array.shape[0], dtype=object)
            out[:] = array.tolist()
            return out
        if level == self.levels - 1:
            return np.full(array.shape[0], SUPPRESSED, dtype=object)

        numeric = array.astype(float, copy=False)
        if np.isnan(numeric).any():
            raise HierarchyError("cannot generalize missing (NaN) numeric values")
        clipped = np.clip(numeric, self.low, self.high)
        width = self.width_at(level)
        bins = np.floor((clipped - self.low) / width).astype(np.int64)
        out = np.empty(array.shape[0], dtype=object)
        for bin_index in np.unique(bins):
            out[bins == bin_index] = self._bin_interval(int(bin_index), width)
        return out


@dataclass
class TaxonomyHierarchy(GeneralizationHierarchy):
    """Tree-based hierarchy for categorical attributes.

    The taxonomy is given as a ``child -> parent`` mapping; the (single) root
    is the value that never appears as a key or whose parent is itself.  Level
    ``i`` maps a value to its ancestor ``i`` steps up the tree; the maximum
    level suppresses the value.

    Generalized values are rendered as :class:`CategorySet` instances whose
    label is the ancestor's name and whose members are the leaves under it.
    """

    parents: Mapping[str, str]
    levels: int = 0
    _depths: dict[str, int] = field(init=False, default_factory=dict, repr=False)
    _leaves_under: dict[str, tuple[str, ...]] = field(init=False, default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if not self.parents:
            raise HierarchyError("taxonomy hierarchy requires a non-empty parent map")
        self._validate_acyclic()
        max_depth = max(self._depth(node) for node in self.parents)
        # levels: 0 = exact ... max_depth = root, +1 = suppressed
        if self.levels <= 0:
            self.levels = max_depth + 2
        self._index_leaves()

    # Internal helpers ---------------------------------------------------------

    def _validate_acyclic(self) -> None:
        for start in self.parents:
            seen = {start}
            node = start
            while node in self.parents and self.parents[node] != node:
                node = self.parents[node]
                if node in seen:
                    raise HierarchyError(f"taxonomy contains a cycle through {node!r}")
                seen.add(node)

    def _depth(self, node: str) -> int:
        depth = 0
        while node in self.parents and self.parents[node] != node:
            node = self.parents[node]
            depth += 1
        return depth

    def _ancestor(self, node: str, steps: int) -> str:
        for _ in range(steps):
            if node not in self.parents or self.parents[node] == node:
                break
            node = self.parents[node]
        return node

    def _index_leaves(self) -> None:
        children: dict[str, list[str]] = {}
        for child, parent in self.parents.items():
            children.setdefault(parent, []).append(child)
        all_nodes = set(self.parents) | set(self.parents.values())
        leaves = [n for n in all_nodes if n not in children]

        def leaves_under(node: str) -> tuple[str, ...]:
            if node in leaves:
                return (node,)
            collected: list[str] = []
            for child in children.get(node, []):
                collected.extend(leaves_under(child))
            return tuple(sorted(collected))

        for node in all_nodes:
            self._leaves_under[node] = leaves_under(node)

    # Public API ----------------------------------------------------------------

    def generalize(self, value: object, level: int) -> object:
        self._check_level(level)
        text = str(value)
        if level == 0:
            return value
        if level == self.levels - 1:
            return SUPPRESSED
        if text not in self.parents and text not in self._leaves_under:
            raise HierarchyError(f"value {text!r} is not part of the taxonomy")
        ancestor = self._ancestor(text, level)
        if ancestor == text:
            return value
        members: Sequence[str] = self._leaves_under.get(ancestor, (ancestor,))
        return CategorySet(members, label=ancestor)
