"""Schema definitions for enterprise databases.

The paper classifies the attributes of an individual-specific database into
three roles (Section I):

* **identifier** attributes carry explicit identifiers (Name, SSN, ...);
* **quasi-identifier** attributes could indirectly identify individuals
  (Age, Zipcode, performance-review scores, ...) and are the columns that
  partitioning-based anonymization generalizes;
* **sensitive** attributes carry the information whose disclosure must be
  prevented (Disease, Income, Salary, ...).

The key departure of the paper from prior work is that identifier attributes
are *kept* in the release (they are needed for the release to be useful inside
the enterprise), which is exactly what enables the web-based information-fusion
attack.  The :class:`Schema` class therefore models all three roles explicitly
instead of assuming identifiers were stripped.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from repro.exceptions import SchemaError

__all__ = [
    "AttributeRole",
    "AttributeKind",
    "Attribute",
    "Schema",
]


class AttributeRole(enum.Enum):
    """Privacy role of an attribute, following the paper's classification."""

    IDENTIFIER = "identifier"
    QUASI_IDENTIFIER = "quasi_identifier"
    SENSITIVE = "sensitive"
    #: Attributes that play no privacy role (bookkeeping columns, row ids).
    INSENSITIVE = "insensitive"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class AttributeKind(enum.Enum):
    """Value domain of an attribute."""

    NUMERIC = "numeric"
    CATEGORICAL = "categorical"
    TEXT = "text"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Attribute:
    """A single column declaration.

    Parameters
    ----------
    name:
        Column name, unique within a :class:`Schema`.
    role:
        Privacy role (identifier, quasi-identifier, sensitive, insensitive).
    kind:
        Value domain.  Quasi-identifiers may be numeric or categorical;
        identifiers are typically text; sensitive attributes in this paper are
        numeric (income / salary).
    description:
        Optional human-readable description used by report generators.
    """

    name: str
    role: AttributeRole
    kind: AttributeKind = AttributeKind.NUMERIC
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise SchemaError("attribute name must be a non-empty string")
        if not isinstance(self.role, AttributeRole):
            raise SchemaError(f"invalid role for attribute {self.name!r}: {self.role!r}")
        if not isinstance(self.kind, AttributeKind):
            raise SchemaError(f"invalid kind for attribute {self.name!r}: {self.kind!r}")

    # Convenience predicates -------------------------------------------------

    @property
    def is_identifier(self) -> bool:
        """Whether the attribute explicitly identifies an individual."""
        return self.role is AttributeRole.IDENTIFIER

    @property
    def is_quasi_identifier(self) -> bool:
        """Whether the attribute belongs to the quasi-identifier set."""
        return self.role is AttributeRole.QUASI_IDENTIFIER

    @property
    def is_sensitive(self) -> bool:
        """Whether the attribute is sensitive (to be protected)."""
        return self.role is AttributeRole.SENSITIVE

    @property
    def is_numeric(self) -> bool:
        """Whether values of the attribute live in a numeric domain."""
        return self.kind is AttributeKind.NUMERIC


def _normalize_attribute(spec: Attribute | tuple | dict) -> Attribute:
    """Coerce user-supplied attribute specifications into :class:`Attribute`."""
    if isinstance(spec, Attribute):
        return spec
    if isinstance(spec, dict):
        return Attribute(
            name=spec["name"],
            role=AttributeRole(spec.get("role", "quasi_identifier")),
            kind=AttributeKind(spec.get("kind", "numeric")),
            description=spec.get("description", ""),
        )
    if isinstance(spec, tuple):
        if len(spec) == 2:
            name, role = spec
            return Attribute(name=name, role=AttributeRole(role))
        if len(spec) == 3:
            name, role, kind = spec
            return Attribute(name=name, role=AttributeRole(role), kind=AttributeKind(kind))
    raise SchemaError(f"cannot interpret attribute specification: {spec!r}")


@dataclass(frozen=True)
class Schema:
    """An ordered collection of :class:`Attribute` declarations.

    The schema is immutable; derived schemas (projections, role changes) are
    produced by the ``project`` / ``with_roles`` methods, mirroring how the
    anonymizers derive release schemas from the private schema.

    Examples
    --------
    >>> schema = Schema([
    ...     Attribute("name", AttributeRole.IDENTIFIER, AttributeKind.TEXT),
    ...     Attribute("invst_vol", AttributeRole.QUASI_IDENTIFIER),
    ...     Attribute("income", AttributeRole.SENSITIVE),
    ... ])
    >>> schema.quasi_identifiers
    ('invst_vol',)
    >>> schema.sensitive_attribute
    'income'
    """

    attributes: tuple[Attribute, ...] = field(default_factory=tuple)

    def __init__(self, attributes: Iterable[Attribute | tuple | dict]) -> None:
        attrs = tuple(_normalize_attribute(a) for a in attributes)
        names = [a.name for a in attrs]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise SchemaError(f"duplicate attribute names in schema: {dupes}")
        object.__setattr__(self, "attributes", attrs)

    # Basic container protocol ------------------------------------------------

    def __len__(self) -> int:
        return len(self.attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self.attributes)

    def __contains__(self, name: object) -> bool:
        return any(a.name == name for a in self.attributes)

    def __getitem__(self, name: str) -> Attribute:
        for attribute in self.attributes:
            if attribute.name == name:
                return attribute
        raise SchemaError(f"unknown attribute: {name!r}")

    # Role-based views ---------------------------------------------------------

    @property
    def names(self) -> tuple[str, ...]:
        """All attribute names, in schema order."""
        return tuple(a.name for a in self.attributes)

    @property
    def identifiers(self) -> tuple[str, ...]:
        """Names of identifier attributes."""
        return tuple(a.name for a in self.attributes if a.is_identifier)

    @property
    def quasi_identifiers(self) -> tuple[str, ...]:
        """Names of quasi-identifier attributes."""
        return tuple(a.name for a in self.attributes if a.is_quasi_identifier)

    @property
    def sensitive_attributes(self) -> tuple[str, ...]:
        """Names of sensitive attributes."""
        return tuple(a.name for a in self.attributes if a.is_sensitive)

    @property
    def sensitive_attribute(self) -> str:
        """The single sensitive attribute.

        The paper's formulation estimates one sensitive column (personal
        income / salary); this accessor enforces that cardinality and raises
        :class:`~repro.exceptions.SchemaError` otherwise.
        """
        sensitive = self.sensitive_attributes
        if len(sensitive) != 1:
            raise SchemaError(
                f"expected exactly one sensitive attribute, found {len(sensitive)}: {sensitive}"
            )
        return sensitive[0]

    @property
    def numeric_quasi_identifiers(self) -> tuple[str, ...]:
        """Quasi-identifiers with a numeric domain (the MDAV-able columns)."""
        return tuple(
            a.name for a in self.attributes if a.is_quasi_identifier and a.is_numeric
        )

    @property
    def categorical_quasi_identifiers(self) -> tuple[str, ...]:
        """Quasi-identifiers with a categorical domain."""
        return tuple(
            a.name
            for a in self.attributes
            if a.is_quasi_identifier and a.kind is AttributeKind.CATEGORICAL
        )

    # Derivations --------------------------------------------------------------

    def project(self, names: Sequence[str]) -> "Schema":
        """Return a schema restricted to ``names``, preserving their order."""
        missing = [n for n in names if n not in self]
        if missing:
            raise SchemaError(f"cannot project unknown attributes: {missing}")
        return Schema([self[n] for n in names])

    def drop(self, names: Sequence[str]) -> "Schema":
        """Return a schema without the attributes in ``names``."""
        missing = [n for n in names if n not in self]
        if missing:
            raise SchemaError(f"cannot drop unknown attributes: {missing}")
        keep = [a for a in self.attributes if a.name not in set(names)]
        return Schema(keep)

    def with_role(self, name: str, role: AttributeRole) -> "Schema":
        """Return a schema identical to this one except for one attribute's role."""
        if name not in self:
            raise SchemaError(f"unknown attribute: {name!r}")
        replaced = [
            Attribute(a.name, role, a.kind, a.description) if a.name == name else a
            for a in self.attributes
        ]
        return Schema(replaced)

    def release_schema(self, keep_sensitive: bool = False) -> "Schema":
        """Schema of an enterprise release.

        The enterprise release keeps identifiers and quasi-identifiers; the
        sensitive column is dropped unless ``keep_sensitive`` is set (useful
        for constructing ground-truth tables in experiments).
        """
        if keep_sensitive:
            return self
        return self.drop(list(self.sensitive_attributes))

    def describe(self) -> str:
        """A human-readable, multi-line description of the schema."""
        lines = []
        for attribute in self.attributes:
            lines.append(
                f"{attribute.name:<20} role={attribute.role.value:<16} kind={attribute.kind.value}"
            )
        return "\n".join(lines)
