"""Per-column and per-table descriptive statistics.

These statistics back three pieces of the reproduction:

* the quantile-based fuzzy-set and rule induction of
  :mod:`repro.fusion.rulegen` (an adversary calibrates "Low/Medium/High"
  linguistic terms from the marginal distribution of each input);
* the normalization used by MDAV microaggregation (columns are standardized
  before distances are computed, as is standard in the microaggregation
  literature);
* dataset summaries printed by the experiment harness.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dataset.table import Table
from repro.exceptions import MetricError

__all__ = ["ColumnSummary", "summarize_column", "summarize_table", "standardize_matrix"]


@dataclass(frozen=True)
class ColumnSummary:
    """Summary statistics of a numeric column."""

    name: str
    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    quartiles: tuple[float, float, float]

    def describe(self) -> str:
        """One-line textual rendering used by experiment reports."""
        q1, q2, q3 = self.quartiles
        return (
            f"{self.name}: n={self.count} mean={self.mean:.2f} std={self.std:.2f} "
            f"min={self.minimum:.2f} q1={q1:.2f} median={q2:.2f} q3={q3:.2f} max={self.maximum:.2f}"
        )


def summarize_column(table: Table, name: str) -> ColumnSummary:
    """Summary statistics of numeric column ``name`` (NaN cells are dropped)."""
    values = table.numeric_column(name)
    values = values[~np.isnan(values)]
    if values.size == 0:
        raise MetricError(f"column {name!r} has no numeric values to summarize")
    quartiles = np.quantile(values, [0.25, 0.5, 0.75])
    return ColumnSummary(
        name=name,
        count=int(values.size),
        mean=float(np.mean(values)),
        std=float(np.std(values)),
        minimum=float(np.min(values)),
        maximum=float(np.max(values)),
        quartiles=(float(quartiles[0]), float(quartiles[1]), float(quartiles[2])),
    )


def summarize_table(table: Table) -> dict[str, ColumnSummary]:
    """Summaries of every numeric quasi-identifier and sensitive column."""
    names = list(table.schema.numeric_quasi_identifiers) + list(
        table.schema.sensitive_attributes
    )
    summaries: dict[str, ColumnSummary] = {}
    for name in names:
        if table.schema[name].is_numeric:
            summaries[name] = summarize_column(table, name)
    return summaries


def standardize_matrix(matrix: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Column-standardize ``matrix``; returns ``(standardized, means, stds)``.

    Columns with zero variance are left centered but unscaled (their std is
    reported as 1.0) so that constant quasi-identifiers do not produce NaNs in
    distance computations.
    """
    if matrix.ndim != 2:
        raise MetricError(f"expected a 2-D matrix, got shape {matrix.shape}")
    means = np.nanmean(matrix, axis=0)
    stds = np.nanstd(matrix, axis=0)
    stds = np.where(stds <= 0.0, 1.0, stds)
    standardized = (matrix - means) / stds
    return standardized, means, stds
