"""Tabular enterprise-database substrate (schemas, tables, generalization)."""

from repro.dataset.generalization import (
    SUPPRESSED,
    CategorySet,
    Interval,
    Suppressed,
    cover_values,
    is_generalized,
    numeric_representative,
)
from repro.dataset.hierarchy import GeneralizationHierarchy, NumericHierarchy, TaxonomyHierarchy
from repro.dataset.io import append_csv, read_csv, write_csv
from repro.dataset.schema import Attribute, AttributeKind, AttributeRole, Schema
from repro.dataset.statistics import (
    ColumnSummary,
    standardize_matrix,
    summarize_column,
    summarize_table,
)
from repro.dataset.table import Table

__all__ = [
    "Attribute",
    "AttributeKind",
    "AttributeRole",
    "Schema",
    "Table",
    "Interval",
    "CategorySet",
    "Suppressed",
    "SUPPRESSED",
    "cover_values",
    "is_generalized",
    "numeric_representative",
    "GeneralizationHierarchy",
    "NumericHierarchy",
    "TaxonomyHierarchy",
    "read_csv",
    "write_csv",
    "append_csv",
    "ColumnSummary",
    "summarize_column",
    "summarize_table",
    "standardize_matrix",
]
