"""Reproduction of the paper's figures (Figures 4-8).

All five evaluation figures are views of one sweep over the anonymization
level ``k``: anonymize the faculty data with MDAV at each ``k``, simulate the
web-based information-fusion attack, and record

* ``P ∘ P'`` — dissimilarity before fusion (Figure 4),
* ``P ∘ P̂`` — dissimilarity after fusion (Figure 5),
* ``G = (P ∘ P') − (P ∘ P̂)`` — information gain (Figure 6),
* ``U_k = 1 / C_DM(k)`` — discernibility utility (Figure 7),
* ``H_k`` — the weighted protection/utility objective over the feasible band
  defined by the thresholds ``Tp`` / ``Tu`` (Figure 8).

The sweep is computed once (:func:`run_sweep`) and each ``run_figureN`` simply
extracts its series, so regenerating all figures costs a single pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.fred import FREDAnonymizer, FREDConfig
from repro.core.objective import WeightedObjective
from repro.data.faculty import FacultyConfig, FacultyPopulation, generate_faculty
from repro.data.webgen import corpus_for_faculty
from repro.exceptions import ExperimentError
from repro.fusion.attack import AttackConfig
from repro.fusion.web import SimulatedWebCorpus

__all__ = [
    "ExperimentSetup",
    "default_setup",
    "SweepData",
    "run_sweep",
    "FigureResult",
    "derive_thresholds",
    "run_figure4",
    "run_figure5",
    "run_figure6",
    "run_figure7",
    "run_figure8",
    "run_all_figures",
]


@dataclass
class ExperimentSetup:
    """Everything needed to run the paper's evaluation sweep."""

    population: FacultyPopulation
    corpus: SimulatedWebCorpus
    attack_config: AttackConfig
    levels: tuple[int, ...] = tuple(range(2, 17))
    objective: WeightedObjective = field(
        default_factory=lambda: WeightedObjective(0.5, 0.5, normalization="minmax")
    )


def default_setup(
    count: int = 60,
    seed: int = 13,
    levels: Sequence[int] = tuple(range(2, 17)),
    corpus_noise: float = 0.05,
    corpus_coverage: float = 0.95,
) -> ExperimentSetup:
    """The default experimental setup mirroring Section VI.A.

    A synthetic faculty population (the paper's proprietary dataset is
    substituted, see DESIGN.md §4), its matching simulated web corpus, and an
    attack that fuses the released review scores with the harvested
    web attributes through a Mamdani system with monotone domain rules.

    The population is deliberately department-sized (60 faculty by default):
    the paper sweeps k up to 16 on a single institution's salary data, a
    regime where the anonymization level is a substantial fraction of the
    dataset — which is exactly when its Figure 5/6 trends are visible.  The
    two harvested web attributes mirror the paper's Table IV (employment
    seniority and property holdings).
    """
    population = generate_faculty(FacultyConfig(count=count, seed=seed))
    corpus = corpus_for_faculty(
        population, noise_level=corpus_noise, coverage=corpus_coverage
    )
    attack_config = AttackConfig(
        release_inputs=("research_score", "teaching_score", "service_score", "years_of_service"),
        auxiliary_inputs=("property_holdings", "employment_seniority"),
        output_name="salary",
        output_universe=population.assumed_salary_range,
        # The adversary knows the attribute scales from domain knowledge (the
        # enterprise's 1-10 review scale, plausible seniority and property
        # ranges), as in the paper's Figure 2 fuzzy-set definitions.
        input_ranges={
            "research_score": (1.0, 10.0),
            "teaching_score": (1.0, 10.0),
            "service_score": (1.0, 10.0),
            "years_of_service": (0.0, 40.0),
            "employment_seniority": (0.0, 45.0),
            "property_holdings": (100_000.0, 900_000.0),
            "external_activity": (1.0, 10.0),
        },
        directions={},  # every input is positively related to salary
        engine="mamdani",
    )
    return ExperimentSetup(
        population=population,
        corpus=corpus,
        attack_config=attack_config,
        levels=tuple(levels),
    )


@dataclass
class SweepData:
    """Per-level measurements shared by Figures 4-8."""

    levels: list[int]
    before: list[float]
    after: list[float]
    gain: list[float]
    utility: list[float]
    setup: ExperimentSetup

    def as_dict(self) -> dict[str, list[float]]:
        """All series keyed by name (for reports and serialization)."""
        return {
            "before": list(self.before),
            "after": list(self.after),
            "gain": list(self.gain),
            "utility": list(self.utility),
        }


def run_sweep(setup: ExperimentSetup | None = None, parallelism: int = 1) -> SweepData:
    """Run the k-sweep with the fusion attack simulated at every level.

    ``parallelism > 1`` evaluates the levels concurrently (they are
    independent jobs); the per-level series are identical either way thanks to
    FRED's deterministic merge.
    """
    setup = setup or default_setup()
    fred = FREDAnonymizer(
        source=setup.corpus,
        attack_config=setup.attack_config,
        config=FREDConfig(
            levels=setup.levels,
            protection_threshold=None,
            utility_threshold=None,
            objective=setup.objective,
            stop_below_utility=False,
            parallelism=parallelism,
        ),
    )
    outcomes = fred.sweep(setup.population.private)
    return SweepData(
        levels=[o.level for o in outcomes],
        before=[o.protection_before for o in outcomes],
        after=[o.protection_after for o in outcomes],
        gain=[o.information_gain for o in outcomes],
        utility=[o.utility for o in outcomes],
        setup=setup,
    )


@dataclass
class FigureResult:
    """One reproduced figure: x values plus one or more named series."""

    figure_id: str
    title: str
    x_label: str
    y_label: str
    x: list[float]
    series: dict[str, list[float]]
    notes: str = ""

    def to_text(self) -> str:
        """Plain-text rendering (the harness's replacement for a plot)."""
        names = list(self.series)
        header = f"{self.x_label:>6}  " + "  ".join(f"{name:>16}" for name in names)
        lines = [f"{self.figure_id}: {self.title}", header]
        for i, x in enumerate(self.x):
            row = f"{x:>6g}  " + "  ".join(
                f"{self.series[name][i]:>16.6g}" for name in names
            )
            lines.append(row)
        if self.notes:
            lines.append(f"note: {self.notes}")
        return "\n".join(lines)


def derive_thresholds(
    sweep: SweepData,
    lower_fraction: float = 0.35,
    upper_fraction: float = 0.85,
) -> tuple[float, float]:
    """Derive ``(Tp, Tu)`` from the observed sweep, as the paper does.

    The paper picks its thresholds "based on experimental observations" so
    that a mid-range band of k values (7..14 on its data) is feasible.  We do
    the same mechanically: ``Tp`` is the post-fusion dissimilarity achieved at
    the level ``lower_fraction`` of the way through the sweep (excluding the
    weakly-protected small-k levels), and ``Tu`` is the utility achieved at the
    level ``upper_fraction`` of the way through (excluding the low-utility
    large-k levels).
    """
    if not 0.0 <= lower_fraction < upper_fraction <= 1.0:
        raise ExperimentError("fractions must satisfy 0 <= lower < upper <= 1")
    count = len(sweep.levels)
    if count < 3:
        raise ExperimentError("threshold derivation needs at least 3 swept levels")
    lower_index = min(int(round(lower_fraction * (count - 1))), count - 2)
    upper_index = min(int(round(upper_fraction * (count - 1))), count - 1)
    protection_threshold = float(sweep.after[lower_index])
    utility_threshold = float(sweep.utility[upper_index])
    return protection_threshold, utility_threshold


def run_figure4(sweep: SweepData | None = None) -> FigureResult:
    """Figure 4: dissimilarity before information fusion, ``(P ∘ P')`` vs ``k``."""
    sweep = sweep or run_sweep()
    return FigureResult(
        figure_id="figure4",
        title="Before Information Fusion (P o P')",
        x_label="k",
        y_label="dissimilarity",
        x=[float(level) for level in sweep.levels],
        series={"P o P' (without Q)": list(sweep.before)},
        notes="nearly flat and weakly increasing with k, as in the paper",
    )


def run_figure5(sweep: SweepData | None = None) -> FigureResult:
    """Figure 5: dissimilarity after information fusion, ``(P ∘ P̂)`` vs ``k``."""
    sweep = sweep or run_sweep()
    return FigureResult(
        figure_id="figure5",
        title="After Information Fusion (P o P^)",
        x_label="k",
        y_label="dissimilarity",
        x=[float(level) for level in sweep.levels],
        series={"P o P^ (with Q)": list(sweep.after)},
        notes="below the before-fusion curve at every k; rises as anonymization degrades the fused inputs",
    )


def run_figure6(sweep: SweepData | None = None) -> FigureResult:
    """Figure 6: adversarial information gain ``G`` vs ``k``."""
    sweep = sweep or run_sweep()
    return FigureResult(
        figure_id="figure6",
        title="Information Gain (G)",
        x_label="k",
        y_label="gain",
        x=[float(level) for level in sweep.levels],
        series={"Information Gain (G)": list(sweep.gain)},
        notes="positive everywhere and non-increasing with k",
    )


def run_figure7(sweep: SweepData | None = None) -> FigureResult:
    """Figure 7: discernibility utility ``U_k`` vs ``k``."""
    sweep = sweep or run_sweep()
    return FigureResult(
        figure_id="figure7",
        title="Utility (U)",
        x_label="k",
        y_label="utility",
        x=[float(level) for level in sweep.levels],
        series={"Utility (U)": list(sweep.utility)},
        notes="monotonically decreasing with k",
    )


def run_figure8(
    sweep: SweepData | None = None,
    thresholds: tuple[float, float] | None = None,
) -> FigureResult:
    """Figure 8: the weighted objective ``H_k`` over the feasible band, with the optimum."""
    sweep = sweep or run_sweep()
    protection_threshold, utility_threshold = thresholds or derive_thresholds(sweep)
    objective = sweep.setup.objective

    scores = objective.scores(np.array(sweep.after), np.array(sweep.utility))
    feasible = [
        i
        for i in range(len(sweep.levels))
        if sweep.after[i] >= protection_threshold and sweep.utility[i] >= utility_threshold
    ]
    if not feasible:
        raise ExperimentError(
            "no feasible levels for the derived thresholds; relax the fractions"
        )
    optimal_index = max(feasible, key=lambda i: scores[i])
    return FigureResult(
        figure_id="figure8",
        title="Weighted Sum Of Protection And Utility (H)",
        x_label="k",
        y_label="H",
        x=[float(sweep.levels[i]) for i in feasible],
        series={"H": [float(scores[i]) for i in feasible]},
        notes=(
            f"Tp={protection_threshold:.6g}, Tu={utility_threshold:.6g}, "
            f"optimal k={sweep.levels[optimal_index]}"
        ),
    )


def run_all_figures(setup: ExperimentSetup | None = None) -> dict[str, FigureResult]:
    """Run the sweep once and produce every figure."""
    sweep = run_sweep(setup)
    return {
        "figure4": run_figure4(sweep),
        "figure5": run_figure5(sweep),
        "figure6": run_figure6(sweep),
        "figure7": run_figure7(sweep),
        "figure8": run_figure8(sweep),
    }
