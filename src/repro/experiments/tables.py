"""Reproduction of the paper's illustrative tables (Tables I-IV).

The four tables of Section I walk the reader through the enterprise-data
setting and the attack: the classic sensitive database with explicit
identifiers (Table I), the financial institution's enterprise database
(Table II), its k-anonymized internal release (Table III) and the auxiliary
data the insider harvests from the web (Table IV).  Each runner returns the
table as a :class:`~repro.dataset.table.Table` plus the paper-style text
rendering, and Table III is produced by actually running the anonymizer on the
Table II data rather than by hard-coding the generalized cells.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.anonymize.mdav import MDAVAnonymizer
from repro.data.customers import (
    adversary_auxiliary_example,
    enterprise_customers_example,
    sensitive_medical_example,
)
from repro.dataset.table import Table
from repro.fusion.attack import AttackConfig, WebFusionAttack
from repro.fusion.web import SimulatedWebCorpus

__all__ = [
    "TableResult",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_example_attack",
    "run_all_tables",
]


@dataclass
class TableResult:
    """One reproduced table with its identifier, caption and rendering."""

    table_id: str
    title: str
    table: Table

    def to_text(self) -> str:
        """Paper-style text rendering."""
        return f"{self.table_id}: {self.title}\n{self.table.to_text(max_rows=None)}"


def run_table1() -> TableResult:
    """Table I: sensitive database with identifier / quasi-identifier / sensitive roles."""
    return TableResult(
        table_id="table1",
        title="Sensitive database",
        table=sensitive_medical_example(),
    )


def run_table2() -> TableResult:
    """Table II: the enterprise customer data (identifiers kept, income present)."""
    return TableResult(
        table_id="table2",
        title="Enterprise data",
        table=enterprise_customers_example(),
    )


def run_table3(k: int = 2) -> TableResult:
    """Table III: the k-anonymized enterprise release (income dropped, QIs generalized)."""
    private = enterprise_customers_example()
    release = MDAVAnonymizer(release_style="interval").anonymize(private, k).release
    return TableResult(
        table_id="table3",
        title=f"Anonymized enterprise data (k={k})",
        table=release,
    )


def run_table4() -> TableResult:
    """Table IV: auxiliary data collected by the adversary from the web."""
    return TableResult(
        table_id="table4",
        title="Auxiliary data collected by the adversary",
        table=adversary_auxiliary_example(),
    )


def run_example_attack(k: int = 2) -> dict[str, object]:
    """The Section-I walkthrough end to end: anonymize Table II, attack it, estimate incomes.

    Returns the release, the harvested auxiliary table and the per-customer
    income estimates, so examples and tests can check that the adversary's
    estimate of Robert (the high-valuation CEO) lands in the high income band,
    as the paper narrates.
    """
    private = enterprise_customers_example()
    auxiliary = adversary_auxiliary_example()
    release = MDAVAnonymizer().anonymize(private, k).release

    # Column-wise profile assembly (no per-row dict materialization).
    profiles = [
        {"name": name, "position": position, "property_holdings": holdings}
        for name, position, holdings in zip(
            auxiliary.column("name"),
            auxiliary.column("employment"),
            auxiliary.numeric_column("property_holdings").tolist(),
        )
    ]
    corpus = SimulatedWebCorpus.from_profiles(
        profiles=profiles,
        attribute_names=("property_holdings",),
        noise_level=0.0,
        coverage=1.0,
        name_variant_probability=0.0,
        seed=1,
    )
    config = AttackConfig(
        release_inputs=("invst_vol", "invst_amt", "valuation"),
        auxiliary_inputs=("property_holdings",),
        output_name="income",
        output_universe=(40_000.0, 100_000.0),
        output_ranges={
            "low": (40_000.0, 60_000.0),
            "medium": (60_000.0, 80_000.0),
            "high": (80_000.0, 100_000.0),
        },
    )
    attack = WebFusionAttack(corpus, config)
    result = attack.run(release)
    estimates = {
        str(name): float(estimate)
        for name, estimate in zip(release.identifier_column(), result.estimates)
    }
    return {
        "release": release,
        "auxiliary": result.auxiliary,
        "estimates": estimates,
        "true_income": dict(
            zip(
                map(str, private.identifier_column()),
                private.numeric_column("income").tolist(),
            )
        ),
    }


def run_all_tables() -> dict[str, TableResult]:
    """All four tables."""
    return {
        "table1": run_table1(),
        "table2": run_table2(),
        "table3": run_table3(),
        "table4": run_table4(),
    }
