"""One-call experiment runner.

``python -m repro.experiments.runner`` regenerates every table and figure of
the paper's evaluation, prints the text renderings, and (optionally) writes
the Markdown report consumed by ``EXPERIMENTS.md``.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from pathlib import Path

from repro.experiments.figures import (
    ExperimentSetup,
    FigureResult,
    SweepData,
    default_setup,
    run_figure4,
    run_figure5,
    run_figure6,
    run_figure7,
    run_figure8,
    run_sweep,
)
from repro.experiments.report import render_report, sweep_shape_checks
from repro.experiments.tables import TableResult, run_all_tables

__all__ = ["ExperimentReport", "run_all", "main"]


@dataclass
class ExperimentReport:
    """All reproduced artifacts of the paper's evaluation."""

    sweep: SweepData
    figures: dict[str, FigureResult]
    tables: dict[str, TableResult]

    def to_markdown(self) -> str:
        """Markdown rendering (the body of EXPERIMENTS.md)."""
        return render_report(self.figures, self.tables, self.sweep)

    def shape_checks(self) -> list[tuple[str, bool]]:
        """The paper's qualitative claims evaluated on the measured sweep."""
        return sweep_shape_checks(self.sweep)


def run_all(setup: ExperimentSetup | None = None) -> ExperimentReport:
    """Regenerate every table and figure from one sweep."""
    sweep = run_sweep(setup or default_setup())
    figures = {
        "figure4": run_figure4(sweep),
        "figure5": run_figure5(sweep),
        "figure6": run_figure6(sweep),
        "figure7": run_figure7(sweep),
        "figure8": run_figure8(sweep),
    }
    tables = run_all_tables()
    return ExperimentReport(sweep=sweep, figures=figures, tables=tables)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(description="Reproduce the paper's tables and figures")
    parser.add_argument("--count", type=int, default=60, help="faculty population size")
    parser.add_argument("--seed", type=int, default=13, help="population / corpus seed")
    parser.add_argument("--kmax", type=int, default=16, help="largest anonymization level")
    parser.add_argument(
        "--output", type=Path, default=None, help="write the Markdown report to this path"
    )
    arguments = parser.parse_args(argv)

    setup = default_setup(
        count=arguments.count,
        seed=arguments.seed,
        levels=tuple(range(2, arguments.kmax + 1)),
    )
    report = run_all(setup)

    for result in report.tables.values():
        print(result.to_text())
        print()
    for figure in report.figures.values():
        print(figure.to_text())
        print()
    print("Shape checks:")
    for description, passed in report.shape_checks():
        print(f"  [{'PASS' if passed else 'FAIL'}] {description}")

    if arguments.output is not None:
        arguments.output.write_text(report.to_markdown(), encoding="utf-8")
        print(f"\nwrote {arguments.output}")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI shim
    raise SystemExit(main())
