"""Markdown rendering of reproduced experiments.

Turns the figure/table results of :mod:`repro.experiments.figures` and
:mod:`repro.experiments.tables` into the Markdown sections used to build
``EXPERIMENTS.md``, including the paper-vs-measured shape checklist.
"""

from __future__ import annotations

from typing import Mapping

from repro.dataset.generalization import value_to_text
from repro.experiments.figures import FigureResult, SweepData
from repro.experiments.tables import TableResult

__all__ = ["figure_to_markdown", "table_to_markdown", "sweep_shape_checks", "render_report"]


def figure_to_markdown(figure: FigureResult) -> str:
    """One figure as a Markdown section with a data table.

    Series are formatted column-wise (one pass per series) and the table body
    is assembled by zipping the rendered columns, mirroring the columnar
    rendering of the table/text paths.
    """
    lines = [f"### {figure.figure_id.capitalize()}: {figure.title}", ""]
    names = list(figure.series)
    header = "| " + figure.x_label + " | " + " | ".join(names) + " |"
    separator = "|" + "---|" * (len(names) + 1)
    lines.extend([header, separator])
    x_cells = [f"{x:g}" for x in figure.x]
    series_cells = [
        [f"{value:.6g}" for value in figure.series[name]] for name in names
    ]
    for row in zip(x_cells, *series_cells, strict=True):
        lines.append("| " + " | ".join(row) + " |")
    if figure.notes:
        lines.extend(["", f"*{figure.notes}*"])
    lines.append("")
    return "\n".join(lines)


def table_to_markdown(result: TableResult) -> str:
    """One paper table as a Markdown section.

    Cells are rendered column-wise through
    :func:`~repro.dataset.generalization.value_to_text`, so integer-valued
    floats and generalized cells (``[5-10]``, ``*``) appear exactly as in the
    paper-style text tables.
    """
    table = result.table
    names = list(table.schema.names)
    lines = [f"### {result.table_id.capitalize()}: {result.title}", ""]
    lines.append("| " + " | ".join(names) + " |")
    lines.append("|" + "---|" * len(names))
    columns = [[value_to_text(v) for v in table.column(name)] for name in names]
    for row in zip(*columns):
        lines.append("| " + " | ".join(row) + " |")
    lines.append("")
    return "\n".join(lines)


def sweep_shape_checks(sweep: SweepData) -> list[tuple[str, bool]]:
    """The paper's qualitative claims evaluated on a measured sweep."""
    before = sweep.before
    after = sweep.after
    gain = sweep.gain
    utility = sweep.utility
    checks = [
        (
            "fusion always helps the adversary: (P o P^) < (P o P') at every k",
            all(a < b for a, b in zip(after, before)),
        ),
        (
            "information gain G is positive at every k",
            all(g > 0 for g in gain),
        ),
        (
            "information gain does not grow with k (G at kmax <= G at kmin)",
            gain[-1] <= gain[0],
        ),
        (
            "utility decreases with k (U at kmax < U at kmin)",
            utility[-1] < utility[0],
        ),
        (
            "post-fusion dissimilarity does not decrease with k overall",
            after[-1] >= after[0],
        ),
    ]
    return checks


def render_report(
    figures: Mapping[str, FigureResult],
    tables: Mapping[str, TableResult],
    sweep: SweepData,
) -> str:
    """The full Markdown report used to build EXPERIMENTS.md."""
    lines = [
        "# Reproduced experiments",
        "",
        "All figures are regenerated from one sweep over the anonymization level",
        "k (MDAV microaggregation of the synthetic faculty dataset, web-based",
        "information-fusion attack simulated at every level).",
        "",
        "## Shape checks (paper claim vs measured)",
        "",
    ]
    for description, passed in sweep_shape_checks(sweep):
        lines.append(f"- [{'x' if passed else ' '}] {description}")
    lines.append("")
    lines.append("## Tables")
    lines.append("")
    for result in tables.values():
        lines.append(table_to_markdown(result))
    lines.append("## Figures")
    lines.append("")
    for figure in figures.values():
        lines.append(figure_to_markdown(figure))
    return "\n".join(lines)
