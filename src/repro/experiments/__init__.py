"""Experiment harness: one runner per paper table and figure."""

from repro.experiments.figures import (
    ExperimentSetup,
    FigureResult,
    SweepData,
    default_setup,
    derive_thresholds,
    run_all_figures,
    run_figure4,
    run_figure5,
    run_figure6,
    run_figure7,
    run_figure8,
    run_sweep,
)
from repro.experiments.report import (
    figure_to_markdown,
    render_report,
    sweep_shape_checks,
    table_to_markdown,
)
from repro.experiments.runner import ExperimentReport, run_all
from repro.experiments.tables import (
    TableResult,
    run_all_tables,
    run_example_attack,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
)

__all__ = [
    "ExperimentSetup",
    "default_setup",
    "SweepData",
    "run_sweep",
    "derive_thresholds",
    "FigureResult",
    "run_figure4",
    "run_figure5",
    "run_figure6",
    "run_figure7",
    "run_figure8",
    "run_all_figures",
    "TableResult",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_all_tables",
    "run_example_attack",
    "ExperimentReport",
    "run_all",
    "figure_to_markdown",
    "table_to_markdown",
    "sweep_shape_checks",
    "render_report",
]
