"""Utility metrics for anonymized releases.

The paper measures release utility with the **discernibility metric** of
Bayardo & Agrawal ([22])::

    C_DM(k) = sum_{|E| >= k} |E|^2  +  sum_{|E| < k} |D| * |E|

(each record costs the size of its equivalence class, or ``|D|`` times that
when the class violates k-anonymity), and defines the utility of a release as
``U_k = 1 / C_DM(k)`` (Figure 7).  The per-record cost vector ``u_i = 1/C_i``
from Section VI.C is also provided, together with two auxiliary utility
measures frequently used in this literature (average equivalence class size
and the normalized-certainty-penalty style generalized loss), which the
ablation benchmarks use to confirm the FRED optimum is not an artifact of the
particular utility metric.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.anonymize.base import AnonymizationResult, EquivalenceClass
from repro.dataset.generalization import Interval, Suppressed
from repro.dataset.table import Table
from repro.exceptions import MetricError

__all__ = [
    "discernibility_cost",
    "discernibility_utility",
    "per_record_costs",
    "per_record_utility",
    "average_class_size",
    "generalized_information_loss",
    "utility_of_result",
]


def discernibility_cost(class_sizes: Sequence[int], total_records: int, k: int) -> float:
    """``C_DM``: the discernibility cost of a partition."""
    if total_records <= 0:
        raise MetricError("total_records must be positive")
    if k < 1:
        raise MetricError("k must be >= 1")
    if sum(class_sizes) != total_records:
        raise MetricError(
            f"class sizes sum to {sum(class_sizes)}, expected {total_records}"
        )
    cost = 0.0
    for size in class_sizes:
        if size <= 0:
            raise MetricError("equivalence class sizes must be positive")
        if size >= k:
            cost += float(size) ** 2
        else:
            cost += float(total_records) * float(size)
    return cost


def discernibility_utility(class_sizes: Sequence[int], total_records: int, k: int) -> float:
    """``U = 1 / C_DM`` (Figure 7)."""
    return 1.0 / discernibility_cost(class_sizes, total_records, k)


def per_record_costs(
    classes: Sequence[EquivalenceClass], total_records: int, k: int
) -> np.ndarray:
    """Per-record discernibility cost ``C_i`` (Section VI.C)."""
    costs = np.zeros(total_records, dtype=float)
    for equivalence_class in classes:
        size = equivalence_class.size
        cost = float(size) ** 2 if size >= k else float(total_records) * float(size)
        for index in equivalence_class.indices:
            if not 0 <= index < total_records:
                raise MetricError(f"class references row {index} outside the table")
            costs[index] = cost
    if (costs == 0).any():
        raise MetricError("equivalence classes do not cover every record")
    return costs


def per_record_utility(
    classes: Sequence[EquivalenceClass], total_records: int, k: int
) -> np.ndarray:
    """Per-record utility ``u_i = 1 / C_i`` (the column matrix U of Section VI.C)."""
    return 1.0 / per_record_costs(classes, total_records, k)


def average_class_size(class_sizes: Sequence[int]) -> float:
    """Average equivalence-class size (the ``C_avg`` style metric)."""
    if not class_sizes:
        raise MetricError("no equivalence classes supplied")
    return float(np.mean(class_sizes))


def generalized_information_loss(original: Table, release: Table) -> float:
    """Normalized information loss of the generalized quasi-identifiers in ``[0, 1]``.

    Each numeric quasi-identifier cell contributes ``interval width / column
    range`` (0 for an exact value, 1 for a suppressed cell); the loss is the
    average over all quasi-identifier cells.
    """
    if original.num_rows != release.num_rows:
        raise MetricError("original and release must have the same number of rows")
    qi_names = [
        name
        for name in original.schema.numeric_quasi_identifiers
        if name in release.schema
    ]
    if not qi_names:
        raise MetricError("no shared numeric quasi-identifiers to compute loss over")
    total = 0.0
    cells = 0
    for name in qi_names:
        column = original.numeric_column(name)
        column_range = float(column.max() - column.min())
        if column_range <= 0:
            column_range = 1.0
        for i in range(release.num_rows):
            value = release.cell(i, name)
            if isinstance(value, Interval):
                total += value.width / column_range
            elif isinstance(value, Suppressed):
                total += 1.0
            cells += 1
    return total / cells


def utility_of_result(result: AnonymizationResult) -> float:
    """Discernibility utility ``U_k`` of an anonymization result."""
    return discernibility_utility(
        result.class_sizes, result.original.num_rows, result.k
    )
