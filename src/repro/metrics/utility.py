"""Utility metrics for anonymized releases.

The paper measures release utility with the **discernibility metric** of
Bayardo & Agrawal ([22])::

    C_DM(k) = sum_{|E| >= k} |E|^2  +  sum_{|E| < k} |D| * |E|

(each record costs the size of its equivalence class, or ``|D|`` times that
when the class violates k-anonymity), and defines the utility of a release as
``U_k = 1 / C_DM(k)`` (Figure 7).  The per-record cost vector ``u_i = 1/C_i``
from Section VI.C is also provided, together with two auxiliary utility
measures frequently used in this literature (average equivalence class size
and the normalized-certainty-penalty style generalized loss), which the
ablation benchmarks use to confirm the FRED optimum is not an artifact of the
particular utility metric.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.anonymize.base import AnonymizationResult, EquivalenceClass
from repro.dataset.generalization import Interval, Suppressed
from repro.dataset.table import Table
from repro.exceptions import MetricError

__all__ = [
    "discernibility_cost",
    "discernibility_utility",
    "per_record_costs",
    "per_record_utility",
    "average_class_size",
    "generalized_information_loss",
    "utility_of_result",
]


def discernibility_cost(class_sizes: Sequence[int], total_records: int, k: int) -> float:
    """``C_DM``: the discernibility cost of a partition (vectorized over classes)."""
    if total_records <= 0:
        raise MetricError("total_records must be positive")
    if k < 1:
        raise MetricError("k must be >= 1")
    sizes = np.asarray(class_sizes, dtype=float)
    if int(sizes.sum()) != total_records:
        raise MetricError(
            f"class sizes sum to {int(sizes.sum())}, expected {total_records}"
        )
    if sizes.size and (sizes <= 0).any():
        raise MetricError("equivalence class sizes must be positive")
    return float(np.sum(np.where(sizes >= k, sizes**2, float(total_records) * sizes)))


def discernibility_utility(class_sizes: Sequence[int], total_records: int, k: int) -> float:
    """``U = 1 / C_DM`` (Figure 7)."""
    return 1.0 / discernibility_cost(class_sizes, total_records, k)


def per_record_costs(
    classes: Sequence[EquivalenceClass], total_records: int, k: int
) -> np.ndarray:
    """Per-record discernibility cost ``C_i`` (Section VI.C).

    The cost vector is assembled from class-size vectors: one cost per class,
    repeated over the class sizes and scattered to the member rows with a
    single fancy-index assignment.
    """
    costs = np.zeros(total_records, dtype=float)
    if classes:
        sizes = np.fromiter((c.size for c in classes), dtype=float, count=len(classes))
        class_costs = np.where(sizes >= k, sizes**2, float(total_records) * sizes)
        members = np.fromiter(
            (index for c in classes for index in c.indices),
            dtype=np.intp,
            count=int(sizes.sum()),
        )
        if members.size and ((members < 0) | (members >= total_records)).any():
            offender = int(members[(members < 0) | (members >= total_records)][0])
            raise MetricError(f"class references row {offender} outside the table")
        costs[members] = np.repeat(class_costs, sizes.astype(np.intp))
    if (costs == 0).any():
        raise MetricError("equivalence classes do not cover every record")
    return costs


def per_record_utility(
    classes: Sequence[EquivalenceClass], total_records: int, k: int
) -> np.ndarray:
    """Per-record utility ``u_i = 1 / C_i`` (the column matrix U of Section VI.C)."""
    return 1.0 / per_record_costs(classes, total_records, k)


def average_class_size(class_sizes: Sequence[int]) -> float:
    """Average equivalence-class size (the ``C_avg`` style metric)."""
    if not class_sizes:
        raise MetricError("no equivalence classes supplied")
    return float(np.mean(class_sizes))


def generalized_information_loss(original: Table, release: Table) -> float:
    """Normalized information loss of the generalized quasi-identifiers in ``[0, 1]``.

    Each numeric quasi-identifier cell contributes ``interval width / column
    range`` (0 for an exact value, 1 for a suppressed cell); the loss is the
    average over all quasi-identifier cells.
    """
    if original.num_rows != release.num_rows:
        raise MetricError("original and release must have the same number of rows")
    qi_names = [
        name
        for name in original.schema.numeric_quasi_identifiers
        if name in release.schema
    ]
    if not qi_names:
        raise MetricError("no shared numeric quasi-identifiers to compute loss over")
    total = 0.0
    cells = 0
    for name in qi_names:
        column = original.numeric_column(name)
        column_range = float(column.max() - column.min())
        if column_range <= 0:
            column_range = 1.0
        array = release.column_array(name)
        cells += release.num_rows
        if array.dtype != object:
            continue  # exact numeric cells carry no loss
        # Release columns share one generalized object per equivalence class,
        # so the per-cell loss is resolved once per distinct object.
        memo: dict[int, float] = {}
        for value in array:
            key = id(value)
            loss = memo.get(key)
            if loss is None:
                if isinstance(value, Interval):
                    loss = value.width / column_range
                elif isinstance(value, Suppressed):
                    loss = 1.0
                else:
                    loss = 0.0
                memo[key] = loss
            total += loss
    return total / cells


def utility_of_result(result: AnonymizationResult) -> float:
    """Discernibility utility ``U_k`` of an anonymization result."""
    return discernibility_utility(
        result.class_sizes, result.original.num_rows, result.k
    )
