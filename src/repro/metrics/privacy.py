"""Per-record privacy-breach metrics.

The paper's dissimilarity measure is an aggregate (mean squared error across
the whole population).  For a finer-grained view of the breach — which the
examples and ablation benchmarks use to tell *whose* income the adversary
pinned down — this module provides the standard disclosure-risk metrics from
the record-linkage / microdata-protection literature:

* relative error of each estimate;
* **breach rate**: the fraction of individuals whose estimate falls within a
  tolerance band around their true value (interval disclosure);
* Spearman rank correlation between true and estimated values (did the
  adversary learn the ordering, even if not the amounts?);
* re-identification risk of a release: the expected probability of singling a
  record out of its equivalence class (``mean(1 / |E|)``).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.anonymize.base import EquivalenceClass
from repro.exceptions import MetricError

__all__ = [
    "relative_errors",
    "breach_rate",
    "mean_absolute_error",
    "root_mean_square_error",
    "rank_correlation",
    "reidentification_risk",
]


def _validate_pair(true_values: np.ndarray, estimates: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    true_values = np.asarray(true_values, dtype=float)
    estimates = np.asarray(estimates, dtype=float)
    if true_values.shape != estimates.shape or true_values.ndim != 1:
        raise MetricError(
            f"true values and estimates must be equal-length vectors, got "
            f"{true_values.shape} vs {estimates.shape}"
        )
    if true_values.size == 0:
        raise MetricError("cannot compute breach metrics on empty vectors")
    return true_values, estimates


def relative_errors(true_values: Sequence[float], estimates: Sequence[float]) -> np.ndarray:
    """``|estimate - true| / |true|`` per record (records with true == 0 use absolute error)."""
    truth, guesses = _validate_pair(np.asarray(true_values), np.asarray(estimates))
    denominators = np.where(np.abs(truth) > 0, np.abs(truth), 1.0)
    return np.abs(guesses - truth) / denominators


def breach_rate(
    true_values: Sequence[float], estimates: Sequence[float], tolerance: float = 0.1
) -> float:
    """Fraction of records whose estimate lies within ``tolerance`` relative error."""
    if tolerance <= 0:
        raise MetricError("tolerance must be positive")
    errors = relative_errors(true_values, estimates)
    return float(np.mean(errors <= tolerance))


def mean_absolute_error(true_values: Sequence[float], estimates: Sequence[float]) -> float:
    """Mean absolute estimation error."""
    truth, guesses = _validate_pair(np.asarray(true_values), np.asarray(estimates))
    return float(np.mean(np.abs(guesses - truth)))


def root_mean_square_error(true_values: Sequence[float], estimates: Sequence[float]) -> float:
    """Root mean squared estimation error."""
    truth, guesses = _validate_pair(np.asarray(true_values), np.asarray(estimates))
    return float(np.sqrt(np.mean((guesses - truth) ** 2)))


def rank_correlation(true_values: Sequence[float], estimates: Sequence[float]) -> float:
    """Spearman rank correlation between true and estimated values.

    Returns 0 when either vector is constant (no ordering information).
    """
    truth, guesses = _validate_pair(np.asarray(true_values), np.asarray(estimates))
    if np.allclose(truth, truth[0]) or np.allclose(guesses, guesses[0]):
        return 0.0

    def _ranks(values: np.ndarray) -> np.ndarray:
        order = values.argsort(kind="stable")
        ranks = np.empty_like(order, dtype=float)
        ranks[order] = np.arange(len(values), dtype=float)
        # average ranks of ties
        unique, inverse, counts = np.unique(values, return_inverse=True, return_counts=True)
        sums = np.zeros(len(unique))
        np.add.at(sums, inverse, ranks)
        return sums[inverse] / counts[inverse]

    truth_ranks = _ranks(truth)
    guess_ranks = _ranks(guesses)
    truth_centered = truth_ranks - truth_ranks.mean()
    guess_centered = guess_ranks - guess_ranks.mean()
    denominator = np.sqrt((truth_centered**2).sum() * (guess_centered**2).sum())
    if denominator <= 0:
        return 0.0
    return float((truth_centered * guess_centered).sum() / denominator)


def reidentification_risk(classes: Sequence[EquivalenceClass]) -> float:
    """Expected probability of singling a record out of its equivalence class."""
    if not classes:
        raise MetricError("no equivalence classes supplied")
    total = sum(c.size for c in classes)
    # Each record in a class of size s is re-identified with probability 1/s.
    return float(sum(c.size * (1.0 / c.size) for c in classes) / total)
