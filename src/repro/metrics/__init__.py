"""Protection, utility and breach metrics."""

from repro.metrics.dissimilarity import (
    adversary_estimate_matrix,
    dissimilarity_after_fusion,
    dissimilarity_before_fusion,
    mean_square_dissimilarity,
    private_matrix,
)
from repro.metrics.information_gain import information_gain, information_gain_curve
from repro.metrics.privacy import (
    breach_rate,
    mean_absolute_error,
    rank_correlation,
    reidentification_risk,
    relative_errors,
    root_mean_square_error,
)
from repro.metrics.utility import (
    average_class_size,
    discernibility_cost,
    discernibility_utility,
    generalized_information_loss,
    per_record_costs,
    per_record_utility,
    utility_of_result,
)

__all__ = [
    "mean_square_dissimilarity",
    "private_matrix",
    "adversary_estimate_matrix",
    "dissimilarity_before_fusion",
    "dissimilarity_after_fusion",
    "information_gain",
    "information_gain_curve",
    "discernibility_cost",
    "discernibility_utility",
    "per_record_costs",
    "per_record_utility",
    "average_class_size",
    "generalized_information_loss",
    "utility_of_result",
    "relative_errors",
    "breach_rate",
    "mean_absolute_error",
    "root_mean_square_error",
    "rank_correlation",
    "reidentification_risk",
]
