"""Dissimilarity measure and adversary-estimate construction (Definition 1).

The paper measures the protection offered by a release through the
mean-square-trace dissimilarity between the private dataset ``P`` and the
adversary's estimate of it::

    D1 ∘ D2 = (1/m) * Tr((D1 - D2)^T (D1 - D2))

i.e. the sum over attributes of the per-attribute mean squared error.  Two
estimates of ``P`` appear in the evaluation:

* **before fusion** — the adversary holds only the release ``P'``: the
  quasi-identifiers are known up to their generalized representatives
  (interval midpoints) and the sensitive attribute is unknown, so the best
  guess is the midpoint of the adversary's assumed sensitive range;
* **after fusion** — the quasi-identifier estimate is unchanged but the
  sensitive attribute is replaced by the fusion system's output ``P̂``.

The difference between the two dissimilarities is the **information gain**
``G`` of Figure 6.
"""

from __future__ import annotations

import numpy as np

from repro.dataset.table import Table
from repro.exceptions import MetricError

__all__ = [
    "mean_square_dissimilarity",
    "adversary_estimate_matrix",
    "private_matrix",
    "dissimilarity_before_fusion",
    "dissimilarity_after_fusion",
]


def mean_square_dissimilarity(first: np.ndarray, second: np.ndarray) -> float:
    """``(1/m) * Tr((D1 - D2)^T (D1 - D2))`` for two aligned numeric matrices."""
    first = np.asarray(first, dtype=float)
    second = np.asarray(second, dtype=float)
    if first.shape != second.shape:
        raise MetricError(
            f"dissimilarity requires equal shapes, got {first.shape} vs {second.shape}"
        )
    if first.size == 0:
        raise MetricError("dissimilarity of empty datasets is undefined")
    if first.ndim == 1:
        first = first[:, None]
        second = second[:, None]
    if np.isnan(first).any() or np.isnan(second).any():
        raise MetricError("dissimilarity inputs must not contain NaN")
    rows = first.shape[0]
    delta = first - second
    return float(np.trace(delta.T @ delta) / rows)


def private_matrix(table: Table, quasi_identifiers: tuple[str, ...] | None = None) -> np.ndarray:
    """The numeric matrix of ``P``: quasi-identifier columns plus the sensitive column."""
    names = list(quasi_identifiers or table.schema.numeric_quasi_identifiers)
    names.append(table.schema.sensitive_attribute)
    columns = [table.numeric_column(name) for name in names]
    matrix = np.column_stack(columns)
    if np.isnan(matrix).any():
        raise MetricError("the private dataset contains missing numeric values")
    return matrix


def adversary_estimate_matrix(
    private: Table,
    release: Table,
    sensitive_estimates: np.ndarray | None = None,
    assumed_sensitive_range: tuple[float, float] | None = None,
    quasi_identifiers: tuple[str, ...] | None = None,
) -> np.ndarray:
    """The adversary's numeric estimate of ``P`` implied by ``release``.

    Quasi-identifier columns come from the release's numeric representatives
    (interval midpoints; suppressed cells fall back to the release column mean,
    or to the private column mean when the whole column is suppressed).  The
    sensitive column is ``sensitive_estimates`` when provided (after fusion)
    or the midpoint of ``assumed_sensitive_range`` (before fusion).
    """
    qi_names = list(quasi_identifiers or private.schema.numeric_quasi_identifiers)
    if release.num_rows != private.num_rows:
        raise MetricError(
            f"release has {release.num_rows} rows but the private table has {private.num_rows}"
        )
    columns = []
    for name in qi_names:
        if name in release.schema:
            values = release.numeric_column(name)
        else:
            values = np.full(private.num_rows, np.nan)
        if np.isnan(values).any():
            fallback = (
                float(np.nanmean(values))
                if not np.isnan(values).all()
                else float(np.mean(private.numeric_column(name)))
            )
            values = np.where(np.isnan(values), fallback, values)
        columns.append(values)

    if sensitive_estimates is not None:
        estimates = np.asarray(sensitive_estimates, dtype=float)
        if estimates.shape != (private.num_rows,):
            raise MetricError(
                f"sensitive estimates must have shape ({private.num_rows},), got {estimates.shape}"
            )
    else:
        if assumed_sensitive_range is None:
            raise MetricError(
                "provide sensitive_estimates (after fusion) or assumed_sensitive_range (before fusion)"
            )
        low, high = assumed_sensitive_range
        if low >= high:
            raise MetricError("assumed_sensitive_range must satisfy low < high")
        estimates = np.full(private.num_rows, (low + high) / 2.0)
    columns.append(estimates)
    return np.column_stack(columns)


def dissimilarity_before_fusion(
    private: Table,
    release: Table,
    assumed_sensitive_range: tuple[float, float],
) -> float:
    """``P ∘ P'``: protection offered by the release alone (Figure 4)."""
    estimate = adversary_estimate_matrix(
        private, release, assumed_sensitive_range=assumed_sensitive_range
    )
    return mean_square_dissimilarity(private_matrix(private), estimate)


def dissimilarity_after_fusion(
    private: Table,
    release: Table,
    sensitive_estimates: np.ndarray,
) -> float:
    """``P ∘ P̂``: protection remaining after the fusion attack (Figure 5)."""
    estimate = adversary_estimate_matrix(
        private, release, sensitive_estimates=sensitive_estimates
    )
    return mean_square_dissimilarity(private_matrix(private), estimate)
