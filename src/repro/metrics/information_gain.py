"""Adversarial information gain (Figure 6).

The paper quantifies the value of the web-based auxiliary information to the
adversary as::

    G = (P ∘ P') − (P ∘ P̂)

the drop in dissimilarity between the adversary's estimate of the private data
before and after information fusion.  ``G > 0`` means fusion moved the
adversary strictly closer to the truth; the paper's central empirical claim is
that ``G`` stays positive at every anonymization level but does not grow with
``k`` (stronger anonymization starves the fusion system of signal).
"""

from __future__ import annotations

import numpy as np

from repro.dataset.table import Table
from repro.metrics.dissimilarity import (
    dissimilarity_after_fusion,
    dissimilarity_before_fusion,
)

__all__ = ["information_gain", "information_gain_curve"]


def information_gain(
    private: Table,
    release: Table,
    sensitive_estimates: np.ndarray,
    assumed_sensitive_range: tuple[float, float],
) -> float:
    """``G = (P ∘ P') − (P ∘ P̂)`` for one release and one attack outcome."""
    before = dissimilarity_before_fusion(private, release, assumed_sensitive_range)
    after = dissimilarity_after_fusion(private, release, sensitive_estimates)
    return before - after


def information_gain_curve(
    before_values: np.ndarray | list[float], after_values: np.ndarray | list[float]
) -> np.ndarray:
    """Element-wise gain over a sweep of anonymization levels."""
    before = np.asarray(before_values, dtype=float)
    after = np.asarray(after_values, dtype=float)
    return before - after
