"""Census-style dataset generator (Adult-like schema).

The k-anonymity literature the paper builds on (Sweeney, LeFevre, Bayardo &
Agrawal) evaluates on census microdata with quasi-identifiers such as age,
education and hours worked.  Public census extracts are not bundled offline,
so this generator produces a census-like population with the same statistical
skeleton: demographic quasi-identifiers correlated with a sensitive annual
income, plus explicit names so the enterprise-release setting of the paper
still applies.  It is used by the cross-dataset tests and the anonymizer
ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.names import generate_names
from repro.dataset.schema import Attribute, AttributeKind, AttributeRole, Schema
from repro.dataset.table import Table
from repro.exceptions import ReproError

__all__ = ["CensusConfig", "CensusPopulation", "generate_census"]


@dataclass(frozen=True)
class CensusConfig:
    """Knobs of the census-like generator."""

    count: int = 500
    seed: int = 23

    def __post_init__(self) -> None:
        if self.count < 4:
            raise ReproError("the census population needs at least 4 records")


@dataclass
class CensusPopulation:
    """Census-like population: private table plus web-profile ground truth."""

    private: Table
    profiles: list[dict[str, object]]
    config: CensusConfig
    assumed_income_range: tuple[float, float]
    auxiliary_attributes: tuple[str, ...] = ("home_value", "vehicle_count")


def census_schema() -> Schema:
    """Schema of the census-like private table."""
    return Schema(
        [
            Attribute("name", AttributeRole.IDENTIFIER, AttributeKind.TEXT),
            Attribute("age", AttributeRole.QUASI_IDENTIFIER),
            Attribute("education_years", AttributeRole.QUASI_IDENTIFIER),
            Attribute("hours_per_week", AttributeRole.QUASI_IDENTIFIER),
            Attribute("occupation", AttributeRole.INSENSITIVE, AttributeKind.CATEGORICAL),
            Attribute("income", AttributeRole.SENSITIVE),
        ]
    )


_OCCUPATIONS = (
    "Tech", "Sales", "Admin", "Craft", "Service", "Professional", "Transport",
)


def generate_census(config: CensusConfig | None = None) -> CensusPopulation:
    """Generate the census-like population."""
    config = config or CensusConfig()
    rng = np.random.default_rng(config.seed)
    names = generate_names(config.count, seed=config.seed + 5)

    age = np.clip(np.round(rng.normal(42, 12, size=config.count)), 18, 80)
    education = np.clip(np.round(rng.normal(13, 2.5, size=config.count)), 6, 20)
    hours = np.clip(np.round(rng.normal(40, 9, size=config.count)), 10, 80)
    occupation = rng.choice(_OCCUPATIONS, size=config.count)

    income = (
        12_000.0
        + 1_900.0 * (education - 6)
        + 450.0 * hours
        + 220.0 * (age - 18)
    ) * np.exp(rng.normal(0.0, 0.25, size=config.count))
    income = np.round(income, 0)
    income_rank = income.argsort(kind="stable").argsort(kind="stable") / max(config.count - 1, 1)

    rows = []
    for i in range(config.count):
        rows.append(
            {
                "name": names[i],
                "age": float(age[i]),
                "education_years": float(education[i]),
                "hours_per_week": float(hours[i]),
                "occupation": str(occupation[i]),
                "income": float(income[i]),
            }
        )
    private = Table.from_rows(census_schema(), rows)

    home_value = np.round(80_000 + 700_000 * (0.7 * income_rank + 0.3 * rng.uniform(0, 1, size=config.count)), -3)
    vehicles = np.clip(np.round(0.5 + 3.5 * (0.6 * income_rank + 0.4 * rng.uniform(0, 1, size=config.count))), 0, 5)

    profiles = []
    for i in range(config.count):
        profiles.append(
            {
                "name": names[i],
                "home_value": float(home_value[i]),
                "vehicle_count": float(vehicles[i]),
                "position": str(occupation[i]),
            }
        )

    low = float(np.floor(income.min() / 5_000.0) * 5_000.0)
    high = float(np.ceil(income.max() / 5_000.0) * 5_000.0)
    return CensusPopulation(
        private=private,
        profiles=profiles,
        config=config,
        assumed_income_range=(low, high),
    )
