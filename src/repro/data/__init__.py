"""Synthetic dataset and web-profile generators."""

from repro.data.census import CensusConfig, CensusPopulation, generate_census
from repro.data.customers import (
    CustomerConfig,
    CustomerPopulation,
    adversary_auxiliary_example,
    customer_schema,
    enterprise_customers_example,
    generate_customers,
    sensitive_medical_example,
)
from repro.data.faculty import FacultyConfig, FacultyPopulation, faculty_schema, generate_faculty
from repro.data.names import generate_names
from repro.data.webgen import (
    build_corpus,
    corpus_for_census,
    corpus_for_customers,
    corpus_for_faculty,
)

__all__ = [
    "generate_names",
    "FacultyConfig",
    "FacultyPopulation",
    "faculty_schema",
    "generate_faculty",
    "CustomerConfig",
    "CustomerPopulation",
    "customer_schema",
    "generate_customers",
    "sensitive_medical_example",
    "enterprise_customers_example",
    "adversary_auxiliary_example",
    "CensusConfig",
    "CensusPopulation",
    "generate_census",
    "build_corpus",
    "corpus_for_faculty",
    "corpus_for_customers",
    "corpus_for_census",
]
