"""The paper's running financial-customer example, plus a scaled-up generator.

Tables I, II and IV of the paper walk through a 4-customer example of a
financial institution's enterprise database and the auxiliary data an insider
(Bob) harvests from the web.  The exact rows of those tables are reproduced
here so the table benchmarks and the quickstart example can print them, and a
seeded generator (:func:`generate_customers`) scales the same schema up to an
arbitrary population for experiments that need more than 4 records.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.names import generate_names
from repro.dataset.schema import Attribute, AttributeKind, AttributeRole, Schema
from repro.dataset.table import Table
from repro.exceptions import ReproError

__all__ = [
    "sensitive_medical_example",
    "enterprise_customers_example",
    "adversary_auxiliary_example",
    "CustomerConfig",
    "CustomerPopulation",
    "generate_customers",
]


def sensitive_medical_example() -> Table:
    """Table I: the classic identifier / quasi-identifier / sensitive example."""
    schema = Schema(
        [
            Attribute("name", AttributeRole.IDENTIFIER, AttributeKind.TEXT),
            Attribute("ssn", AttributeRole.IDENTIFIER, AttributeKind.TEXT),
            Attribute("zipcode", AttributeRole.QUASI_IDENTIFIER),
            Attribute("age", AttributeRole.QUASI_IDENTIFIER),
            Attribute("nationality", AttributeRole.QUASI_IDENTIFIER, AttributeKind.CATEGORICAL),
            Attribute("condition", AttributeRole.SENSITIVE, AttributeKind.CATEGORICAL),
        ]
    )
    rows = [
        {"name": "Alice", "ssn": "111-111-1111", "zipcode": 13053, "age": 28,
         "nationality": "Russian", "condition": "AIDS"},
        {"name": "Bob", "ssn": "222-222-2222", "zipcode": 13068, "age": 29,
         "nationality": "American", "condition": "Flu"},
        {"name": "Christine", "ssn": "333-333-3333", "zipcode": 13068, "age": 21,
         "nationality": "Japanese", "condition": "Cancer"},
        {"name": "Robert", "ssn": "444-444-4444", "zipcode": 13053, "age": 23,
         "nationality": "American", "condition": "Meningitis"},
    ]
    return Table.from_rows(schema, rows)


def customer_schema() -> Schema:
    """Schema of the enterprise customer database (Table II)."""
    return Schema(
        [
            Attribute("name", AttributeRole.IDENTIFIER, AttributeKind.TEXT),
            Attribute("invst_vol", AttributeRole.QUASI_IDENTIFIER,
                      description="Investment Volume Index (1-10)"),
            Attribute("invst_amt", AttributeRole.QUASI_IDENTIFIER,
                      description="Investment Amount Index (1-10)"),
            Attribute("valuation", AttributeRole.QUASI_IDENTIFIER,
                      description="Customer Valuation (1-10)"),
            Attribute("income", AttributeRole.SENSITIVE,
                      description="Customer Personal Income (USD)"),
        ]
    )


def enterprise_customers_example() -> Table:
    """Table II: the 4-customer enterprise database with incomes."""
    rows = [
        {"name": "Alice", "invst_vol": 8, "invst_amt": 7, "valuation": 4, "income": 91_250},
        {"name": "Bob", "invst_vol": 5, "invst_amt": 4, "valuation": 4, "income": 74_340},
        {"name": "Christine", "invst_vol": 4, "invst_amt": 5, "valuation": 5, "income": 75_123},
        {"name": "Robert", "invst_vol": 9, "invst_amt": 8, "valuation": 9, "income": 98_230},
    ]
    return Table.from_rows(customer_schema(), rows)


def adversary_auxiliary_example() -> Table:
    """Table IV: the auxiliary data Bob collects from the web about each customer."""
    schema = Schema(
        [
            Attribute("name", AttributeRole.IDENTIFIER, AttributeKind.TEXT),
            Attribute("employment", AttributeRole.QUASI_IDENTIFIER, AttributeKind.TEXT),
            Attribute("property_holdings", AttributeRole.QUASI_IDENTIFIER),
        ]
    )
    rows = [
        {"name": "Alice", "employment": "CEO, Deutsche Bank", "property_holdings": 3560},
        {"name": "Bob", "employment": "Manager, Verizon", "property_holdings": 1200},
        {"name": "Christine", "employment": "Assistant, NYU", "property_holdings": 720},
        {"name": "Robert", "employment": "CEO, Microsoft", "property_holdings": 5430},
    ]
    return Table.from_rows(schema, rows)


@dataclass(frozen=True)
class CustomerConfig:
    """Knobs of the scaled-up financial customer generator."""

    count: int = 500
    seed: int = 11
    income_range: tuple[float, float] = (40_000.0, 160_000.0)
    web_signal_quality: float = 0.7

    def __post_init__(self) -> None:
        if self.count < 4:
            raise ReproError("the customer population needs at least 4 records")
        if self.income_range[0] >= self.income_range[1]:
            raise ReproError("income_range must satisfy low < high")
        if not 0.0 <= self.web_signal_quality <= 1.0:
            raise ReproError("web_signal_quality must lie in [0, 1]")


@dataclass
class CustomerPopulation:
    """Scaled-up customer population: private table plus web-profile ground truth."""

    private: Table
    profiles: list[dict[str, object]]
    config: CustomerConfig
    assumed_income_range: tuple[float, float]
    auxiliary_attributes: tuple[str, ...] = ("property_holdings", "employment_seniority")


_EMPLOYERS = (
    "Deutsche Bank", "Verizon", "NYU", "Microsoft", "General Electric", "Pfizer",
    "Boeing", "Target", "Comcast", "Wells Fargo",
)
_POSITIONS_BY_TIER = (
    ("Assistant", "Clerk", "Associate"),
    ("Analyst", "Engineer", "Manager"),
    ("Director", "VP", "CEO"),
)


def generate_customers(config: CustomerConfig | None = None) -> CustomerPopulation:
    """Generate a larger financial-customer population with matched web profiles.

    Incomes drive (noisily) both the enterprise quasi-identifiers (investment
    volume/amount indices, customer valuation) and the web-observable
    covariates (property holdings, employment seniority, position tier), so the
    fusion attack has genuine — but imperfect — signal on both channels.
    """
    config = config or CustomerConfig()
    rng = np.random.default_rng(config.seed)
    names = generate_names(config.count, seed=config.seed + 1)

    low, high = config.income_range
    income = rng.lognormal(mean=0.0, sigma=0.45, size=config.count)
    income = low + (high - low) * (income - income.min()) / (income.max() - income.min())
    income = np.round(income, 0)
    income_rank = income.argsort(kind="stable").argsort(kind="stable") / max(config.count - 1, 1)

    def _index(signal_strength: float) -> np.ndarray:
        driver = signal_strength * income_rank + (1 - signal_strength) * rng.uniform(
            0, 1, size=config.count
        )
        return np.clip(np.round(1 + 9 * driver), 1, 10)

    invst_vol = _index(0.75)
    invst_amt = _index(0.8)
    valuation = _index(0.85)

    rows = []
    for i in range(config.count):
        rows.append(
            {
                "name": names[i],
                "invst_vol": float(invst_vol[i]),
                "invst_amt": float(invst_amt[i]),
                "valuation": float(valuation[i]),
                "income": float(income[i]),
            }
        )
    private = Table.from_rows(customer_schema(), rows)

    q = config.web_signal_quality
    property_driver = q * income_rank + (1 - q) * rng.uniform(0, 1, size=config.count)
    property_holdings = np.round(200 + 5_800 * property_driver + rng.normal(0, 150, size=config.count))
    property_holdings = np.clip(property_holdings, 100, None)
    seniority = np.clip(np.round(1 + 35 * (q * income_rank + (1 - q) * rng.uniform(0, 1, size=config.count))), 1, 40)

    profiles: list[dict[str, object]] = []
    for i in range(config.count):
        tier = min(int(income_rank[i] * 3), 2)
        position = _POSITIONS_BY_TIER[tier][int(rng.integers(0, len(_POSITIONS_BY_TIER[tier])))]
        employer = _EMPLOYERS[int(rng.integers(0, len(_EMPLOYERS)))]
        profiles.append(
            {
                "name": names[i],
                "employer": employer,
                "position": position,
                "property_holdings": float(property_holdings[i]),
                "employment_seniority": float(seniority[i]),
            }
        )

    return CustomerPopulation(
        private=private,
        profiles=profiles,
        config=config,
        assumed_income_range=config.income_range,
    )
