"""Convenience builders for simulated web corpora matched to generated populations.

The generators in this package produce a private table plus per-person web
profile ground truth; this module turns those profiles into a
:class:`~repro.fusion.web.SimulatedWebCorpus` with the noise/coverage knobs the
experiments sweep, and exposes one-call builders for the faculty, customer and
census populations.
"""

from __future__ import annotations

from typing import Sequence

from repro.data.census import CensusPopulation
from repro.data.customers import CustomerPopulation
from repro.data.faculty import FacultyPopulation
from repro.fusion.web import SimulatedWebCorpus

__all__ = [
    "build_corpus",
    "corpus_for_faculty",
    "corpus_for_customers",
    "corpus_for_census",
]


def build_corpus(
    profiles: Sequence[dict[str, object]],
    attribute_names: Sequence[str],
    noise_level: float = 0.05,
    coverage: float = 1.0,
    name_variant_probability: float = 0.5,
    distractor_count: int = 0,
    seed: int = 0,
) -> SimulatedWebCorpus:
    """Build a simulated web corpus from profile ground truth."""
    return SimulatedWebCorpus.from_profiles(
        profiles=profiles,
        attribute_names=attribute_names,
        noise_level=noise_level,
        coverage=coverage,
        name_variant_probability=name_variant_probability,
        distractor_count=distractor_count,
        seed=seed,
    )


def corpus_for_faculty(
    population: FacultyPopulation,
    noise_level: float = 0.05,
    coverage: float = 0.95,
    name_variant_probability: float = 0.5,
    distractor_count: int = 25,
    seed: int | None = None,
) -> SimulatedWebCorpus:
    """The default web corpus for a faculty population (employee home pages)."""
    return build_corpus(
        population.profiles,
        population.auxiliary_attributes,
        noise_level=noise_level,
        coverage=coverage,
        name_variant_probability=name_variant_probability,
        distractor_count=distractor_count,
        seed=population.config.seed if seed is None else seed,
    )


def corpus_for_customers(
    population: CustomerPopulation,
    noise_level: float = 0.08,
    coverage: float = 0.85,
    name_variant_probability: float = 0.6,
    distractor_count: int = 40,
    seed: int | None = None,
) -> SimulatedWebCorpus:
    """The default web corpus for a customer population (social/professional pages)."""
    return build_corpus(
        population.profiles,
        population.auxiliary_attributes,
        noise_level=noise_level,
        coverage=coverage,
        name_variant_probability=name_variant_probability,
        distractor_count=distractor_count,
        seed=population.config.seed if seed is None else seed,
    )


def corpus_for_census(
    population: CensusPopulation,
    noise_level: float = 0.1,
    coverage: float = 0.7,
    name_variant_probability: float = 0.5,
    distractor_count: int = 50,
    seed: int | None = None,
) -> SimulatedWebCorpus:
    """The default web corpus for a census-like population (property/registry pages)."""
    return build_corpus(
        population.profiles,
        population.auxiliary_attributes,
        noise_level=noise_level,
        coverage=coverage,
        name_variant_probability=name_variant_probability,
        distractor_count=distractor_count,
        seed=population.config.seed if seed is None else seed,
    )
