"""Deterministic synthetic person names.

Every generated dataset needs explicit identifiers (the whole point of the
paper is that identifiers stay in the release), so this module provides a
seeded generator of unique, realistic-looking full names.  Uniqueness matters:
the linkage step would otherwise be ambiguous by construction rather than by
noise.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ReproError

__all__ = ["generate_names", "FIRST_NAMES", "LAST_NAMES"]

FIRST_NAMES = (
    "Alice", "Robert", "Christine", "David", "Elena", "Frank", "Grace", "Henry",
    "Irene", "James", "Karen", "Liam", "Maria", "Nathan", "Olivia", "Peter",
    "Quentin", "Rachel", "Samuel", "Teresa", "Ulrich", "Victoria", "Walter",
    "Ximena", "Yusuf", "Zoe", "Amir", "Beatrice", "Carlos", "Diana", "Emil",
    "Fatima", "George", "Hannah", "Igor", "Julia", "Kevin", "Lena", "Marcus",
    "Nadia", "Oscar", "Priya", "Raj", "Sofia", "Thomas", "Uma", "Vikram",
    "Wendy", "Xavier", "Yara",
)

LAST_NAMES = (
    "Anderson", "Brooks", "Carter", "Dawson", "Edwards", "Fisher", "Garcia",
    "Hughes", "Ivanov", "Johnson", "Keller", "Larson", "Mitchell", "Nguyen",
    "Olsen", "Patel", "Quinn", "Ramirez", "Stevens", "Turner", "Underwood",
    "Vasquez", "Walsh", "Xu", "Young", "Zhang", "Acharya", "Banerjee", "Costa",
    "Dubois", "Eriksen", "Fontaine", "Gupta", "Hassan", "Ito", "Jensen",
    "Kowalski", "Lindgren", "Moreau", "Novak", "Okafor", "Pereira", "Rossi",
    "Schmidt", "Tanaka", "Ueda", "Varga", "Weber", "Yamamoto", "Zidane",
)


def generate_names(count: int, seed: int = 0) -> list[str]:
    """``count`` unique names, deterministic in ``seed``.

    The first ``len(FIRST_NAMES) * len(LAST_NAMES)`` names are plain
    "First Last" combinations (identical to what earlier versions produced for
    the same seed); beyond that, middle initials ``A.`` through ``Z.`` extend
    the space 27-fold, and double middle initials (``"A. B."``) extend it a
    further 676-fold, so population-scale datasets (hundreds of thousands of
    records, as the anonymization and linkage benchmarks use) still get
    unique identifiers.  Every prefix is stable: asking for more names never
    changes the ones already generated for the same seed.  Raises
    :class:`~repro.exceptions.ReproError` when ``count`` exceeds the extended
    capacity.
    """
    capacity = len(FIRST_NAMES) * len(LAST_NAMES)
    middle_initials = tuple(chr(ord("A") + i) for i in range(26))
    single_capacity = capacity * len(middle_initials)
    double_capacity = capacity * len(middle_initials) ** 2
    extended_capacity = capacity + single_capacity + double_capacity
    if count < 0:
        raise ReproError("count must be non-negative")
    if count > extended_capacity:
        raise ReproError(
            f"cannot generate {count} unique names; capacity is {extended_capacity}"
        )
    rng = np.random.default_rng(seed)
    pairs = [(first, last) for first in FIRST_NAMES for last in LAST_NAMES]
    order = rng.permutation(len(pairs))
    names = [
        f"{pairs[i][0]} {pairs[i][1]}" for i in order[: min(count, capacity)]
    ]
    for extra in range(max(0, count - capacity)):
        first, last = pairs[order[extra % capacity]]
        if extra < single_capacity:
            middle = middle_initials[extra // capacity] + "."
        else:
            block = (extra - single_capacity) // capacity
            middle = (
                middle_initials[block // len(middle_initials)]
                + ". "
                + middle_initials[block % len(middle_initials)]
                + "."
            )
        names.append(f"{first} {middle} {last}")
    return names
