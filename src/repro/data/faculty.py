"""Synthetic university-faculty salary dataset (the paper's experimental data).

The paper's experiments use a proprietary dataset "collected from a real-life
enterprise (a public university)" containing faculty salaries (sensitive) and
performance-review numbers (non-sensitive), together with the faculty's web
pages as the auxiliary channel.  Neither is published, so this generator
produces a calibrated synthetic equivalent (DESIGN.md §4):

* every faculty member has a **rank** (assistant / associate / full professor),
  a **department**, **years of service**, and three **performance review
  scores** on a 1-10 scale (research, teaching, service) — these are the
  quasi-identifiers an enterprise release would carry;
* the **salary** (sensitive) is drawn from a rank-conditional base plus
  contributions from the review scores and seniority plus lognormal noise, so
  review scores genuinely predict salary — the property the fusion attack
  exploits through the release;
* each person also has **web-observable covariates** — employment seniority,
  an estimated property-holdings value, an external-activity index — generated
  jointly with the salary so that web auxiliary data carries *additional*
  signal beyond the release, which is the property the attack exploits through
  the web channel.

Both the private table and the per-person web profiles are returned so the
experiments can build the release and the simulated web corpus from one
consistent population.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.names import generate_names
from repro.dataset.schema import Attribute, AttributeKind, AttributeRole, Schema
from repro.dataset.table import Table
from repro.exceptions import ReproError

__all__ = ["FacultyConfig", "FacultyPopulation", "generate_faculty"]

_RANKS = ("assistant", "associate", "full")
_RANK_BASE_SALARY = {"assistant": 62_000.0, "associate": 70_000.0, "full": 78_000.0}
_RANK_PROBABILITIES = (0.35, 0.35, 0.30)
_DEPARTMENTS = (
    "Computer Science",
    "Electrical Engineering",
    "Statistics",
    "Mathematics",
    "Economics",
    "Biology",
)


@dataclass(frozen=True)
class FacultyConfig:
    """Knobs of the faculty population generator.

    Parameters
    ----------
    count:
        Number of faculty records.
    seed:
        RNG seed; the population is deterministic given the seed.
    review_salary_coupling:
        Strength (in dollars per review point) of the contribution of the
        average review score to the salary.  Performance reviews at the
        paper's source institution feed merit raises, so the released review
        scores are genuine salary predictors; this knob controls how strong
        that merit component is.
    web_signal_quality:
        How strongly the web-observable covariates track the salary, in
        ``[0, 1]``; 0 makes the web channel pure noise, 1 makes it a very
        reliable proxy.  The paper's qualitative results need any value
        comfortably above 0.
    salary_noise:
        Standard deviation of the multiplicative lognormal salary noise.
    """

    count: int = 200
    seed: int = 7
    review_salary_coupling: float = 6_000.0
    web_signal_quality: float = 0.75
    salary_noise: float = 0.05

    def __post_init__(self) -> None:
        if self.count < 4:
            raise ReproError("the faculty population needs at least 4 records")
        if not 0.0 <= self.web_signal_quality <= 1.0:
            raise ReproError("web_signal_quality must lie in [0, 1]")
        if self.salary_noise < 0:
            raise ReproError("salary_noise must be non-negative")


@dataclass
class FacultyPopulation:
    """The generated population: private table plus web-profile ground truth."""

    private: Table
    profiles: list[dict[str, object]]
    config: FacultyConfig
    #: The salary range an adversary would plausibly assume for this population
    #: (used as the fusion system's output universe).
    assumed_salary_range: tuple[float, float] = (50_000.0, 200_000.0)
    auxiliary_attributes: tuple[str, ...] = (
        "employment_seniority",
        "property_holdings",
        "external_activity",
    )


def faculty_schema() -> Schema:
    """Schema of the private faculty table ``P``."""
    return Schema(
        [
            Attribute("name", AttributeRole.IDENTIFIER, AttributeKind.TEXT),
            Attribute("department", AttributeRole.INSENSITIVE, AttributeKind.CATEGORICAL),
            Attribute("rank", AttributeRole.INSENSITIVE, AttributeKind.CATEGORICAL),
            Attribute("research_score", AttributeRole.QUASI_IDENTIFIER),
            Attribute("teaching_score", AttributeRole.QUASI_IDENTIFIER),
            Attribute("service_score", AttributeRole.QUASI_IDENTIFIER),
            Attribute("years_of_service", AttributeRole.QUASI_IDENTIFIER),
            Attribute("salary", AttributeRole.SENSITIVE),
        ]
    )


def generate_faculty(config: FacultyConfig | None = None) -> FacultyPopulation:
    """Generate the synthetic faculty population."""
    config = config or FacultyConfig()
    rng = np.random.default_rng(config.seed)
    names = generate_names(config.count, seed=config.seed)

    ranks = rng.choice(_RANKS, size=config.count, p=_RANK_PROBABILITIES)
    departments = rng.choice(_DEPARTMENTS, size=config.count)

    years = np.empty(config.count)
    years[ranks == "assistant"] = rng.uniform(1, 7, size=(ranks == "assistant").sum())
    years[ranks == "associate"] = rng.uniform(5, 16, size=(ranks == "associate").sum())
    years[ranks == "full"] = rng.uniform(10, 35, size=(ranks == "full").sum())
    years = np.round(years).astype(int)

    # Review scores: latent "quality" per person drives all three scores, with
    # per-score noise, clipped to the enterprise's 1-10 review scale.
    quality = rng.normal(0.0, 1.0, size=config.count)
    def _score(weight: float) -> np.ndarray:
        raw = 5.5 + 1.8 * weight * quality + rng.normal(0.0, 1.0, size=config.count)
        return np.clip(np.round(raw, 1), 1.0, 10.0)

    research = _score(1.0)
    teaching = _score(0.6)
    service = _score(0.4)
    mean_review = (research + teaching + service) / 3.0

    # The salary is driven by the *released* quasi-identifiers (review scores,
    # years of service) plus a modest rank-dependent base and multiplicative
    # noise, mirroring a merit-raise pay model.  Because the drivers are
    # exactly the columns a release generalizes, coarsening the release
    # genuinely degrades what an adversary can infer from it.
    base = np.array([_RANK_BASE_SALARY[r] for r in ranks])
    salary = (
        base
        + config.review_salary_coupling * (mean_review - 5.5)
        + 1_600.0 * years
    )
    salary = salary * np.exp(rng.normal(0.0, config.salary_noise, size=config.count))
    salary = np.round(salary, 0)

    rows = []
    for i in range(config.count):
        rows.append(
            {
                "name": names[i],
                "department": str(departments[i]),
                "rank": str(ranks[i]),
                "research_score": float(research[i]),
                "teaching_score": float(teaching[i]),
                "service_score": float(service[i]),
                "years_of_service": int(years[i]),
                "salary": float(salary[i]),
            }
        )
    private = Table.from_rows(faculty_schema(), rows)

    # Web-observable covariates.  Their informativeness about the salary is
    # controlled by web_signal_quality: a convex mixture between a salary-driven
    # component and an independent noise component.
    q = config.web_signal_quality
    salary_rank = salary.argsort(kind="stable").argsort(kind="stable") / max(config.count - 1, 1)
    noise_u = rng.uniform(0.0, 1.0, size=config.count)

    seniority_years = years + np.round(rng.normal(2.0, 1.5, size=config.count))
    seniority_years = np.clip(seniority_years, 1, 45)
    property_driver = q * salary_rank + (1 - q) * noise_u
    property_holdings = np.round(150_000.0 + 650_000.0 * property_driver + rng.normal(0, 25_000, size=config.count), -3)
    property_holdings = np.clip(property_holdings, 50_000.0, None)
    activity_driver = q * salary_rank + (1 - q) * rng.uniform(0.0, 1.0, size=config.count)
    external_activity = np.clip(np.round(1.0 + 9.0 * activity_driver, 1), 1.0, 10.0)

    profiles: list[dict[str, object]] = []
    for i in range(config.count):
        profiles.append(
            {
                "name": names[i],
                "employer": "State University",
                "position": f"{str(ranks[i]).title()} Professor of {departments[i]}",
                "employment_seniority": float(seniority_years[i]),
                "property_holdings": float(property_holdings[i]),
                "external_activity": float(external_activity[i]),
            }
        )

    low = float(np.floor(salary.min() / 10_000.0) * 10_000.0)
    high = float(np.ceil(salary.max() / 10_000.0) * 10_000.0)
    return FacultyPopulation(
        private=private,
        profiles=profiles,
        config=config,
        assumed_salary_range=(low, high),
    )
