"""Mondrian multidimensional k-anonymity (LeFevre, DeWitt & Ramakrishnan).

Mondrian is the greedy top-down partitioning baseline cited by the paper
([3] in its bibliography).  The algorithm recursively splits the record set on
the median of the quasi-identifier with the widest (normalized) range, as long
as both halves retain at least ``k`` records; leaves of the recursion become
the equivalence classes.

Compared with MDAV (the scheme used by the paper's experiments) Mondrian tends
to produce classes of more uneven size, which is precisely why it is useful as
an ablation baseline for the utility and protection curves.
"""

from __future__ import annotations

import numpy as np

from repro.anonymize.base import BaseAnonymizer, EquivalenceClass
from repro.dataset.table import Table
from repro.exceptions import AnonymizationError

__all__ = ["MondrianAnonymizer"]


class MondrianAnonymizer(BaseAnonymizer):
    """Greedy median-split multidimensional partitioning."""

    name = "mondrian"

    def __init__(self, release_style: str = "interval", strict: bool = True) -> None:
        """``strict`` partitioning forbids splitting a value across partitions."""
        super().__init__(release_style=release_style)
        self.strict = strict

    def partition(self, table: Table, k: int) -> list[EquivalenceClass]:
        matrix = table.quasi_identifier_matrix()
        if np.isnan(matrix).any():
            raise AnonymizationError(
                "Mondrian requires fully numeric quasi-identifiers without missing values"
            )
        spans = matrix.max(axis=0) - matrix.min(axis=0)
        spans = np.where(spans <= 0, 1.0, spans)
        classes: list[EquivalenceClass] = []
        self._split(matrix, spans, list(range(table.num_rows)), k, classes)
        return classes

    def _split(
        self,
        matrix: np.ndarray,
        spans: np.ndarray,
        indices: list[int],
        k: int,
        out: list[EquivalenceClass],
    ) -> None:
        if len(indices) < 2 * k:
            out.append(EquivalenceClass(tuple(sorted(indices))))
            return

        subset = matrix[indices]
        normalized_ranges = (subset.max(axis=0) - subset.min(axis=0)) / spans
        for dimension in np.argsort(normalized_ranges)[::-1]:
            dimension = int(dimension)
            if normalized_ranges[dimension] <= 0:
                break
            left, right = self._partition_on(subset[:, dimension], indices, k)
            if left and right:
                self._split(matrix, spans, left, k, out)
                self._split(matrix, spans, right, k, out)
                return
        out.append(EquivalenceClass(tuple(sorted(indices))))

    def _partition_on(
        self, values: np.ndarray, indices: list[int], k: int
    ) -> tuple[list[int], list[int]]:
        """Split ``indices`` at the median of ``values``; empty lists when invalid."""
        median = float(np.median(values))
        if self.strict:
            left = [idx for idx, v in zip(indices, values) if v <= median]
            right = [idx for idx, v in zip(indices, values) if v > median]
        else:
            order = np.argsort(values, kind="stable")
            half = len(indices) // 2
            left = [indices[int(i)] for i in order[:half]]
            right = [indices[int(i)] for i in order[half:]]
        if len(left) < k or len(right) < k:
            return [], []
        return left, right
