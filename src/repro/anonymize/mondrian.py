"""Mondrian multidimensional k-anonymity (LeFevre, DeWitt & Ramakrishnan).

Mondrian is the greedy top-down partitioning baseline cited by the paper
([3] in its bibliography).  The algorithm recursively splits the record set on
the median of the quasi-identifier with the widest (normalized) range, as long
as both halves retain at least ``k`` records; leaves of the recursion become
the equivalence classes.

The recursion carries ``np.intp`` index arrays instead of Python lists: the
median comes from ``np.median`` (introselect partition under the hood), strict
splits are boolean-mask gathers on the index array, and relaxed splits use a
stable argsort of the candidate dimension — every partitioning step is a
vectorized numpy operation over the recursion's own index array.

Compared with MDAV (the scheme used by the paper's experiments) Mondrian tends
to produce classes of more uneven size, which is precisely why it is useful as
an ablation baseline for the utility and protection curves.
"""

from __future__ import annotations

import numpy as np

from repro.anonymize.base import BaseAnonymizer, EquivalenceClass
from repro.dataset.table import Table
from repro.exceptions import AnonymizationError

__all__ = ["MondrianAnonymizer"]


_EMPTY = np.empty(0, dtype=np.intp)


class MondrianAnonymizer(BaseAnonymizer):
    """Greedy median-split multidimensional partitioning."""

    name = "mondrian"

    def __init__(self, release_style: str = "interval", strict: bool = True) -> None:
        """``strict`` partitioning forbids splitting a value across partitions."""
        super().__init__(release_style=release_style)
        self.strict = strict

    def partition(self, table: Table, k: int) -> list[EquivalenceClass]:
        matrix = table.quasi_identifier_matrix()
        if np.isnan(matrix).any():
            raise AnonymizationError(
                "Mondrian requires fully numeric quasi-identifiers without missing values"
            )
        spans = matrix.max(axis=0) - matrix.min(axis=0)
        spans = np.where(spans <= 0, 1.0, spans)
        classes: list[EquivalenceClass] = []
        self._split(matrix, spans, np.arange(table.num_rows, dtype=np.intp), k, classes)
        return classes

    def _split(
        self,
        matrix: np.ndarray,
        spans: np.ndarray,
        indices: np.ndarray,
        k: int,
        out: list[EquivalenceClass],
    ) -> None:
        if indices.size < 2 * k:
            out.append(EquivalenceClass(tuple(np.sort(indices).tolist())))
            return

        subset = matrix[indices]
        normalized_ranges = (subset.max(axis=0) - subset.min(axis=0)) / spans
        for dimension in np.argsort(normalized_ranges)[::-1]:
            dimension = int(dimension)
            if normalized_ranges[dimension] <= 0:
                break
            left, right = self._partition_on(subset[:, dimension], indices, k)
            if left.size and right.size:
                self._split(matrix, spans, left, k, out)
                self._split(matrix, spans, right, k, out)
                return
        out.append(EquivalenceClass(tuple(np.sort(indices).tolist())))

    def _partition_on(
        self, values: np.ndarray, indices: np.ndarray, k: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Split ``indices`` at the median of ``values``; empty arrays when invalid."""
        median = float(np.median(values))
        if self.strict:
            below = values <= median
            left = indices[below]
            right = indices[~below]
        else:
            order = np.argsort(values, kind="stable")
            half = indices.size // 2
            left = indices[order[:half]]
            right = indices[order[half:]]
        if left.size < k or right.size < k:
            return _EMPTY, _EMPTY
        return left, right
