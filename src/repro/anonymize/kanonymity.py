"""K-anonymity predicates and equivalence-class extraction.

These functions check the anonymity of a *release* (a table whose
quasi-identifier cells may be generalized) independently of which algorithm
produced it.  They are used by the test-suite invariants and by the
:mod:`repro.metrics.utility` discernibility metric, which needs the class
structure of a release.

Class extraction is vectorized over the columnar table core: each
quasi-identifier column is encoded into an integer *signature code* array
(``np.unique`` for numeric columns, an identity-memoized canonical-form dictionary
for object columns whose generalized cells are shared per class), the
per-column codes are folded into one row-signature code, and the equivalence
classes fall out of a single ``np.unique`` pass — no per-row tuple building on
the hot path.  The per-row :func:`quasi_identifier_signature` form is kept for
spot checks and API compatibility.
"""

from __future__ import annotations

from collections import Counter
from typing import Hashable

import numpy as np

from repro.anonymize.base import EquivalenceClass
from repro.dataset.generalization import CategorySet, Interval, Suppressed
from repro.dataset.table import Table

__all__ = [
    "quasi_identifier_signature",
    "release_signature_codes",
    "equivalence_classes_of_release",
    "anonymity_level",
    "is_k_anonymous",
]


def _cell_signature(value: object) -> Hashable:
    """A hashable canonical form of a release cell."""
    if isinstance(value, Interval):
        return ("interval", value.low, value.high)
    if isinstance(value, CategorySet):
        return ("categories", value.members)
    if isinstance(value, Suppressed):
        return ("suppressed",)
    if isinstance(value, float) and value.is_integer():
        return ("value", int(value))
    return ("value", value)


def quasi_identifier_signature(table: Table, row_index: int) -> tuple[Hashable, ...]:
    """The hashable quasi-identifier signature of one release row."""
    return tuple(
        _cell_signature(table.cell(row_index, name))
        for name in table.schema.quasi_identifiers
    )


def _column_signature_codes(table: Table, name: str) -> np.ndarray:
    """Integer codes such that two rows share a code iff their cells match.

    Numeric columns go through one ``np.unique``; ``NaN`` cells are kept
    distinct (a ``NaN`` quasi-identifier never matches another row, exactly as
    the per-row tuple signatures behave).  Object columns canonicalize each
    *distinct object* once (release columns share one generalized cell object
    per equivalence class) and match by :func:`_cell_signature` equality.
    """
    array = table.column_array(name)
    if array.dtype.kind in "if":
        _, codes = np.unique(array, return_inverse=True)
        codes = codes.astype(np.int64, copy=False)
        if array.dtype.kind == "f":
            missing = np.isnan(array)
            if missing.any():
                base = int(codes.max(initial=-1)) + 1
                codes[missing] = base + np.arange(int(missing.sum()))
        return codes

    codes = np.empty(array.shape[0], dtype=np.int64)
    by_identity: dict[int, int] = {}
    by_signature: dict[Hashable, int] = {}
    for i, value in enumerate(array):
        code = by_identity.get(id(value))
        if code is None:
            signature = _cell_signature(value)
            code = by_signature.get(signature)
            if code is None:
                code = len(by_signature)
                by_signature[signature] = code
            by_identity[id(value)] = code
        codes[i] = code
    return codes


def release_signature_codes(release: Table) -> np.ndarray:
    """Row-signature codes over the quasi-identifiers of a release.

    Two rows receive the same code iff their generalized quasi-identifier
    signatures are identical.  Codes are compacted after every column fold so
    they stay below the row count (no overflow for wide quasi-identifier
    sets).
    """
    qi_names = release.schema.quasi_identifiers
    combined = np.zeros(release.num_rows, dtype=np.int64)
    for name in qi_names:
        column_codes = _column_signature_codes(release, name)
        cardinality = int(column_codes.max(initial=-1)) + 1
        _, combined = np.unique(
            combined * cardinality + column_codes, return_inverse=True
        )
        combined = combined.astype(np.int64, copy=False)
    return combined


def equivalence_classes_of_release(release: Table) -> list[EquivalenceClass]:
    """Group release rows by identical (generalized) quasi-identifier signatures.

    Classes come back in order of first appearance with ascending row indices
    inside each class, matching the historical per-row grouping.
    """
    if release.num_rows == 0:
        return []
    codes = release_signature_codes(release)
    _, first_seen, counts = np.unique(codes, return_index=True, return_counts=True)
    grouped_rows = np.argsort(codes, kind="stable")
    boundaries = np.cumsum(counts)[:-1]
    groups = np.split(grouped_rows, boundaries)
    appearance_order = np.argsort(first_seen, kind="stable")
    return [
        EquivalenceClass(tuple(groups[g].tolist())) for g in appearance_order
    ]


def anonymity_level(release: Table) -> int:
    """The k-anonymity level actually achieved by a release.

    This is the size of the smallest equivalence class induced by the
    generalized quasi-identifier signatures.  An empty release has level 0.
    """
    if release.num_rows == 0:
        return 0
    codes = release_signature_codes(release)
    return int(np.bincount(codes).min())


def is_k_anonymous(release: Table, k: int) -> bool:
    """Whether the release satisfies k-anonymity for the given ``k``."""
    if k <= 1:
        return release.num_rows > 0 or k <= 0
    return anonymity_level(release) >= k


def class_size_histogram(release: Table) -> dict[int, int]:
    """Histogram ``{class size: number of classes}`` of a release."""
    classes = equivalence_classes_of_release(release)
    return dict(Counter(c.size for c in classes))
