"""K-anonymity predicates and equivalence-class extraction.

These functions check the anonymity of a *release* (a table whose
quasi-identifier cells may be generalized) independently of which algorithm
produced it.  They are used by the test-suite invariants and by the
:mod:`repro.metrics.utility` discernibility metric, which needs the class
structure of a release.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Hashable

from repro.anonymize.base import EquivalenceClass
from repro.dataset.generalization import CategorySet, Interval, Suppressed
from repro.dataset.table import Table

__all__ = [
    "quasi_identifier_signature",
    "equivalence_classes_of_release",
    "anonymity_level",
    "is_k_anonymous",
]


def _cell_signature(value: object) -> Hashable:
    """A hashable canonical form of a release cell."""
    if isinstance(value, Interval):
        return ("interval", value.low, value.high)
    if isinstance(value, CategorySet):
        return ("categories", value.members)
    if isinstance(value, Suppressed):
        return ("suppressed",)
    if isinstance(value, float) and value.is_integer():
        return ("value", int(value))
    return ("value", value)


def quasi_identifier_signature(table: Table, row_index: int) -> tuple[Hashable, ...]:
    """The hashable quasi-identifier signature of one release row."""
    return tuple(
        _cell_signature(table.cell(row_index, name))
        for name in table.schema.quasi_identifiers
    )


def equivalence_classes_of_release(release: Table) -> list[EquivalenceClass]:
    """Group release rows by identical (generalized) quasi-identifier signatures."""
    groups: dict[tuple[Hashable, ...], list[int]] = defaultdict(list)
    for i in range(release.num_rows):
        groups[quasi_identifier_signature(release, i)].append(i)
    return [EquivalenceClass(tuple(indices)) for indices in groups.values()]


def anonymity_level(release: Table) -> int:
    """The k-anonymity level actually achieved by a release.

    This is the size of the smallest equivalence class induced by the
    generalized quasi-identifier signatures.  An empty release has level 0.
    """
    if release.num_rows == 0:
        return 0
    classes = equivalence_classes_of_release(release)
    return min(c.size for c in classes)


def is_k_anonymous(release: Table, k: int) -> bool:
    """Whether the release satisfies k-anonymity for the given ``k``."""
    if k <= 1:
        return release.num_rows > 0 or k <= 0
    return anonymity_level(release) >= k


def class_size_histogram(release: Table) -> dict[int, int]:
    """Histogram ``{class size: number of classes}`` of a release."""
    classes = equivalence_classes_of_release(release)
    return dict(Counter(c.size for c in classes))
