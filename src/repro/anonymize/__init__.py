"""Partitioning-based anonymization substrate (MDAV, Mondrian, Datafly, ...)."""

from repro.anonymize.base import (
    AnonymizationResult,
    BaseAnonymizer,
    EquivalenceClass,
    build_release,
    validate_k,
)
from repro.anonymize.clustering import GreedyClusterAnonymizer
from repro.anonymize.datafly import DataflyAnonymizer, default_hierarchies
from repro.anonymize.kanonymity import (
    anonymity_level,
    class_size_histogram,
    equivalence_classes_of_release,
    is_k_anonymous,
    quasi_identifier_signature,
)
from repro.anonymize.ldiversity import (
    discretize_sensitive,
    distinct_diversity,
    entropy_diversity,
    is_distinct_l_diverse,
    is_entropy_l_diverse,
)
from repro.anonymize.mdav import MDAVAnonymizer
from repro.anonymize.mondrian import MondrianAnonymizer
from repro.anonymize.suppression import (
    drop_identifiers,
    drop_sensitive,
    naive_release,
    suppress_cells,
)
from repro.anonymize.tcloseness import closeness, is_t_close, ordered_emd

__all__ = [
    "AnonymizationResult",
    "BaseAnonymizer",
    "EquivalenceClass",
    "build_release",
    "validate_k",
    "MDAVAnonymizer",
    "MondrianAnonymizer",
    "DataflyAnonymizer",
    "GreedyClusterAnonymizer",
    "default_hierarchies",
    "anonymity_level",
    "class_size_histogram",
    "equivalence_classes_of_release",
    "is_k_anonymous",
    "quasi_identifier_signature",
    "discretize_sensitive",
    "distinct_diversity",
    "entropy_diversity",
    "is_distinct_l_diverse",
    "is_entropy_l_diverse",
    "closeness",
    "is_t_close",
    "ordered_emd",
    "drop_identifiers",
    "drop_sensitive",
    "naive_release",
    "suppress_cells",
]
