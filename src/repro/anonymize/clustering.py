"""Greedy clustering-based anonymization (r-gather style).

The paper's taxonomy of partitioning schemes includes clustering-based
approaches (Aggarwal et al., "Achieving anonymity via clustering").  This
module provides a simple greedy variant: repeatedly pick an unassigned seed
record (the one farthest from the global centroid), gather its ``k-1`` nearest
unassigned records into a cluster, and attach any final leftovers to their
nearest cluster.  It differs from MDAV by growing one cluster at a time from a
single seed instead of two per iteration, which yields a slightly different
utility/protection trade-off and serves as an additional ablation baseline.

Like MDAV, the gathering loop works over a compacted point matrix plus a
global-row-index array: cluster members are selected with a partition-based
k-smallest pick on one distance buffer and retired with a boolean-mask
compaction, instead of rebuilding Python index lists per cluster.
"""

from __future__ import annotations

import numpy as np

from repro.anonymize.base import BaseAnonymizer, EquivalenceClass
from repro.anonymize.mdav import _k_smallest, _sq_distances
from repro.dataset.statistics import standardize_matrix
from repro.dataset.table import Table
from repro.exceptions import AnonymizationError

__all__ = ["GreedyClusterAnonymizer"]


class GreedyClusterAnonymizer(BaseAnonymizer):
    """Single-seed greedy k-gather clustering over quasi-identifiers."""

    name = "greedy-cluster"

    def partition(self, table: Table, k: int) -> list[EquivalenceClass]:
        matrix = table.quasi_identifier_matrix()
        if np.isnan(matrix).any():
            raise AnonymizationError(
                "clustering anonymization requires numeric quasi-identifiers without missing values"
            )
        points, _, _ = standardize_matrix(matrix)
        centroid = points.mean(axis=0)

        active_rows = np.arange(points.shape[0], dtype=np.intp)
        active_points = points
        clusters: list[list[int]] = []
        while active_rows.size >= 2 * k:
            seed_position = int(np.argmax(_sq_distances(active_points, centroid)))
            distances = _sq_distances(active_points, active_points[seed_position])
            chosen = _k_smallest(distances, k)
            clusters.append(active_rows[chosen].tolist())
            keep = np.ones(active_rows.size, dtype=bool)
            keep[chosen] = False
            active_rows = active_rows[keep]
            active_points = active_points[keep]

        if active_rows.size:
            if active_rows.size >= k or not clusters:
                clusters.append(active_rows.tolist())
            else:
                for index in active_rows.tolist():
                    nearest = min(
                        range(len(clusters)),
                        key=lambda c: float(
                            _sq_distances(points[clusters[c]], points[index]).min()
                        ),
                    )
                    clusters[nearest].append(index)

        return [EquivalenceClass(tuple(sorted(cluster))) for cluster in clusters]
