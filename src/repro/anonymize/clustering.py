"""Greedy clustering-based anonymization (r-gather style).

The paper's taxonomy of partitioning schemes includes clustering-based
approaches (Aggarwal et al., "Achieving anonymity via clustering").  This
module provides a simple greedy variant: repeatedly pick an unassigned seed
record (the one farthest from the global centroid), gather its ``k-1`` nearest
unassigned records into a cluster, and attach any final leftovers to their
nearest cluster.  It differs from MDAV by growing one cluster at a time from a
single seed instead of two per iteration, which yields a slightly different
utility/protection trade-off and serves as an additional ablation baseline.
"""

from __future__ import annotations

import numpy as np

from repro.anonymize.base import BaseAnonymizer, EquivalenceClass
from repro.dataset.statistics import standardize_matrix
from repro.dataset.table import Table
from repro.exceptions import AnonymizationError

__all__ = ["GreedyClusterAnonymizer"]


class GreedyClusterAnonymizer(BaseAnonymizer):
    """Single-seed greedy k-gather clustering over quasi-identifiers."""

    name = "greedy-cluster"

    def partition(self, table: Table, k: int) -> list[EquivalenceClass]:
        matrix = table.quasi_identifier_matrix()
        if np.isnan(matrix).any():
            raise AnonymizationError(
                "clustering anonymization requires numeric quasi-identifiers without missing values"
            )
        points, _, _ = standardize_matrix(matrix)
        centroid = points.mean(axis=0)

        remaining = list(range(points.shape[0]))
        clusters: list[list[int]] = []
        while len(remaining) >= 2 * k:
            subset = points[remaining]
            seed_local = int(np.argmax(((subset - centroid) ** 2).sum(axis=1)))
            seed_global = remaining[seed_local]
            distances = ((subset - points[seed_global]) ** 2).sum(axis=1)
            order = np.argsort(distances, kind="stable")
            chosen = [remaining[int(i)] for i in order[:k]]
            clusters.append(chosen)
            remaining = [idx for idx in remaining if idx not in set(chosen)]

        if remaining:
            if len(remaining) >= k or not clusters:
                clusters.append(list(remaining))
            else:
                for idx in remaining:
                    nearest = min(
                        range(len(clusters)),
                        key=lambda c: float(
                            ((points[clusters[c]] - points[idx]) ** 2).sum(axis=1).min()
                        ),
                    )
                    clusters[nearest].append(idx)

        return [EquivalenceClass(tuple(sorted(cluster))) for cluster in clusters]
