"""Cell- and column-level suppression utilities.

The paper's introduction walks through the naive release strategies an
enterprise might try before k-anonymizing: drop the sensitive column and
publish the rest verbatim, drop the identifiers, or suppress individual cells.
These helpers implement those strategies so the examples and benchmarks can
compare them with the principled releases produced by the anonymizers.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.anonymize.base import AnonymizationResult, EquivalenceClass
from repro.dataset.generalization import SUPPRESSED
from repro.dataset.table import Table
from repro.exceptions import AnonymizationError

__all__ = [
    "drop_sensitive",
    "drop_identifiers",
    "suppress_cells",
    "naive_release",
]


def drop_sensitive(table: Table) -> Table:
    """Release strategy 1: publish identifiers + exact QIs, drop the sensitive column."""
    return table.release_view(keep_sensitive=False)


def drop_identifiers(table: Table) -> Table:
    """Release strategy 2: drop identifiers (pseudonymization) but keep everything else.

    The paper argues this is not viable for enterprise releases whose purpose
    requires the identifiers; it is still useful as a comparison point.
    """
    identifiers = list(table.schema.identifiers)
    if not identifiers:
        raise AnonymizationError("table has no identifier columns to drop")
    return table.drop_columns(identifiers)


def suppress_cells(table: Table, rows: Sequence[int], columns: Sequence[str]) -> Table:
    """Suppress (replace with ``*``) the given cells of ``table``."""
    result = table
    row_list = sorted(set(rows))
    for i in row_list:
        if not 0 <= i < table.num_rows:
            raise AnonymizationError(f"row index {i} out of range")
    for name in columns:
        column = np.empty(table.num_rows, dtype=object)
        column[:] = result.column(name)
        column[row_list] = SUPPRESSED
        result = result.replace_column(name, column)
    return result


def naive_release(table: Table) -> AnonymizationResult:
    """The "remove the salary column, publish the rest" strategy as a result object.

    Every record is its own equivalence class (k = 1), which lets the naive
    release flow through the same metrics and attack pipeline as the real
    anonymizations — this is the weakest baseline in the experiments.
    """
    release = drop_sensitive(table)
    classes = [EquivalenceClass((i,)) for i in range(table.num_rows)]
    return AnonymizationResult(
        original=table,
        release=release,
        classes=classes,
        k=1,
        anonymizer="naive",
    )
