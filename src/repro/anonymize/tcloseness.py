"""t-closeness predicates (Li, Li & Venkatasubramanian, ICDE 2007).

t-closeness ([7] in the paper's bibliography) requires the distribution of the
sensitive attribute within every equivalence class to be close to its global
distribution.  For a numeric sensitive attribute the distance between the two
distributions is the Earth Mover's Distance over the ordered value domain,
computed here with the standard "ordered distance" formulation on the
discretized sensitive labels (cumulative-difference sum normalized by
``bins - 1``).
"""

from __future__ import annotations

from collections import Counter
from typing import Sequence

import numpy as np

from repro.anonymize.base import AnonymizationResult, EquivalenceClass
from repro.anonymize.ldiversity import discretize_sensitive
from repro.exceptions import MetricError

__all__ = ["ordered_emd", "closeness", "is_t_close"]


def _ordered_emd_of_probabilities(
    class_probability: np.ndarray, global_probability: np.ndarray, bins: int
) -> float:
    """The ordered-distance EMD kernel over two per-bin probability vectors."""
    cumulative = np.cumsum(class_probability - global_probability)
    return float(np.sum(np.abs(cumulative[:-1])) / (bins - 1))


def ordered_emd(class_counts: Counter, global_counts: Counter, bins: int) -> float:
    """Earth Mover's Distance between two ordered categorical distributions."""
    if bins < 2:
        raise MetricError("ordered EMD requires at least 2 bins")
    class_total = sum(class_counts.values())
    global_total = sum(global_counts.values())
    if class_total == 0 or global_total == 0:
        raise MetricError("cannot compute EMD of an empty distribution")
    class_probability = np.array([class_counts.get(b, 0) / class_total for b in range(bins)])
    global_probability = np.array(
        [global_counts.get(b, 0) / global_total for b in range(bins)]
    )
    return _ordered_emd_of_probabilities(class_probability, global_probability, bins)


def _bin_probabilities(counts: np.ndarray, total: int, bins: int) -> np.ndarray:
    """Per-bin probabilities of a bincount vector (labels past ``bins`` dropped)."""
    probabilities = np.zeros(bins, dtype=float)
    limit = min(bins, counts.size)
    probabilities[:limit] = counts[:limit] / total
    return probabilities


def closeness(
    labels: Sequence[int], classes: Sequence[EquivalenceClass], bins: int
) -> float:
    """Maximum EMD between any class distribution and the global distribution.

    A release satisfies t-closeness when this value is at most ``t``.  The
    per-class distributions come from ``np.bincount`` over the label vector,
    so the scan is one gather + one count per class.
    """
    if not classes:
        raise MetricError("no equivalence classes supplied")
    if bins < 2:
        raise MetricError("ordered EMD requires at least 2 bins")
    label_array = np.asarray(labels, dtype=np.intp)
    if label_array.size == 0:
        raise MetricError("cannot compute EMD of an empty distribution")
    global_probability = _bin_probabilities(
        np.bincount(label_array), label_array.size, bins
    )
    worst = 0.0
    for equivalence_class in classes:
        member_labels = label_array[np.asarray(equivalence_class.indices, dtype=np.intp)]
        class_probability = _bin_probabilities(
            np.bincount(member_labels), member_labels.size, bins
        )
        worst = max(
            worst,
            _ordered_emd_of_probabilities(class_probability, global_probability, bins),
        )
    return worst


def is_t_close(result: AnonymizationResult, t: float, bins: int = 5) -> bool:
    """Whether an anonymization satisfies t-closeness with parameter ``t``."""
    labels = discretize_sensitive(result.original, bins=bins)
    return closeness(labels, result.classes, bins) <= t
