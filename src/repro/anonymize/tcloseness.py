"""t-closeness predicates (Li, Li & Venkatasubramanian, ICDE 2007).

t-closeness ([7] in the paper's bibliography) requires the distribution of the
sensitive attribute within every equivalence class to be close to its global
distribution.  For a numeric sensitive attribute the distance between the two
distributions is the Earth Mover's Distance over the ordered value domain,
computed here with the standard "ordered distance" formulation on the
discretized sensitive labels (cumulative-difference sum normalized by
``bins - 1``).
"""

from __future__ import annotations

from collections import Counter
from typing import Sequence

import numpy as np

from repro.anonymize.base import AnonymizationResult, EquivalenceClass
from repro.anonymize.ldiversity import discretize_sensitive
from repro.exceptions import MetricError

__all__ = ["ordered_emd", "closeness", "is_t_close"]


def ordered_emd(class_counts: Counter, global_counts: Counter, bins: int) -> float:
    """Earth Mover's Distance between two ordered categorical distributions."""
    if bins < 2:
        raise MetricError("ordered EMD requires at least 2 bins")
    class_total = sum(class_counts.values())
    global_total = sum(global_counts.values())
    if class_total == 0 or global_total == 0:
        raise MetricError("cannot compute EMD of an empty distribution")
    class_probability = np.array([class_counts.get(b, 0) / class_total for b in range(bins)])
    global_probability = np.array(
        [global_counts.get(b, 0) / global_total for b in range(bins)]
    )
    cumulative = np.cumsum(class_probability - global_probability)
    return float(np.sum(np.abs(cumulative[:-1])) / (bins - 1))


def closeness(
    labels: Sequence[int], classes: Sequence[EquivalenceClass], bins: int
) -> float:
    """Maximum EMD between any class distribution and the global distribution.

    A release satisfies t-closeness when this value is at most ``t``.
    """
    if not classes:
        raise MetricError("no equivalence classes supplied")
    global_counts = Counter(labels)
    worst = 0.0
    for equivalence_class in classes:
        class_counts = Counter(labels[i] for i in equivalence_class.indices)
        worst = max(worst, ordered_emd(class_counts, global_counts, bins))
    return worst


def is_t_close(result: AnonymizationResult, t: float, bins: int = 5) -> bool:
    """Whether an anonymization satisfies t-closeness with parameter ``t``."""
    labels = discretize_sensitive(result.original, bins=bins)
    return closeness(labels, result.classes, bins) <= t
