"""MDAV microaggregation (Maximum Distance to Average Vector).

The paper's experiments k-anonymize the non-sensitive attributes with
"microaggregation based k-anonymization proposed in [9]" (Domingo-Ferrer &
Mateo-Sanz).  MDAV is the canonical fixed-size microaggregation heuristic from
that line of work:

1. while at least ``3k`` records remain: compute the centroid of the remaining
   records, take the record ``r`` farthest from the centroid and group it with
   its ``k-1`` nearest neighbours; then take the record ``s`` farthest from
   ``r`` among the records still remaining and group it with its ``k-1``
   nearest neighbours;
2. if between ``2k`` and ``3k-1`` records remain: form one group of ``k``
   around the record farthest from the centroid, and a final group with the
   rest;
3. otherwise the remaining (``k`` to ``2k-1``) records form the last group.

Distances are Euclidean over the column-standardized numeric quasi-identifier
matrix.  All groups end up with between ``k`` and ``2k - 1`` records, the
property the discernibility utility metric and the dissimilarity measure rely
on.
"""

from __future__ import annotations

import numpy as np

from repro.anonymize.base import BaseAnonymizer, EquivalenceClass
from repro.dataset.statistics import standardize_matrix
from repro.dataset.table import Table
from repro.exceptions import AnonymizationError

__all__ = ["MDAVAnonymizer"]


class MDAVAnonymizer(BaseAnonymizer):
    """Fixed-group-size microaggregation over numeric quasi-identifiers."""

    name = "mdav"

    def __init__(self, release_style: str = "interval") -> None:
        super().__init__(release_style=release_style)

    def partition(self, table: Table, k: int) -> list[EquivalenceClass]:
        matrix = table.quasi_identifier_matrix()
        if np.isnan(matrix).any():
            raise AnonymizationError(
                "MDAV requires fully numeric quasi-identifiers without missing values"
            )
        standardized, _, _ = standardize_matrix(matrix)
        groups = _mdav_groups(standardized, k)
        return [EquivalenceClass(tuple(sorted(group))) for group in groups]


def _sq_distances(points: np.ndarray, reference: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances from each row of ``points`` to ``reference``."""
    deltas = points - reference
    return np.einsum("ij,ij->i", deltas, deltas)


def _take_group(points: np.ndarray, remaining: list[int], anchor_global: int, k: int) -> list[int]:
    """Pop ``anchor`` and its ``k-1`` nearest records from ``remaining``."""
    subset = points[remaining]
    anchor_local = remaining.index(anchor_global)
    distances = _sq_distances(subset, points[anchor_global])
    distances[anchor_local] = -1.0  # ensure the anchor itself is selected first
    order = np.argsort(distances, kind="stable")
    chosen_locals = [int(i) for i in order[:k]]
    group = [remaining[i] for i in chosen_locals]
    for idx in group:
        remaining.remove(idx)
    return group


def _farthest_from(points: np.ndarray, remaining: list[int], reference: np.ndarray) -> int:
    """Global index of the remaining record farthest from ``reference``."""
    subset = points[remaining]
    local = int(np.argmax(_sq_distances(subset, reference)))
    return remaining[local]


def _mdav_groups(points: np.ndarray, k: int) -> list[list[int]]:
    """Run the MDAV grouping loop over row vectors ``points``."""
    remaining = list(range(points.shape[0]))
    groups: list[list[int]] = []

    while len(remaining) >= 3 * k:
        centroid = points[remaining].mean(axis=0)
        r_global = _farthest_from(points, remaining, centroid)
        r_point = points[r_global].copy()
        groups.append(_take_group(points, remaining, r_global, k))

        s_global = _farthest_from(points, remaining, r_point)
        groups.append(_take_group(points, remaining, s_global, k))

    if len(remaining) >= 2 * k:
        centroid = points[remaining].mean(axis=0)
        r_global = _farthest_from(points, remaining, centroid)
        groups.append(_take_group(points, remaining, r_global, k))

    if remaining:
        groups.append(list(remaining))

    return groups
