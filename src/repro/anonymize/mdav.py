"""MDAV microaggregation (Maximum Distance to Average Vector).

The paper's experiments k-anonymize the non-sensitive attributes with
"microaggregation based k-anonymization proposed in [9]" (Domingo-Ferrer &
Mateo-Sanz).  MDAV is the canonical fixed-size microaggregation heuristic from
that line of work:

1. while at least ``3k`` records remain: compute the centroid of the remaining
   records, take the record ``r`` farthest from the centroid and group it with
   its ``k-1`` nearest neighbours; then take the record ``s`` farthest from
   ``r`` among the records still remaining and group it with its ``k-1``
   nearest neighbours;
2. if between ``2k`` and ``3k-1`` records remain: form one group of ``k``
   around the record farthest from the centroid, and a final group with the
   rest;
3. otherwise the remaining (``k`` to ``2k-1``) records form the last group.

Distances are Euclidean over the column-standardized numeric quasi-identifier
matrix.  All groups end up with between ``k`` and ``2k - 1`` records, the
property the discernibility utility metric and the dissimilarity measure rely
on.

The grouping loop is fully vectorized: the not-yet-grouped records live in a
compacted point matrix alongside their global row indices, every group is
selected with one distance buffer and an ``np.partition``-based k-smallest
pick (``O(remaining)`` instead of a full sort), and grouped rows are retired
with a single boolean-mask compaction — no ``list.index`` / ``list.remove``
bookkeeping, no per-call fancy-indexed subsets.  Tie-breaking matches the
historical stable-argsort selection (equal distances resolve to the lowest
remaining row index), so partitions are identical to the original
implementation's.
"""

from __future__ import annotations

import numpy as np

from repro.anonymize.base import BaseAnonymizer, EquivalenceClass
from repro.dataset.statistics import standardize_matrix
from repro.dataset.table import Table
from repro.exceptions import AnonymizationError

__all__ = ["MDAVAnonymizer"]


class MDAVAnonymizer(BaseAnonymizer):
    """Fixed-group-size microaggregation over numeric quasi-identifiers."""

    name = "mdav"

    def __init__(self, release_style: str = "interval") -> None:
        super().__init__(release_style=release_style)

    def partition(self, table: Table, k: int) -> list[EquivalenceClass]:
        matrix = table.quasi_identifier_matrix()
        if np.isnan(matrix).any():
            raise AnonymizationError(
                "MDAV requires fully numeric quasi-identifiers without missing values"
            )
        standardized, _, _ = standardize_matrix(matrix)
        groups = _mdav_groups(standardized, k)
        return [EquivalenceClass(tuple(sorted(group))) for group in groups]


def _sq_distances(points: np.ndarray, reference: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances from each row of ``points`` to ``reference``."""
    deltas = points - reference
    return np.einsum("ij,ij->i", deltas, deltas)


def _k_smallest(distances: np.ndarray, k: int) -> np.ndarray:
    """Positions of the ``k`` smallest distances, earliest positions on ties.

    Equivalent to ``np.argsort(distances, kind="stable")[:k]`` as a *set* (and
    therefore to the historical selection), but runs in ``O(n)`` via
    ``np.partition`` instead of ``O(n log n)``.
    """
    if k >= distances.size:
        return np.arange(distances.size, dtype=np.intp)
    threshold = np.partition(distances, k - 1)[k - 1]
    below = np.nonzero(distances < threshold)[0]
    at_threshold = np.nonzero(distances == threshold)[0]
    needed = k - below.size
    return np.concatenate([below, at_threshold[:needed]])


def _mdav_groups(points: np.ndarray, k: int) -> list[list[int]]:
    """Run the MDAV grouping loop over row vectors ``points``."""
    active_rows = np.arange(points.shape[0], dtype=np.intp)
    active_points = points
    groups: list[list[int]] = []

    def take_group(anchor_position: int) -> None:
        """Retire the anchor and its ``k-1`` nearest active records as a group."""
        nonlocal active_rows, active_points
        distances = _sq_distances(active_points, active_points[anchor_position])
        distances[anchor_position] = -1.0  # the anchor itself is selected first
        chosen = _k_smallest(distances, k)
        groups.append(active_rows[chosen].tolist())
        keep = np.ones(active_rows.size, dtype=bool)
        keep[chosen] = False
        active_rows = active_rows[keep]
        active_points = active_points[keep]

    def farthest_from(reference: np.ndarray) -> int:
        """Position (within the active set) of the record farthest from ``reference``."""
        return int(np.argmax(_sq_distances(active_points, reference)))

    while active_rows.size >= 3 * k:
        centroid = active_points.mean(axis=0)
        r_position = farthest_from(centroid)
        r_point = active_points[r_position].copy()
        take_group(r_position)
        take_group(farthest_from(r_point))

    if active_rows.size >= 2 * k:
        centroid = active_points.mean(axis=0)
        take_group(farthest_from(centroid))

    if active_rows.size:
        groups.append(active_rows.tolist())

    return groups
