"""MDAV microaggregation (Maximum Distance to Average Vector).

The paper's experiments k-anonymize the non-sensitive attributes with
"microaggregation based k-anonymization proposed in [9]" (Domingo-Ferrer &
Mateo-Sanz).  MDAV is the canonical fixed-size microaggregation heuristic from
that line of work:

1. while at least ``3k`` records remain: compute the centroid of the remaining
   records, take the record ``r`` farthest from the centroid and group it with
   its ``k-1`` nearest neighbours; then take the record ``s`` farthest from
   ``r`` among the records still remaining and group it with its ``k-1``
   nearest neighbours;
2. if between ``2k`` and ``3k-1`` records remain: form one group of ``k``
   around the record farthest from the centroid, and a final group with the
   rest;
3. otherwise the remaining (``k`` to ``2k-1``) records form the last group.

Distances are Euclidean over the column-standardized numeric quasi-identifier
matrix.  All groups end up with between ``k`` and ``2k - 1`` records, the
property the discernibility utility metric and the dissimilarity measure rely
on.

The grouping loop is fully vectorized: the not-yet-grouped records live in a
compacted point matrix alongside their global row indices, every group is
selected with one distance buffer and an ``np.partition``-based k-smallest
pick (``O(remaining)`` instead of a full sort), grouped rows are retired
with a single boolean-mask compaction, and each round's second anchor (the
record farthest from the first) is read off the first anchor's masked
distance buffer instead of a fresh pass over the active set — no
``list.index`` / ``list.remove`` bookkeeping, no per-call fancy-indexed
subsets.  Tie-breaking matches the
historical stable-argsort selection (equal distances resolve to the lowest
remaining row index), so partitions are identical to the original
implementation's.
"""

from __future__ import annotations

import numpy as np

from repro.anonymize.base import BaseAnonymizer, EquivalenceClass
from repro.dataset.statistics import standardize_matrix
from repro.dataset.table import Table
from repro.exceptions import AnonymizationError

__all__ = ["MDAVAnonymizer"]


class MDAVAnonymizer(BaseAnonymizer):
    """Fixed-group-size microaggregation over numeric quasi-identifiers."""

    name = "mdav"

    def __init__(self, release_style: str = "interval") -> None:
        super().__init__(release_style=release_style)

    def partition(self, table: Table, k: int) -> list[EquivalenceClass]:
        matrix = table.quasi_identifier_matrix()
        if np.isnan(matrix).any():
            raise AnonymizationError(
                "MDAV requires fully numeric quasi-identifiers without missing values"
            )
        standardized, _, _ = standardize_matrix(matrix)
        groups = _mdav_groups(standardized, k)
        return [EquivalenceClass(tuple(sorted(group))) for group in groups]


def _sq_distances(points: np.ndarray, reference: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances from each row of ``points`` to ``reference``."""
    deltas = points - reference
    return np.einsum("ij,ij->i", deltas, deltas)


def _k_smallest(distances: np.ndarray, k: int) -> np.ndarray:
    """Positions of the ``k`` smallest distances, earliest positions on ties.

    Equivalent to ``np.argsort(distances, kind="stable")[:k]`` as a *set* (and
    therefore to the historical selection), but runs in ``O(n)`` via
    ``np.partition`` instead of ``O(n log n)``.
    """
    if k >= distances.size:
        return np.arange(distances.size, dtype=np.intp)
    threshold = np.partition(distances, k - 1)[k - 1]
    below = np.nonzero(distances < threshold)[0]
    at_threshold = np.nonzero(distances == threshold)[0]
    needed = k - below.size
    return np.concatenate([below, at_threshold[:needed]])


def _mdav_groups(points: np.ndarray, k: int) -> list[list[int]]:
    """Run the MDAV grouping loop over row vectors ``points``.

    The loop allocates nothing per round: compaction ping-pongs between two
    preallocated buffers (``np.compress`` with ``out=``), and the delta,
    distance and partition work reuses fixed scratch arrays.  ``points``
    itself serves as the first round's active view and is never written to.
    Every arithmetic operation is elementwise-identical to the allocating
    formulation, so partitions are unchanged bit for bit.
    """
    count = points.shape[0]
    groups: list[list[int]] = []

    point_buffers = (np.empty_like(points), np.empty_like(points))
    row_buffers = (
        np.arange(count, dtype=np.intp),
        np.empty(count, dtype=np.intp),
    )
    delta_scratch = np.empty_like(points)
    distance_scratch = np.empty(count, dtype=np.float64)
    survivor_scratch = np.empty(count, dtype=np.float64)
    partition_scratch = np.empty(count, dtype=np.float64)
    keep_scratch = np.empty(count, dtype=bool)

    active_points = points
    active_rows = row_buffers[0]
    points_dest = 0
    rows_dest = 1

    def sq_distances(reference: np.ndarray) -> np.ndarray:
        """Squared distances from every active record to ``reference``."""
        deltas = delta_scratch[: active_points.shape[0]]
        np.subtract(active_points, reference, out=deltas)
        return np.einsum(
            "ij,ij->i", deltas, deltas, out=distance_scratch[: deltas.shape[0]]
        )

    def k_smallest(distances: np.ndarray) -> np.ndarray:
        """Positions of the ``k`` smallest distances, earliest positions on ties.

        Equivalent to ``np.argsort(distances, kind="stable")[:k]`` as a *set*
        (and therefore to the historical selection), in ``O(n)`` via an
        in-place scratch partition.
        """
        if k >= distances.size:
            return np.arange(distances.size, dtype=np.intp)
        ranked = partition_scratch[: distances.size]
        ranked[:] = distances
        ranked.partition(k - 1)
        threshold = ranked[k - 1]
        below = np.nonzero(distances < threshold)[0]
        at_threshold = np.nonzero(distances == threshold)[0]
        return np.concatenate([below, at_threshold[: k - below.size]])

    def take_group(anchor_position: int) -> np.ndarray:
        """Retire the anchor and its ``k-1`` nearest active records as a group.

        Returns the anchor's distance buffer masked down to the surviving
        records — entry ``i`` is exactly the squared distance from the anchor
        to the new ``active_points[i]``, so the caller can pick the next
        anchor from it without another pass over the active set.
        """
        nonlocal active_rows, active_points, points_dest, rows_dest
        distances = sq_distances(active_points[anchor_position])
        distances[anchor_position] = -1.0  # the anchor itself is selected first
        chosen = k_smallest(distances)
        groups.append(active_rows[chosen].tolist())
        size = active_rows.size
        keep = keep_scratch[:size]
        keep[:] = True
        keep[chosen] = False
        survivors = size - chosen.size
        np.compress(keep, active_points, axis=0, out=point_buffers[points_dest][:survivors])
        np.compress(keep, active_rows, out=row_buffers[rows_dest][:survivors])
        surviving = np.compress(keep, distances, out=survivor_scratch[:survivors])
        active_points = point_buffers[points_dest][:survivors]
        active_rows = row_buffers[rows_dest][:survivors]
        points_dest ^= 1
        rows_dest ^= 1
        return surviving

    while active_rows.size >= 3 * k:
        centroid = active_points.mean(axis=0)
        r_position = int(np.argmax(sq_distances(centroid)))
        surviving_r_distances = take_group(r_position)
        take_group(int(np.argmax(surviving_r_distances)))

    if active_rows.size >= 2 * k:
        centroid = active_points.mean(axis=0)
        take_group(int(np.argmax(sq_distances(centroid))))

    if active_rows.size:
        groups.append(active_rows.tolist())

    return groups
