"""Datafly-style full-domain generalization with suppression.

Datafly (Sweeney) is the classic generalization/suppression scheme behind the
original k-anonymity papers ([2] in the paper's bibliography).  The algorithm
keeps a per-attribute generalization level (over the hierarchies of
:mod:`repro.dataset.hierarchy`) and repeatedly generalizes the quasi-identifier
with the largest number of distinct values until the number of records whose
generalized signature occurs fewer than ``k`` times is small enough to be
suppressed (at most ``max_suppression_fraction`` of the table).

Unlike MDAV and Mondrian, Datafly's equivalence classes are induced by the
generalized *values* rather than by an explicit grouping, so the partition is
recovered from the generalized table.  Suppressed records form their own
class and are reported via ``AnonymizationResult.suppressed``.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.anonymize.base import (
    AnonymizationResult,
    BaseAnonymizer,
    EquivalenceClass,
    validate_k,
)
from repro.anonymize.kanonymity import equivalence_classes_of_release
from repro.anonymize.suppression import suppress_cells
from repro.dataset.hierarchy import GeneralizationHierarchy, NumericHierarchy
from repro.dataset.table import Table
from repro.exceptions import AnonymizationError, InfeasibleAnonymizationError

__all__ = ["DataflyAnonymizer", "default_hierarchies"]


def default_hierarchies(table: Table, levels: int = 6) -> dict[str, GeneralizationHierarchy]:
    """Build default numeric hierarchies for every numeric quasi-identifier.

    The level-1 bin width is 1/16 of the column range, doubling per level, so
    the hierarchy offers a reasonable spread of granularities for Datafly to
    walk through.
    """
    hierarchies: dict[str, GeneralizationHierarchy] = {}
    for name in table.schema.numeric_quasi_identifiers:
        values = table.numeric_column(name)
        low, high = float(values.min()), float(values.max())
        if high <= low:
            high = low + 1.0
        hierarchies[name] = NumericHierarchy(
            low=low, high=high, base_width=(high - low) / 16.0, branching=2, levels=levels
        )
    return hierarchies


class DataflyAnonymizer(BaseAnonymizer):
    """Greedy full-domain generalization with record suppression."""

    name = "datafly"

    def __init__(
        self,
        hierarchies: Mapping[str, GeneralizationHierarchy] | None = None,
        max_suppression_fraction: float = 0.05,
    ) -> None:
        super().__init__(release_style="interval")
        if not 0.0 <= max_suppression_fraction <= 1.0:
            raise AnonymizationError("max_suppression_fraction must lie in [0, 1]")
        self.hierarchies = dict(hierarchies) if hierarchies else None
        self.max_suppression_fraction = max_suppression_fraction

    # The partition interface is satisfied by deriving classes from the final
    # generalized release, so ``anonymize`` is overridden wholesale.
    def partition(self, table: Table, k: int) -> list[EquivalenceClass]:  # pragma: no cover
        result = self.anonymize(table, k)
        return result.classes

    def anonymize(self, table: Table, k: int) -> AnonymizationResult:
        validate_k(table, k)
        hierarchies = self.hierarchies or default_hierarchies(table)
        qi_names = [n for n in table.schema.quasi_identifiers if n in hierarchies]
        if not qi_names:
            raise AnonymizationError("Datafly requires a hierarchy for at least one quasi-identifier")

        levels = {name: 0 for name in qi_names}
        max_suppressed = int(self.max_suppression_fraction * table.num_rows)

        while True:
            release = self._generalize(table, hierarchies, levels)
            small_rows = self._rows_below_k(release, k)
            if len(small_rows) <= max_suppressed or k <= 1:
                break
            candidate = self._most_distinct_attribute(release, qi_names, levels, hierarchies)
            if candidate is None:
                if len(small_rows) > max_suppressed:
                    raise InfeasibleAnonymizationError(
                        f"Datafly exhausted all hierarchies and still has "
                        f"{len(small_rows)} records below k={k}"
                    )
                break
            levels[candidate] += 1

        release, suppressed = self._suppress(release, small_rows if k > 1 else [])
        classes = equivalence_classes_of_release(release)
        return AnonymizationResult(
            original=table,
            release=release,
            classes=classes,
            k=k,
            anonymizer=self.name,
            suppressed=tuple(sorted(suppressed)),
        )

    # Internal steps ------------------------------------------------------------

    def _generalize(
        self,
        table: Table,
        hierarchies: Mapping[str, GeneralizationHierarchy],
        levels: Mapping[str, int],
    ) -> Table:
        release = table.release_view()
        for name, level in levels.items():
            hierarchy = hierarchies[name]
            capped = min(level, hierarchy.levels - 1)
            if capped == 0:
                continue  # level 0 keeps the exact column
            generalized = hierarchy.generalize_column(table.column_array(name), capped)
            release = release.replace_column(name, generalized)
        return release

    def _rows_below_k(self, release: Table, k: int) -> list[int]:
        from repro.anonymize.kanonymity import release_signature_codes

        codes = release_signature_codes(release)
        if codes.size == 0:
            return []
        class_sizes = np.bincount(codes)
        return np.nonzero(class_sizes[codes] < k)[0].tolist()

    def _most_distinct_attribute(
        self,
        release: Table,
        qi_names: list[str],
        levels: Mapping[str, int],
        hierarchies: Mapping[str, GeneralizationHierarchy],
    ) -> str | None:
        candidates = [
            name for name in qi_names if levels[name] < hierarchies[name].levels - 1
        ]
        if not candidates:
            return None
        distinct: dict[str, int] = {}
        for name in candidates:
            array = release.column_array(name)
            if array.dtype.kind in "if":
                distinct[name] = int(np.unique(array).size)
            else:
                distinct[name] = len({str(v) for v in array})
        return max(candidates, key=lambda name: distinct[name])

    def _suppress(self, release: Table, rows: list[int]) -> tuple[Table, list[int]]:
        if not rows:
            return release, []
        suppressed = sorted(set(rows))
        release = suppress_cells(release, suppressed, release.schema.quasi_identifiers)
        return release, suppressed
