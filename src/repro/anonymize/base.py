"""Common interfaces for partitioning-based anonymization.

Every anonymizer in this package follows the same two-step contract:

1. **partition** the records into equivalence classes of size at least ``k``
   using only the quasi-identifier attributes;
2. **build a release** in which, within each equivalence class, the
   quasi-identifier cells are replaced by a class-level generalized value
   (an interval covering the class, the class centroid, or a taxonomy node)
   while the identifier columns are kept verbatim and the sensitive column is
   dropped.

The second step is shared (:func:`build_release`); anonymizers only implement
the partitioning step.  This mirrors the paper's use of
``Basic_Anonymization(P, level)`` as a pluggable primitive inside Algorithm 1.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.dataset.generalization import Interval, cover_values
from repro.dataset.table import Table, _py_value
from repro.exceptions import AnonymizationError, InfeasibleAnonymizationError

__all__ = [
    "EquivalenceClass",
    "AnonymizationResult",
    "BaseAnonymizer",
    "build_release",
    "validate_k",
]


@dataclass(frozen=True)
class EquivalenceClass:
    """A group of row indices that share the same generalized quasi-identifiers."""

    indices: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.indices:
            raise AnonymizationError("an equivalence class cannot be empty")
        if len(set(self.indices)) != len(self.indices):
            raise AnonymizationError("an equivalence class cannot repeat row indices")

    @property
    def size(self) -> int:
        """Number of records in the class."""
        return len(self.indices)


@dataclass
class AnonymizationResult:
    """The outcome of anonymizing a private table.

    Attributes
    ----------
    original:
        The private table ``P`` that was anonymized (identifiers, QIs and the
        sensitive column).
    release:
        The enterprise release ``P'``: identifiers kept, quasi-identifiers
        generalized per equivalence class, sensitive column removed.
    classes:
        The equivalence classes over the rows of ``original`` (indices refer
        to ``original`` and ``release`` alike — row order is preserved).
    k:
        The requested anonymity parameter.
    anonymizer:
        Name of the algorithm that produced the partition.
    suppressed:
        Indices of rows whose quasi-identifiers were fully suppressed (only
        used by generalization/suppression schemes such as Datafly).
    """

    original: Table
    release: Table
    classes: list[EquivalenceClass]
    k: int
    anonymizer: str
    suppressed: tuple[int, ...] = field(default_factory=tuple)

    @property
    def class_sizes(self) -> list[int]:
        """Sizes of all equivalence classes."""
        return [c.size for c in self.classes]

    @property
    def minimum_class_size(self) -> int:
        """Size of the smallest equivalence class (the achieved anonymity)."""
        return min(self.class_sizes)

    def class_of(self, row_index: int) -> EquivalenceClass:
        """The equivalence class containing ``row_index``."""
        for equivalence_class in self.classes:
            if row_index in equivalence_class.indices:
                return equivalence_class
        raise AnonymizationError(f"row {row_index} is not covered by any equivalence class")


def validate_k(table: Table, k: int) -> None:
    """Validate an anonymity parameter against a table.

    ``k`` must be at least 1 and at most the number of records; ``k`` larger
    than the table is infeasible (no partition can have classes of size ``k``).
    """
    if k < 1:
        raise AnonymizationError(f"k must be >= 1, got {k}")
    if table.num_rows == 0:
        raise AnonymizationError("cannot anonymize an empty table")
    if k > table.num_rows:
        raise InfeasibleAnonymizationError(
            f"k={k} exceeds the number of records ({table.num_rows})"
        )


def _validate_partition(table: Table, classes: Sequence[EquivalenceClass], k: int) -> None:
    covered = [i for equivalence_class in classes for i in equivalence_class.indices]
    if sorted(covered) != list(range(table.num_rows)):
        raise AnonymizationError(
            "equivalence classes must cover every row exactly once "
            f"(covered {len(covered)} of {table.num_rows})"
        )
    undersized = [c.size for c in classes if c.size < k]
    if undersized and k > 1:
        raise AnonymizationError(
            f"partition violates k={k}: class sizes {sorted(undersized)} below k"
        )


def build_release(
    table: Table,
    classes: Sequence[EquivalenceClass],
    k: int,
    style: str = "interval",
    keep_sensitive: bool = False,
    validate: bool = True,
) -> Table:
    """Build the enterprise release ``P'`` from a partition of ``table``.

    Quasi-identifier columns are generalized in bulk: one generalized cell is
    computed per (class, column) pair — a class-covering interval from
    vectorized per-class min/max for numeric columns, the class mean for
    centroid releases — and fanned out to the class rows with fancy-index
    assignments, instead of visiting every cell through per-row Python loops.

    Parameters
    ----------
    table:
        The private table ``P``.
    classes:
        Equivalence classes over the rows of ``table``.
    k:
        Requested anonymity (used only for validation).
    style:
        ``"interval"`` replaces each numeric quasi-identifier cell by the
        interval covering its class (Table III of the paper);
        ``"centroid"`` replaces it by the class mean (microaggregation-style
        release).  Categorical quasi-identifiers are always generalized to the
        covering :class:`~repro.dataset.generalization.CategorySet`.
    keep_sensitive:
        Keep the sensitive column in the release (used to construct
        ground-truth-bearing releases in tests); default drops it as the paper
        prescribes.
    validate:
        Check the partition covers every record and respects ``k``.
    """
    if style not in ("interval", "centroid"):
        raise AnonymizationError(f"unknown release style: {style!r}")
    if validate:
        _validate_partition(table, classes, k)

    schema = table.schema
    release = table if keep_sensitive else table.drop_columns(list(schema.sensitive_attributes))
    qi_names = release.schema.quasi_identifiers

    class_indices = [
        np.asarray(equivalence_class.indices, dtype=np.intp)
        for equivalence_class in classes
    ]
    covered = np.zeros(table.num_rows, dtype=bool)
    for indices in class_indices:
        covered[indices] = True
    covers_all_rows = bool(covered.all())

    for name in qi_names:
        attribute = release.schema[name]
        source = table.column_array(name)
        numeric_storage = source.dtype.kind in "if"

        generalized_column = np.empty(table.num_rows, dtype=object)
        if not covers_all_rows:
            # Partial partitions (validate=False) keep their uncovered cells.
            generalized_column[:] = table.column(name)

        if numeric_storage and style == "interval":
            for indices in class_indices:
                values = source[indices]
                low, high = values.min(), values.max()
                if low == high:
                    generalized: object = _py_value(source[indices[0]])
                else:
                    generalized = Interval(float(low), float(high))
                generalized_column[indices] = generalized
        elif attribute.is_numeric and style == "centroid":
            if numeric_storage:
                for indices in class_indices:
                    generalized_column[indices] = float(np.mean(source[indices]))
            else:
                values_list = table.column(name)
                for indices in class_indices:
                    numeric = np.array(
                        [float(values_list[i]) for i in indices], dtype=float
                    )
                    generalized_column[indices] = float(np.mean(numeric))
        else:
            values_list = table.column(name)
            for indices in class_indices:
                generalized_column[indices] = cover_values(
                    [values_list[i] for i in indices]
                )

        release = release.replace_column(name, generalized_column)

    return release


class BaseAnonymizer(abc.ABC):
    """Abstract base class of all partitioning-based anonymizers.

    Subclasses implement :meth:`partition`; :meth:`anonymize` composes the
    partition with :func:`build_release`.
    """

    #: Human-readable algorithm name recorded in results.
    name: str = "base"

    def __init__(self, release_style: str = "interval") -> None:
        if release_style not in ("interval", "centroid"):
            raise AnonymizationError(f"unknown release style: {release_style!r}")
        self.release_style = release_style

    @abc.abstractmethod
    def partition(self, table: Table, k: int) -> list[EquivalenceClass]:
        """Partition the rows of ``table`` into classes of size at least ``k``."""

    def anonymize(self, table: Table, k: int) -> AnonymizationResult:
        """Anonymize ``table`` to anonymity level ``k`` and build the release."""
        validate_k(table, k)
        if k == 1:
            classes = [EquivalenceClass((i,)) for i in range(table.num_rows)]
        else:
            classes = self.partition(table, k)
        release = build_release(
            table, classes, k, style=self.release_style, keep_sensitive=False
        )
        return AnonymizationResult(
            original=table,
            release=release,
            classes=classes,
            k=k,
            anonymizer=self.name,
        )
