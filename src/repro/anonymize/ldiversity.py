"""l-diversity predicates (Machanavajjhala et al., ICDE 2006).

The paper discusses l-diversity as one of the partitioning-based refinements
of k-anonymity ([4] in its bibliography): every equivalence class must contain
at least ``l`` "well represented" sensitive values.  Two standard instantiations
are provided:

* **distinct l-diversity** — at least ``l`` distinct sensitive values per class;
* **entropy l-diversity** — the entropy of the sensitive-value distribution in
  every class is at least ``log(l)``.

Because the paper's sensitive attribute (salary) is continuous, the sensitive
values are first discretized into ``bins`` quantile bins, following the common
practice for numeric sensitive attributes.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.anonymize.base import AnonymizationResult, EquivalenceClass
from repro.dataset.table import Table
from repro.exceptions import MetricError

__all__ = [
    "discretize_sensitive",
    "distinct_diversity",
    "entropy_diversity",
    "is_distinct_l_diverse",
    "is_entropy_l_diverse",
]


def discretize_sensitive(table: Table, bins: int = 5) -> list[int]:
    """Quantile-discretize the sensitive column into ``bins`` integer labels."""
    if bins < 2:
        raise MetricError("discretization requires at least 2 bins")
    values = table.sensitive_vector()
    if np.isnan(values).any():
        raise MetricError("sensitive column contains missing values")
    edges = np.quantile(values, np.linspace(0.0, 1.0, bins + 1)[1:-1])
    return np.searchsorted(edges, values, side="right").astype(int).tolist()


def distinct_diversity(labels: Sequence[int], classes: Sequence[EquivalenceClass]) -> int:
    """Minimum number of distinct sensitive labels across all classes."""
    if not classes:
        raise MetricError("no equivalence classes supplied")
    label_array = np.asarray(labels)
    return min(
        int(np.unique(label_array[np.asarray(c.indices, dtype=np.intp)]).size)
        for c in classes
    )


def entropy_diversity(labels: Sequence[int], classes: Sequence[EquivalenceClass]) -> float:
    """Minimum ``exp(entropy)`` of the sensitive distribution across classes.

    A release is entropy l-diverse when this value is at least ``l``.
    """
    if not classes:
        raise MetricError("no equivalence classes supplied")
    label_array = np.asarray(labels, dtype=np.intp)
    worst = math.inf
    for equivalence_class in classes:
        counts = np.bincount(label_array[np.asarray(equivalence_class.indices, dtype=np.intp)])
        probabilities = counts[counts > 0] / equivalence_class.size
        entropy = float(-np.sum(probabilities * np.log(probabilities)))
        worst = min(worst, math.exp(entropy))
    return worst


def is_distinct_l_diverse(
    result: AnonymizationResult, l: int, bins: int = 5
) -> bool:
    """Whether an anonymization satisfies distinct l-diversity."""
    labels = discretize_sensitive(result.original, bins=bins)
    return distinct_diversity(labels, result.classes) >= l


def is_entropy_l_diverse(
    result: AnonymizationResult, l: float, bins: int = 5
) -> bool:
    """Whether an anonymization satisfies entropy l-diversity."""
    labels = discretize_sensitive(result.original, bins=bins)
    return entropy_diversity(labels, result.classes) >= l
