"""FRED Anonymization — Fusion Resilient Enterprise Data Anonymization.

This is the paper's primary algorithmic contribution (Algorithm 1, Figure 3).
Given a private dataset ``P``, an auxiliary channel ``Q`` (the web) and a
fusion system ``F``, FRED sweeps the anonymization level, *simulates the
web-based information-fusion attack at every level*, and keeps the level that
maximizes the weighted sum of protection and utility subject to a protection
floor ``Tp`` and a utility floor ``Tu``::

    find k*  maximizing  H_k = W1 * (P ∘ P̂_k) + W2 * U_k
    subject to           (P ∘ P̂_k) >= Tp   and   U_k >= Tu

The sweep ascends through the configured levels and — following the paper's
do/until loop — stops as soon as the utility of a candidate release falls
below ``Tu`` (higher levels can only be worse for utility).

Batch evaluation and the parallel sweep
---------------------------------------
Both halves of a level evaluation are vectorized.  The *release-production*
half runs on the columnar table core: anonymizers partition over the cached
numeric quasi-identifier matrix, ``build_release`` generalizes one cell per
(class, column) pair and fans it out with fancy-index assignments, and the
utility / dissimilarity metrics consume class-size and cost vectors (see
:mod:`repro.dataset.table` and :mod:`repro.anonymize.base`).  The *attack*
half simulates the fusion attack **column-wise**: the attack
assembles one ``(N,)`` float array per fusion input (NaN marking missing
cells), the fuzzy engines form the ``(N, n_rules)`` firing-strength matrix and
defuzzify every record in one vectorized pass (see
:mod:`repro.fusion.attack`, *Batch data layout*).  On top of that, level
evaluations are **independent jobs**: ``FREDConfig(parallelism=w)`` dispatches
them across a ``concurrent.futures`` pool (``executor="thread"`` by default;
``"process"`` for CPU-bound sweeps with picklable anonymizers/sources) and
merges the results deterministically — outcomes are collected in level order
and, when ``stop_below_utility`` is set, truncated after the first level whose
utility falls below ``Tu``, so a parallel sweep returns exactly the outcomes a
serial sweep would (levels past the stopping point are evaluated
speculatively and discarded).

Sweep-wide harvest reuse
------------------------
Step 1 of the simulated attack — linking release identifiers to auxiliary
records — depends only on the identifier column and the auxiliary source,
never on the anonymization level (anonymizers preserve rows and row order;
see :mod:`repro.anonymize.base`).  The sweep therefore harvests **once**:
:meth:`FREDAnonymizer.harvest` resolves the whole identifier column through
the batched linkage engine (:mod:`repro.linkage`), and the resulting
``(records, table)`` pair is shared read-only across every level evaluation,
serial or parallel.  A sweep over ``L`` levels pays the linkage cost once
instead of ``L`` times; callers holding a memoized harvest (the service
cache) can inject it via the ``harvest`` parameter of :meth:`sweep`/:meth:`run`
and skip linkage entirely.
"""

from __future__ import annotations

import pickle
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.anonymize.base import AnonymizationResult, BaseAnonymizer
from repro.anonymize.mdav import MDAVAnonymizer
from repro.core.objective import WeightedObjective
from repro.dataset.table import Table
from repro.exceptions import (
    AuxiliarySourceError,
    FREDConfigurationError,
    FREDInfeasibleError,
)
from repro.fusion.attack import AttackConfig, AttackResult, WebFusionAttack
from repro.fusion.auxiliary import AuxiliarySource
from repro.linkage.shm import SharedLinkageIndex, shared_memory_available
from repro.metrics.dissimilarity import (
    dissimilarity_after_fusion,
    dissimilarity_before_fusion,
)
from repro.metrics.utility import utility_of_result

__all__ = ["FREDConfig", "LevelOutcome", "FREDResult", "FREDAnonymizer"]


@dataclass
class FREDConfig:
    """Configuration of a FRED sweep.

    Parameters
    ----------
    levels:
        The anonymization levels (values of ``k``) to sweep, in ascending
        order.  The paper sweeps k = 2..16.
    protection_threshold:
        ``Tp`` — minimum post-fusion dissimilarity for a level to be a
        candidate.  ``None`` disables the floor.
    utility_threshold:
        ``Tu`` — minimum release utility; the sweep stops once utility falls
        below it.  ``None`` disables the floor (the full sweep is evaluated).
    objective:
        The weighted protection/utility objective (``W1``, ``W2``,
        normalization).
    anonymizer:
        The basic anonymization scheme plugged into the sweep (MDAV by
        default, as in the paper's experiments).
    stop_below_utility:
        Mirror the paper's do/until loop by stopping the sweep at the first
        level whose utility drops below ``Tu``.  When False the whole sweep is
        evaluated regardless.
    parallelism:
        Number of anonymization levels to evaluate concurrently.  ``1``
        (the default) keeps the historical serial sweep; larger values
        dispatch level evaluations across a ``concurrent.futures`` pool with
        a deterministic merge (see the module docstring).  With
        ``stop_below_utility`` set, levels past the stopping point may be
        evaluated speculatively but are discarded from the result.
    executor:
        Pool flavour for ``parallelism > 1``: ``"thread"`` (default; the
        vectorized fusion kernels spend their time in numpy, which releases
        the GIL) or ``"process"`` (requires the anonymizer, auxiliary source
        and attack factory to be picklable).
    reuse_harvest:
        Harvest the auxiliary source once per sweep and share the result
        across every level (the harvest is level-independent; see the module
        docstring).  Disable to re-harvest at every level — only useful for
        adversary ablations whose attack factory varies the source per level.
    shared_index:
        How ``executor="process"`` sweeps ship the source's linkage index to
        the pool.  ``"auto"`` (default) publishes it to one
        ``multiprocessing.shared_memory`` segment that every worker maps
        zero-copy (:mod:`repro.linkage.shm`) whenever shared memory is
        available, falling back to pickled replicas otherwise; ``"always"``
        insists on the shared segment (raising where shared memory is
        unavailable); ``"never"`` keeps the historical pickled-replica path.
        Ignored by thread sweeps (one process, one index already).
    """

    levels: tuple[int, ...] = tuple(range(2, 17))
    protection_threshold: float | None = None
    utility_threshold: float | None = None
    objective: WeightedObjective = field(default_factory=WeightedObjective)
    anonymizer: BaseAnonymizer = field(default_factory=MDAVAnonymizer)
    stop_below_utility: bool = True
    parallelism: int = 1
    executor: str = "thread"
    reuse_harvest: bool = True
    shared_index: str = "auto"

    def __post_init__(self) -> None:
        if not self.levels:
            raise FREDConfigurationError("the FRED sweep needs at least one level")
        if any(k < 1 for k in self.levels):
            raise FREDConfigurationError("anonymization levels must be >= 1")
        if list(self.levels) != sorted(self.levels):
            raise FREDConfigurationError("anonymization levels must be ascending")
        if len(set(self.levels)) != len(self.levels):
            raise FREDConfigurationError("anonymization levels must be distinct")
        if self.parallelism < 1:
            raise FREDConfigurationError("parallelism must be >= 1")
        if self.executor not in ("thread", "process"):
            raise FREDConfigurationError(
                f"unknown executor {self.executor!r}; options: ['process', 'thread']"
            )
        if self.shared_index not in ("auto", "always", "never"):
            raise FREDConfigurationError(
                f"unknown shared_index mode {self.shared_index!r}; "
                "options: ['always', 'auto', 'never']"
            )

    def resolved_shared_index(self) -> bool:
        """Whether a process sweep will publish the index to shared memory.

        ``"always"`` raises here when shared memory is unavailable — failing
        at configuration-resolution time, not in the middle of the pool.
        """
        if self.shared_index == "never":
            return False
        if self.shared_index == "always":
            if not shared_memory_available():
                raise FREDConfigurationError(
                    "shared_index='always' but multiprocessing.shared_memory "
                    "is unavailable on this interpreter"
                )
            return True
        return shared_memory_available()


@dataclass
class LevelOutcome:
    """Everything FRED measured at one anonymization level."""

    level: int
    anonymization: AnonymizationResult
    attack: AttackResult
    protection_before: float
    protection_after: float
    information_gain: float
    utility: float
    meets_protection: bool
    meets_utility: bool

    @property
    def feasible(self) -> bool:
        """Whether the level satisfies both thresholds."""
        return self.meets_protection and self.meets_utility

    def to_dict(self) -> dict[str, object]:
        """A JSON-able view of the level's measurements (no table payloads).

        This is what the anonymization service returns from a finished FRED
        job: everything a client needs to plot the sweep or pick a level,
        without serializing the per-level release tables.
        """
        return {
            "level": self.level,
            "protection_before": float(self.protection_before),
            "protection_after": float(self.protection_after),
            "information_gain": float(self.information_gain),
            "utility": float(self.utility),
            "match_rate": float(self.attack.match_rate),
            "classes": len(self.anonymization.classes),
            "minimum_class_size": int(self.anonymization.minimum_class_size),
            "meets_protection": bool(self.meets_protection),
            "meets_utility": bool(self.meets_utility),
            "feasible": bool(self.feasible),
        }


@dataclass
class FREDResult:
    """The full trace of a FRED sweep plus the selected optimum."""

    outcomes: list[LevelOutcome]
    scores: dict[int, float]
    optimal_level: int
    config: FREDConfig

    @property
    def optimal_outcome(self) -> LevelOutcome:
        """The outcome at the selected optimal level."""
        for outcome in self.outcomes:
            if outcome.level == self.optimal_level:
                return outcome
        raise FREDInfeasibleError("the optimal level is missing from the sweep trace")

    @property
    def optimal_release(self) -> Table:
        """The fusion-resilient release ``P'_{i_opt}``."""
        return self.optimal_outcome.anonymization.release

    def feasible_levels(self) -> list[int]:
        """Levels satisfying both thresholds (the paper's "solution space")."""
        return [outcome.level for outcome in self.outcomes if outcome.feasible]

    def series(self, name: str) -> list[float]:
        """A per-level series by name, for plotting/reporting.

        Known names: ``protection_before``, ``protection_after``,
        ``information_gain``, ``utility``, ``score``.
        """
        if name == "score":
            return [self.scores[outcome.level] for outcome in self.outcomes]
        if name not in (
            "protection_before",
            "protection_after",
            "information_gain",
            "utility",
        ):
            raise FREDConfigurationError(f"unknown series {name!r}")
        return [getattr(outcome, name) for outcome in self.outcomes]

    def to_dict(self) -> dict[str, object]:
        """A JSON-able view of the whole sweep (per-level metrics + optimum)."""
        return {
            "optimal_level": self.optimal_level,
            "feasible_levels": self.feasible_levels(),
            "scores": {str(o.level): float(self.scores[o.level]) for o in self.outcomes},
            "levels": [o.to_dict() for o in self.outcomes],
        }

    def summary(self) -> str:
        """Multi-line text report of the sweep (one row per level)."""
        lines = [
            "level  P∘P'(before)   P∘P̂(after)    gain G        utility U     H        feasible"
        ]
        for outcome in self.outcomes:
            lines.append(
                f"{outcome.level:>5}  {outcome.protection_before:>12.4g}  "
                f"{outcome.protection_after:>12.4g}  {outcome.information_gain:>12.4g}  "
                f"{outcome.utility:>12.4g}  {self.scores[outcome.level]:>7.4f}  "
                f"{'yes' if outcome.feasible else 'no'}"
            )
        lines.append(f"optimal level: k = {self.optimal_level}")
        return "\n".join(lines)


@dataclass(frozen=True)
class _DefaultAttackFactory:
    """Builds the standard attack for each level.

    Every attack it builds shares the same auxiliary ``source`` object, so the
    corpus's :class:`~repro.linkage.LinkageIndex` is constructed once and the
    sweep-wide harvest produced through one attack is valid for all of them.
    A module-level class (rather than a closure) so a ``FREDAnonymizer`` stays
    picklable for ``executor="process"`` sweeps.
    """

    source: AuxiliarySource
    attack_config: AttackConfig

    def __call__(self) -> WebFusionAttack:
        return WebFusionAttack(self.source, self.attack_config)


class _HarvestedSource(AuxiliarySource):
    """Detached stand-in for an auxiliary source whose harvest is precomputed.

    When the sweep already holds the level-independent harvest, process
    workers never query the auxiliary channel — every ``evaluate_level``
    call receives ``harvest=`` and :meth:`WebFusionAttack.run` skips the
    source entirely.  Shipping this stub instead of the real corpus keeps
    the per-worker pickle payload down to the private table and harvest
    (no corpus text, no linkage index replica).  Any accidental query is a
    loud error rather than a silently different adversary.
    """

    def __init__(self, attribute_names: Sequence[str]) -> None:
        self.attribute_names = tuple(attribute_names)

    def search(self, name: str):
        raise AuxiliarySourceError(
            "auxiliary source was detached for the process sweep (its harvest "
            "is precomputed); per-name queries are not available in workers"
        )


# Per-process state for `executor="process"` sweeps: the shared sweep context
# (anonymizer, private table, harvest), unpickled once per worker from the
# initializer payload instead of once per submitted level.
_SWEEP_CONTEXT: dict[str, tuple] = {}


def _sweep_worker_init(payload: bytes) -> None:
    """Pool initializer: install the sweep context in this worker process."""
    _SWEEP_CONTEXT["current"] = pickle.loads(payload)


def _sweep_worker_evaluate(level: int):
    """Evaluate one level against the worker's installed sweep context."""
    anonymizer, private, harvest = _SWEEP_CONTEXT["current"]
    return anonymizer.evaluate_level(private, level, harvest=harvest)


class FREDAnonymizer:
    """Algorithm 1: iterative fusion-resilient anonymization.

    Parameters
    ----------
    source:
        The auxiliary channel ``Q`` the simulated adversary harvests from.
    attack_config:
        Configuration of the simulated fusion attack ``F`` (which inputs to
        fuse, assumed sensitive range, rules, engine).
    config:
        Sweep configuration (levels, thresholds, weights, base anonymizer).
    attack_factory:
        Optional override that builds the attack object for each level;
        defaults to ``WebFusionAttack(source, attack_config)``.  Useful for
        injecting custom adversaries in ablations.
    """

    def __init__(
        self,
        source: AuxiliarySource,
        attack_config: AttackConfig,
        config: FREDConfig | None = None,
        attack_factory: Callable[[], WebFusionAttack] | None = None,
    ) -> None:
        self.source = source
        self.attack_config = attack_config
        self.config = config or FREDConfig()
        self._attack_factory = attack_factory or _DefaultAttackFactory(
            source, attack_config
        )

    # Harvest (level-independent) -------------------------------------------------

    def harvest(self, private: Table) -> tuple[list, Table]:
        """Run the linkage/harvest step once for a private table.

        Anonymizers preserve rows and row order, so the release identifier
        column equals the private table's at every level — one harvest serves
        the whole sweep.  The harvest is produced through the attack factory,
        so custom adversaries keep control of how names are resolved.
        """
        names = [str(n) for n in private.identifier_column()]
        return self._attack_factory().harvest(names)

    # Single-level evaluation -----------------------------------------------------

    def evaluate_level(
        self,
        private: Table,
        level: int,
        harvest: tuple[list, Table] | None = None,
    ) -> LevelOutcome:
        """Anonymize to one level, simulate the attack, and measure everything.

        ``harvest`` injects the precomputed (level-independent) harvest; when
        omitted the attack harvests on the fly, as a standalone evaluation
        should.
        """
        anonymization = self.config.anonymizer.anonymize(private, level)
        attack = self._attack_factory().run(anonymization.release, harvest=harvest)
        assumed_range = self.attack_config.output_universe
        before = dissimilarity_before_fusion(
            private, anonymization.release, assumed_range
        )
        after = dissimilarity_after_fusion(
            private, anonymization.release, attack.estimates
        )
        utility = utility_of_result(anonymization)
        meets_protection = (
            self.config.protection_threshold is None
            or after >= self.config.protection_threshold
        )
        meets_utility = (
            self.config.utility_threshold is None
            or utility >= self.config.utility_threshold
        )
        return LevelOutcome(
            level=level,
            anonymization=anonymization,
            attack=attack,
            protection_before=before,
            protection_after=after,
            information_gain=before - after,
            utility=utility,
            meets_protection=meets_protection,
            meets_utility=meets_utility,
        )

    # Full sweep ------------------------------------------------------------------

    def sweep(
        self,
        private: Table,
        levels: Iterable[int] | None = None,
        harvest: tuple[list, Table] | None = None,
    ) -> list[LevelOutcome]:
        """Evaluate every level (honouring the utility stopping rule).

        The level-independent harvest is resolved **once** — taken from the
        ``harvest`` argument when provided (e.g. the service's memoized
        harvest), otherwise computed up front via :meth:`harvest` — and shared
        read-only by every level evaluation.

        With ``config.parallelism > 1`` the per-level evaluations — which are
        independent jobs — run concurrently on a ``concurrent.futures`` pool
        and are merged deterministically in level order; the utility stopping
        rule is applied to the merged sequence, so the returned outcomes are
        identical to a serial sweep's.
        """
        sweep_levels = list(levels if levels is not None else self.config.levels)
        if harvest is None and self.config.reuse_harvest:
            harvest = self.harvest(private)
        if self.config.parallelism <= 1 or len(sweep_levels) <= 1:
            outcomes_in_order = self._sweep_serial(private, sweep_levels, harvest)
        else:
            outcomes_in_order = self._sweep_parallel(private, sweep_levels, harvest)
        return self._apply_stop_rule(outcomes_in_order)

    def _sweep_serial(
        self,
        private: Table,
        levels: Sequence[int],
        harvest: tuple[list, Table] | None,
    ) -> list[LevelOutcome]:
        """Evaluate levels one after another, honouring early stopping."""
        outcomes: list[LevelOutcome] = []
        for level in levels:
            outcome = self.evaluate_level(private, level, harvest=harvest)
            outcomes.append(outcome)
            if self._stops_sweep(outcome):
                break
        return outcomes

    def _sweep_parallel(
        self,
        private: Table,
        levels: Sequence[int],
        harvest: tuple[list, Table] | None,
    ) -> list[LevelOutcome | BaseException]:
        """Evaluate all levels concurrently; results come back in level order.

        Levels past a utility stop are evaluated speculatively (the merge in
        :meth:`_apply_stop_rule` discards them), trading some wasted work for
        wall-clock speed — the merged result is bit-identical to serial.
        Per-level exceptions are captured rather than raised here: a failure
        at a level the serial loop would never have reached (e.g. an
        infeasible ``k`` past the utility stop) must not fail the sweep.
        """
        workers = min(self.config.parallelism, len(levels))
        pool: Executor
        if self.config.executor == "process":
            # Serialize the shared per-sweep state (anonymizer, private table,
            # harvest) exactly once and ship it through the pool initializer;
            # per-level submissions then carry only the level number.  The
            # naive `pool.submit(self.evaluate_level, private, k, harvest)`
            # re-pickled the whole harvest for every level.
            ship = self
            if harvest is not None and isinstance(
                self._attack_factory, _DefaultAttackFactory
            ):
                # Workers only replay the precomputed harvest, so the real
                # auxiliary corpus (text + linkage index) need not travel.
                stub = _HarvestedSource(self.source.attribute_names)
                ship = FREDAnonymizer.__new__(FREDAnonymizer)
                ship.source = stub
                ship.attack_config = self.attack_config
                ship.config = self.config
                ship._attack_factory = _DefaultAttackFactory(
                    stub, self.attack_config
                )
            publication = None
            if self.config.resolved_shared_index():
                index = getattr(ship.source, "linkage_index", None)
                if index is not None:
                    # Publish the linkage index to a shared-memory segment:
                    # the anonymizer then pickles as a ~1 KB manifest and
                    # every worker attaches zero-copy instead of rebuilding
                    # the flat buffers from a private replica.
                    publication = SharedLinkageIndex.publish(index)
            try:
                payload = pickle.dumps(
                    (ship, private, harvest), protocol=pickle.HIGHEST_PROTOCOL
                )
                pool = ProcessPoolExecutor(
                    max_workers=workers,
                    initializer=_sweep_worker_init,
                    initargs=(payload,),
                )
                with pool:
                    futures = [
                        pool.submit(_sweep_worker_evaluate, k) for k in levels
                    ]
                    results: list[LevelOutcome | BaseException] = []
                    for future in futures:
                        try:
                            results.append(future.result())
                        except Exception as error:
                            results.append(error)
                    return results
            finally:
                if publication is not None:
                    publication.close()
        pool = ThreadPoolExecutor(max_workers=workers)
        with pool:
            futures = [
                pool.submit(self.evaluate_level, private, k, harvest) for k in levels
            ]
            results: list[LevelOutcome | BaseException] = []
            for future in futures:
                try:
                    results.append(future.result())
                except Exception as error:
                    results.append(error)
            return results

    def _stops_sweep(self, outcome: LevelOutcome) -> bool:
        return (
            self.config.stop_below_utility
            and self.config.utility_threshold is not None
            and outcome.utility < self.config.utility_threshold
        )

    def _apply_stop_rule(
        self, outcomes: Sequence[LevelOutcome | BaseException]
    ) -> list[LevelOutcome]:
        """Truncate an in-order outcome sequence after the first utility stop.

        An exception entry re-raises only if it sits at or before the stop
        point — exactly the level where the serial loop would have raised.
        Speculatively-evaluated failures past the stop are discarded with the
        rest of the tail.
        """
        merged: list[LevelOutcome] = []
        for outcome in outcomes:
            if isinstance(outcome, BaseException):
                raise outcome
            merged.append(outcome)
            if self._stops_sweep(outcome):
                break
        return merged

    def run(
        self, private: Table, harvest: tuple[list, Table] | None = None
    ) -> FREDResult:
        """Execute the full FRED optimization and return the sweep trace.

        ``harvest`` optionally injects a precomputed harvest (see
        :meth:`sweep`); otherwise the sweep harvests exactly once.
        """
        outcomes = self.sweep(private, harvest=harvest)
        if not outcomes:
            raise FREDInfeasibleError("the sweep evaluated no levels")

        protections = np.array([o.protection_after for o in outcomes])
        utilities = np.array([o.utility for o in outcomes])
        scores = self.config.objective.scores(protections, utilities)
        score_by_level = {o.level: float(s) for o, s in zip(outcomes, scores)}

        feasible = [o for o in outcomes if o.feasible]
        if not feasible:
            raise FREDInfeasibleError(
                "no anonymization level satisfies both the protection threshold "
                f"(Tp={self.config.protection_threshold}) and the utility threshold "
                f"(Tu={self.config.utility_threshold})"
            )
        optimal = max(feasible, key=lambda o: score_by_level[o.level])
        return FREDResult(
            outcomes=outcomes,
            scores=score_by_level,
            optimal_level=optimal.level,
            config=self.config,
        )
