"""The weighted protection/utility objective ``H`` (Section IV).

For every candidate anonymization level the publisher weighs the protection
against fusion attacks (``P ∘ P̂``, the dissimilarity between the private data
and the adversary's post-fusion estimate) against the utility of the release
(``U``, the inverse discernibility metric)::

    H_i = W1 * (P ∘ P̂_i) + W2 * U_i

Raw protection and utility live on wildly different scales (1e8 vs 1e-3 in the
paper's experiments), so adding them directly makes the weights meaningless.
The paper folds a ``1/m`` normalization into its weight matrices; this module
makes the normalization explicit and configurable:

* ``"minmax"`` (default) rescales protection and utility to ``[0, 1]`` over the
  swept levels before weighting, which reproduces the shape and magnitude of
  the paper's Figure 8 (H values in the 0.1-0.5 range with an interior
  optimum);
* ``"none"`` uses the raw values, for callers who pre-scale their weights.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.exceptions import FREDConfigurationError

__all__ = ["WeightedObjective"]


@dataclass(frozen=True)
class WeightedObjective:
    """Weighted sum of protection and utility over a sweep of candidate levels.

    Parameters
    ----------
    protection_weight:
        ``W1``, the weight on the dissimilarity ``P ∘ P̂``.
    utility_weight:
        ``W2``, the weight on the release utility ``U``.
    normalization:
        ``"minmax"`` or ``"none"`` (see module docstring).
    """

    protection_weight: float = 0.5
    utility_weight: float = 0.5
    normalization: str = "minmax"

    def __post_init__(self) -> None:
        if self.protection_weight < 0 or self.utility_weight < 0:
            raise FREDConfigurationError("objective weights must be non-negative")
        if self.protection_weight == 0 and self.utility_weight == 0:
            raise FREDConfigurationError("at least one objective weight must be positive")
        if self.normalization not in ("minmax", "none"):
            raise FREDConfigurationError(
                f"unknown normalization {self.normalization!r}; use 'minmax' or 'none'"
            )

    def _normalize(self, values: np.ndarray) -> np.ndarray:
        if self.normalization == "none":
            return values
        low = float(values.min())
        high = float(values.max())
        if high <= low:
            return np.full_like(values, 0.5)
        return (values - low) / (high - low)

    def scores(
        self, protections: Sequence[float], utilities: Sequence[float]
    ) -> np.ndarray:
        """``H_i`` for every level of a sweep."""
        protections = np.asarray(protections, dtype=float)
        utilities = np.asarray(utilities, dtype=float)
        if protections.shape != utilities.shape or protections.ndim != 1:
            raise FREDConfigurationError(
                "protections and utilities must be equal-length vectors"
            )
        if protections.size == 0:
            raise FREDConfigurationError("cannot score an empty sweep")
        scaled_protection = self._normalize(protections)
        scaled_utility = self._normalize(utilities)
        return (
            self.protection_weight * scaled_protection
            + self.utility_weight * scaled_utility
        )

    def score(self, protection: float, utility: float) -> float:
        """``H`` for a single level without normalization (raw weighted sum)."""
        return self.protection_weight * protection + self.utility_weight * utility
