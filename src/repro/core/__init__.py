"""FRED core: the weighted objective and the Algorithm-1 optimizer."""

from repro.core.fred import FREDAnonymizer, FREDConfig, FREDResult, LevelOutcome
from repro.core.objective import WeightedObjective

__all__ = [
    "WeightedObjective",
    "FREDConfig",
    "FREDAnonymizer",
    "FREDResult",
    "LevelOutcome",
]
