"""Record linkage between release identifiers and web auxiliary records.

The adversary "uses the customer names present in the release to search for
additional information about the customers available on the web".  Names found
on the web rarely match the enterprise database verbatim (initials, swapped
order, typos, titles), so the attack needs approximate string matching.

This module holds the **scalar reference implementations** of the similarity
machinery — Levenshtein, Jaro / Jaro-Winkler, token-set Jaccard and the
composite :func:`name_similarity`.  They are the executable specification for
the batched engine in :mod:`repro.linkage`, whose vectorized kernels must
reproduce them bit-for-bit (pinned by ``tests/test_property_linkage.py``).
:class:`NameMatcher` is kept as a thin compatibility wrapper over
:class:`repro.linkage.LinkageIndex`; new code should use the index directly.
"""

from __future__ import annotations

from typing import Sequence

from repro.exceptions import LinkageError
from repro.linkage.index import LinkageIndex, MatchCandidate
from repro.linkage.normalize import normalize_name

__all__ = [
    "normalize_name",
    "levenshtein_distance",
    "levenshtein_similarity",
    "jaro_similarity",
    "jaro_winkler_similarity",
    "token_set_similarity",
    "name_similarity",
    "MatchCandidate",
    "NameMatcher",
]


def levenshtein_distance(left: str, right: str) -> int:
    """Classic dynamic-programming edit distance (insert/delete/substitute)."""
    if left == right:
        return 0
    if not left:
        return len(right)
    if not right:
        return len(left)
    previous = list(range(len(right) + 1))
    for i, left_char in enumerate(left, start=1):
        current = [i]
        for j, right_char in enumerate(right, start=1):
            cost = 0 if left_char == right_char else 1
            current.append(min(previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost))
        previous = current
    return previous[-1]


def levenshtein_similarity(left: str, right: str) -> float:
    """Edit distance normalized into a ``[0, 1]`` similarity."""
    if not left and not right:
        return 1.0
    longest = max(len(left), len(right))
    return 1.0 - levenshtein_distance(left, right) / longest


def jaro_similarity(left: str, right: str) -> float:
    """Jaro similarity of two strings."""
    if left == right:
        return 1.0
    if not left or not right:
        return 0.0
    window = max(len(left), len(right)) // 2 - 1
    window = max(window, 0)

    left_matches = [False] * len(left)
    right_matches = [False] * len(right)
    matches = 0
    for i, char in enumerate(left):
        start = max(0, i - window)
        end = min(i + window + 1, len(right))
        for j in range(start, end):
            if right_matches[j] or right[j] != char:
                continue
            left_matches[i] = True
            right_matches[j] = True
            matches += 1
            break
    if matches == 0:
        return 0.0

    transpositions = 0
    j = 0
    for i, matched in enumerate(left_matches):
        if not matched:
            continue
        while not right_matches[j]:
            j += 1
        if left[i] != right[j]:
            transpositions += 1
        j += 1
    transpositions //= 2

    return (
        matches / len(left) + matches / len(right) + (matches - transpositions) / matches
    ) / 3.0


def jaro_winkler_similarity(left: str, right: str, prefix_scale: float = 0.1) -> float:
    """Jaro-Winkler similarity (Jaro boosted by the length of the common prefix)."""
    if not 0.0 <= prefix_scale <= 0.25:
        raise LinkageError("prefix_scale must lie in [0, 0.25]")
    jaro = jaro_similarity(left, right)
    prefix = 0
    for left_char, right_char in zip(left[:4], right[:4]):
        if left_char != right_char:
            break
        prefix += 1
    return jaro + prefix * prefix_scale * (1.0 - jaro)


def token_set_similarity(left: str, right: str) -> float:
    """Jaccard similarity of the token sets of two normalized names."""
    left_tokens = set(left.split())
    right_tokens = set(right.split())
    if not left_tokens and not right_tokens:
        return 1.0
    if not left_tokens or not right_tokens:
        return 0.0
    return len(left_tokens & right_tokens) / len(left_tokens | right_tokens)


def name_similarity(left: str, right: str) -> float:
    """Composite name similarity used by the linkage step.

    Names are normalized, then scored with the maximum of Jaro-Winkler on the
    full string and the token-set similarity (which forgives token reordering
    such as "Miller, Alice" vs "Alice Miller"), softened with the Levenshtein
    similarity to temper pure-prefix coincidences.
    """
    left_norm = normalize_name(left)
    right_norm = normalize_name(right)
    if not left_norm or not right_norm:
        return 0.0
    if left_norm == right_norm:
        return 1.0
    jaro_winkler = jaro_winkler_similarity(left_norm, right_norm)
    token_set = token_set_similarity(left_norm, right_norm)
    levenshtein = levenshtein_similarity(left_norm, right_norm)
    return max(0.6 * jaro_winkler + 0.4 * levenshtein, token_set)


class NameMatcher:
    """Approximate name matcher — compatibility wrapper over the batched engine.

    Historically this class ran the scalar similarity functions above under
    first-letter blocking; it now delegates to
    :class:`repro.linkage.LinkageIndex` (identical scores, multi-key q-gram
    blocking by default) and keeps the original constructor and query surface.

    Parameters
    ----------
    corpus_names:
        The names known to the auxiliary source (web page owners).
    threshold:
        Minimum composite similarity for a match to be reported.
    use_blocking:
        When disabled, every query is scored against the full corpus.
    blocking:
        Blocking scheme when ``use_blocking`` is set: ``"qgram"`` (default)
        or ``"first-letter"`` (the historical scheme).
    qgram_size:
        Character q-gram width of the ``"qgram"`` scheme.
    """

    def __init__(
        self,
        corpus_names: Sequence[str],
        threshold: float = 0.82,
        use_blocking: bool = True,
        blocking: str = "qgram",
        qgram_size: int = 2,
    ) -> None:
        self.use_blocking = use_blocking
        self._index = LinkageIndex(
            corpus_names,
            threshold=threshold,
            blocking=blocking if use_blocking else "none",
            qgram_size=qgram_size,
        )

    @property
    def threshold(self) -> float:
        """Minimum composite similarity for a match to be reported."""
        return self._index.threshold

    @property
    def index(self) -> LinkageIndex:
        """The underlying batched linkage index."""
        return self._index

    def candidates(self, query: str) -> list[MatchCandidate]:
        """All corpus entries scoring above the threshold, best first."""
        return self._index.candidates(query)

    def best_match(self, query: str) -> MatchCandidate | None:
        """The single best match above the threshold, or ``None``."""
        return self._index.best_match(query)

    def match_many(self, queries: Sequence[str]) -> list[MatchCandidate | None]:
        """The best match for every query, resolved in one batched pass."""
        return self._index.match_many(queries)
