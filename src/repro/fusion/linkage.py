"""Record linkage between release identifiers and web auxiliary records.

The adversary "uses the customer names present in the release to search for
additional information about the customers available on the web".  Names found
on the web rarely match the enterprise database verbatim (initials, swapped
order, typos, titles), so the attack needs approximate string matching.  This
module implements the standard machinery from scratch:

* name normalization (case folding, punctuation and title stripping);
* Levenshtein edit distance and similarity;
* Jaro and Jaro-Winkler similarity;
* token-set similarity (order-insensitive comparison of name parts);
* a :class:`NameMatcher` combining them, with first-letter blocking so the
  comparison stays near-linear on larger corpora.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.exceptions import LinkageError

__all__ = [
    "normalize_name",
    "levenshtein_distance",
    "levenshtein_similarity",
    "jaro_similarity",
    "jaro_winkler_similarity",
    "token_set_similarity",
    "name_similarity",
    "MatchCandidate",
    "NameMatcher",
]

_TITLES = {"dr", "prof", "professor", "mr", "mrs", "ms", "phd", "jr", "sr", "ii", "iii"}
_NON_ALPHA = re.compile(r"[^a-z\s]")
_WHITESPACE = re.compile(r"\s+")


def normalize_name(name: str) -> str:
    """Lower-case a name, strip punctuation, titles and redundant whitespace."""
    text = _NON_ALPHA.sub(" ", str(name).lower())
    tokens = [t for t in _WHITESPACE.split(text) if t and t not in _TITLES]
    return " ".join(tokens)


def levenshtein_distance(left: str, right: str) -> int:
    """Classic dynamic-programming edit distance (insert/delete/substitute)."""
    if left == right:
        return 0
    if not left:
        return len(right)
    if not right:
        return len(left)
    previous = list(range(len(right) + 1))
    for i, left_char in enumerate(left, start=1):
        current = [i]
        for j, right_char in enumerate(right, start=1):
            cost = 0 if left_char == right_char else 1
            current.append(min(previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost))
        previous = current
    return previous[-1]


def levenshtein_similarity(left: str, right: str) -> float:
    """Edit distance normalized into a ``[0, 1]`` similarity."""
    if not left and not right:
        return 1.0
    longest = max(len(left), len(right))
    return 1.0 - levenshtein_distance(left, right) / longest


def jaro_similarity(left: str, right: str) -> float:
    """Jaro similarity of two strings."""
    if left == right:
        return 1.0
    if not left or not right:
        return 0.0
    window = max(len(left), len(right)) // 2 - 1
    window = max(window, 0)

    left_matches = [False] * len(left)
    right_matches = [False] * len(right)
    matches = 0
    for i, char in enumerate(left):
        start = max(0, i - window)
        end = min(i + window + 1, len(right))
        for j in range(start, end):
            if right_matches[j] or right[j] != char:
                continue
            left_matches[i] = True
            right_matches[j] = True
            matches += 1
            break
    if matches == 0:
        return 0.0

    transpositions = 0
    j = 0
    for i, matched in enumerate(left_matches):
        if not matched:
            continue
        while not right_matches[j]:
            j += 1
        if left[i] != right[j]:
            transpositions += 1
        j += 1
    transpositions //= 2

    return (
        matches / len(left) + matches / len(right) + (matches - transpositions) / matches
    ) / 3.0


def jaro_winkler_similarity(left: str, right: str, prefix_scale: float = 0.1) -> float:
    """Jaro-Winkler similarity (Jaro boosted by the length of the common prefix)."""
    if not 0.0 <= prefix_scale <= 0.25:
        raise LinkageError("prefix_scale must lie in [0, 0.25]")
    jaro = jaro_similarity(left, right)
    prefix = 0
    for left_char, right_char in zip(left[:4], right[:4]):
        if left_char != right_char:
            break
        prefix += 1
    return jaro + prefix * prefix_scale * (1.0 - jaro)


def token_set_similarity(left: str, right: str) -> float:
    """Jaccard similarity of the token sets of two normalized names."""
    left_tokens = set(left.split())
    right_tokens = set(right.split())
    if not left_tokens and not right_tokens:
        return 1.0
    if not left_tokens or not right_tokens:
        return 0.0
    return len(left_tokens & right_tokens) / len(left_tokens | right_tokens)


def name_similarity(left: str, right: str) -> float:
    """Composite name similarity used by the linkage step.

    Names are normalized, then scored with the maximum of Jaro-Winkler on the
    full string and the token-set similarity (which forgives token reordering
    such as "Miller, Alice" vs "Alice Miller"), softened with the Levenshtein
    similarity to temper pure-prefix coincidences.
    """
    left_norm = normalize_name(left)
    right_norm = normalize_name(right)
    if not left_norm or not right_norm:
        return 0.0
    if left_norm == right_norm:
        return 1.0
    jaro_winkler = jaro_winkler_similarity(left_norm, right_norm)
    token_set = token_set_similarity(left_norm, right_norm)
    levenshtein = levenshtein_similarity(left_norm, right_norm)
    return max(0.6 * jaro_winkler + 0.4 * levenshtein, token_set)


@dataclass(frozen=True)
class MatchCandidate:
    """A candidate match of a query name against a corpus entry."""

    query: str
    candidate: str
    candidate_index: int
    score: float


class NameMatcher:
    """Approximate name matcher with first-letter blocking.

    Parameters
    ----------
    corpus_names:
        The names known to the auxiliary source (web page owners).
    threshold:
        Minimum composite similarity for a match to be reported.
    use_blocking:
        When enabled, only candidates sharing a first letter (of any token)
        with the query are compared — the standard blocking trick that keeps
        linkage tractable on larger corpora.
    """

    def __init__(
        self,
        corpus_names: Sequence[str],
        threshold: float = 0.82,
        use_blocking: bool = True,
    ) -> None:
        if not 0.0 < threshold <= 1.0:
            raise LinkageError(f"threshold must lie in (0, 1], got {threshold}")
        self.threshold = threshold
        self.use_blocking = use_blocking
        self._names = list(corpus_names)
        self._normalized = [normalize_name(name) for name in self._names]
        self._blocks: dict[str, list[int]] = {}
        for index, normalized in enumerate(self._normalized):
            for token in normalized.split():
                self._blocks.setdefault(token[0], []).append(index)

    def _candidate_indices(self, normalized_query: str) -> Iterable[int]:
        if not self.use_blocking:
            return range(len(self._names))
        indices: set[int] = set()
        for token in normalized_query.split():
            indices.update(self._blocks.get(token[0], []))
        return sorted(indices)

    def candidates(self, query: str) -> list[MatchCandidate]:
        """All corpus entries scoring above the threshold, best first."""
        normalized_query = normalize_name(query)
        if not normalized_query:
            return []
        results = []
        for index in self._candidate_indices(normalized_query):
            score = name_similarity(normalized_query, self._normalized[index])
            if score >= self.threshold:
                results.append(
                    MatchCandidate(
                        query=query,
                        candidate=self._names[index],
                        candidate_index=index,
                        score=score,
                    )
                )
        results.sort(key=lambda c: c.score, reverse=True)
        return results

    def best_match(self, query: str) -> MatchCandidate | None:
        """The single best match above the threshold, or ``None``."""
        matches = self.candidates(query)
        return matches[0] if matches else None
