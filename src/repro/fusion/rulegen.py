"""Automatic fuzzy-rule induction for the fusion attack.

The paper's adversary writes the knowledge rules by hand from domain
understanding ("a CEO with large property holdings sits in the High income
class").  To run the attack at scale — and to study how sensitive the breach
is to the quality of the rule base (DESIGN.md ablation §6) — two automatic
rule sources are provided:

* :func:`monotone_rules` — the domain-knowledge surrogate.  For every input
  variable the adversary declares a *direction* (+1: larger values mean larger
  income, -1: the opposite) and the generator emits one single-condition rule
  per linguistic term, mapping the i-th input term to the corresponding output
  term.  This encodes exactly the kind of coarse ordinal knowledge the paper's
  example uses.
* :func:`wang_mendel_rules` — Wang-Mendel rule learning from a (small) sample
  of records whose sensitive value the adversary happens to know (public
  salaries of a few colleagues, say).  Each labeled example generates the rule
  formed by its maximum-membership terms; conflicting rules (same antecedent,
  different consequent) are resolved by keeping the highest-degree one.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.exceptions import FuzzyDefinitionError
from repro.fuzzy.rules import Condition, FuzzyRule
from repro.fuzzy.variables import LinguisticVariable

__all__ = ["monotone_rules", "wang_mendel_rules"]


def monotone_rules(
    inputs: Mapping[str, LinguisticVariable],
    output: LinguisticVariable,
    directions: Mapping[str, int] | None = None,
    weight: float = 1.0,
) -> list[FuzzyRule]:
    """Single-condition ordinal rules mapping each input term to an output term.

    For an input with terms ``(low, medium, high)`` and an output with terms
    ``(low, medium, high)`` and direction ``+1`` this produces::

        IF x IS low    THEN income IS low
        IF x IS medium THEN income IS medium
        IF x IS high   THEN income IS high

    With direction ``-1`` the mapping is reversed.  Inputs and output may have
    different term counts; indices are rescaled proportionally.
    """
    directions = dict(directions or {})
    output_terms = list(output.term_names)
    if len(output_terms) < 2:
        raise FuzzyDefinitionError("the output variable needs at least 2 terms")

    rules: list[FuzzyRule] = []
    for name, variable in inputs.items():
        direction = directions.get(name, 1)
        if direction not in (-1, 1):
            raise FuzzyDefinitionError(
                f"direction for {name!r} must be +1 or -1, got {direction}"
            )
        input_terms = list(variable.term_names)
        if len(input_terms) < 2:
            raise FuzzyDefinitionError(
                f"input variable {name!r} needs at least 2 terms for monotone rules"
            )
        for i, input_term in enumerate(input_terms):
            position = i / (len(input_terms) - 1)
            if direction < 0:
                position = 1.0 - position
            output_index = round(position * (len(output_terms) - 1))
            rules.append(
                FuzzyRule(
                    conditions=(Condition(name, input_term),),
                    consequent_term=output_terms[output_index],
                    operator="and",
                    weight=weight,
                )
            )
    return rules


def wang_mendel_rules(
    records: Sequence[Mapping[str, float | None]],
    targets: Sequence[float],
    inputs: Mapping[str, LinguisticVariable],
    output: LinguisticVariable,
) -> list[FuzzyRule]:
    """Wang-Mendel rule induction from labeled examples.

    Each ``(record, target)`` pair produces one candidate rule whose antecedent
    is the maximum-membership term of every *available* input and whose
    consequent is the maximum-membership term of the target.  The candidate's
    degree is the product of those memberships; among candidates with the same
    antecedent, only the highest-degree rule is kept.
    """
    if len(records) != len(targets):
        raise FuzzyDefinitionError(
            f"records and targets lengths differ: {len(records)} vs {len(targets)}"
        )
    if not records:
        raise FuzzyDefinitionError("Wang-Mendel induction needs at least one labeled example")

    best: dict[tuple[tuple[str, str], ...], tuple[float, FuzzyRule]] = {}
    for record, target in zip(records, targets):
        conditions: list[Condition] = []
        degree = 1.0
        for name, variable in inputs.items():
            value = record.get(name)
            if value is None:
                continue
            memberships = variable.fuzzify(float(value))
            term = max(memberships, key=memberships.get)
            conditions.append(Condition(name, term))
            degree *= memberships[term]
        if not conditions:
            continue
        output_memberships = output.fuzzify(float(target))
        output_term = max(output_memberships, key=output_memberships.get)
        degree *= output_memberships[output_term]
        if degree <= 0.0:
            continue
        rule = FuzzyRule(
            conditions=tuple(conditions), consequent_term=output_term, operator="and"
        )
        key = tuple(sorted((c.variable, c.term) for c in conditions))
        existing = best.get(key)
        if existing is None or degree > existing[0]:
            best[key] = (degree, rule)

    if not best:
        raise FuzzyDefinitionError(
            "Wang-Mendel induction produced no rules (all examples were empty or zero-degree)"
        )
    return [rule for _, rule in best.values()]
