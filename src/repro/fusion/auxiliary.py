"""Auxiliary-data source abstraction.

The auxiliary data ``Q`` of the paper is whatever the adversary can gather
about the individuals named in the release — web pages, blogs, property
records.  The :class:`AuxiliarySource` interface abstracts over such channels
so that the attack pipeline can be exercised against the simulated web corpus
(:mod:`repro.fusion.web`), a CSV of scraped attributes, or any custom source.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.dataset.schema import Attribute, AttributeKind, AttributeRole, Schema
from repro.dataset.table import Table
from repro.exceptions import AuxiliarySourceError
from repro.linkage.index import LinkageIndex

__all__ = ["AuxiliaryRecord", "AuxiliarySource", "TableAuxiliarySource", "auxiliary_table"]


@dataclass(frozen=True)
class AuxiliaryRecord:
    """One person's auxiliary attributes as harvested from a source.

    Attributes
    ----------
    name:
        The name under which the record was found (the web page owner).
    attributes:
        Harvested attribute values keyed by attribute name (e.g.
        ``{"employment_seniority": 8, "property_holdings": 3560}``).
    confidence:
        The source's own confidence that the record belongs to the queried
        person (linkage score, search ranking, ...), in ``[0, 1]``.
    source:
        Free-text provenance (page URL, index name, ...).
    """

    name: str
    attributes: Mapping[str, float | str]
    confidence: float = 1.0
    source: str = ""

    def __post_init__(self) -> None:
        if not 0.0 <= self.confidence <= 1.0:
            raise AuxiliarySourceError(
                f"confidence must lie in [0, 1], got {self.confidence}"
            )

    def numeric_attribute(self, name: str) -> float | None:
        """A numeric attribute value, or ``None`` if absent / non-numeric."""
        value = self.attributes.get(name)
        if value is None or isinstance(value, str):
            return None
        return float(value)


class AuxiliarySource(abc.ABC):
    """A channel from which the adversary can harvest auxiliary records."""

    #: Names of the numeric attributes this source can provide.
    attribute_names: tuple[str, ...] = ()

    @abc.abstractmethod
    def search(self, name: str) -> list[AuxiliaryRecord]:
        """Records plausibly describing the person called ``name`` (best first)."""

    def lookup(self, name: str) -> AuxiliaryRecord | None:
        """The best record for ``name``, or ``None`` when nothing is found."""
        records = self.search(name)
        return records[0] if records else None

    def search_many(self, names: Sequence[str]) -> list[list[AuxiliaryRecord]]:
        """Search results for every name, in name order.

        The default loops over :meth:`search`; sources backed by a batched
        linkage engine override this (or :meth:`lookup_many`) to resolve the
        whole batch in one pass.
        """
        return [self.search(str(name)) for name in names]

    def lookup_many(self, names: Sequence[str]) -> list[AuxiliaryRecord | None]:
        """The best record per name (``None`` where nothing is found).

        This is the harvest entry point: the attack resolves a release's whole
        identifier column through one call, so a batched source pays its
        linkage cost once per corpus instead of once per (name, level) pair.
        """
        return [records[0] if records else None for records in self.search_many(names)]


@dataclass
class TableAuxiliarySource(AuxiliarySource):
    """An auxiliary source backed by an in-memory table keyed by a name column.

    Useful for loading previously harvested auxiliary data from CSV (via
    :func:`repro.dataset.io.read_csv`) and replaying an attack offline.

    By default names are looked up **exactly** (the table is assumed to be
    keyed by the same spellings the release uses).  Setting
    ``linkage_threshold`` switches the source to approximate record linkage:
    a :class:`~repro.linkage.LinkageIndex` is built over the name column once
    and queries resolve through blocked, batched similarity scoring — the
    right mode when the auxiliary CSV holds scraped web names.

    Parameters
    ----------
    table:
        The auxiliary table.
    name_column:
        The identifier column the table is keyed by.
    attribute_names:
        Harvestable numeric attributes (default: every numeric column except
        the name column).
    linkage_threshold:
        When set, minimum composite name similarity for a row to match;
        ``None`` (default) keeps exact lookups.
    blocking / qgram_size:
        Blocking knobs of the linkage index (approximate mode only).
    """

    table: Table
    name_column: str
    attribute_names: tuple[str, ...] = field(default_factory=tuple)
    linkage_threshold: float | None = None
    blocking: str = "qgram"
    qgram_size: int = 2

    def __post_init__(self) -> None:
        if self.name_column not in self.table.schema:
            raise AuxiliarySourceError(
                f"name column {self.name_column!r} not present in the auxiliary table"
            )
        if not self.attribute_names:
            self.attribute_names = tuple(
                attribute.name
                for attribute in self.table.schema.attributes
                if attribute.name != self.name_column and attribute.is_numeric
            )
        self._rows = list(self.table.rows())
        self._by_name = {str(row[self.name_column]): row for row in self._rows}
        self._index: LinkageIndex | None = None
        if self.linkage_threshold is not None:
            self._index = LinkageIndex(
                [str(row[self.name_column]) for row in self._rows],
                threshold=self.linkage_threshold,
                blocking=self.blocking,
                qgram_size=self.qgram_size,
            )

    def _record_from_row(
        self, row: Mapping[str, object], name: str, confidence: float = 1.0
    ) -> AuxiliaryRecord:
        attributes = {
            attribute_name: row[attribute_name]
            for attribute_name in self.attribute_names
            if row.get(attribute_name) is not None
        }
        return AuxiliaryRecord(
            name=name, attributes=attributes, confidence=confidence, source="table"
        )

    def search(self, name: str) -> list[AuxiliaryRecord]:
        if self._index is None:
            row = self._by_name.get(str(name))
            if row is None:
                return []
            return [self._record_from_row(row, str(name))]
        return [
            self._record_from_row(
                self._rows[match.candidate_index],
                match.candidate,
                confidence=min(match.score, 1.0),
            )
            for match in self._index.candidates(str(name))
        ]

    def lookup_many(self, names: Sequence[str]) -> list[AuxiliaryRecord | None]:
        """Best record per name; approximate mode resolves the batch at once."""
        if self._index is None:
            return super().lookup_many(names)
        matches = self._index.match_many([str(name) for name in names])
        return [
            None
            if match is None
            else self._record_from_row(
                self._rows[match.candidate_index],
                match.candidate,
                confidence=min(match.score, 1.0),
            )
            for match in matches
        ]


def auxiliary_table(records: Sequence[AuxiliaryRecord], attribute_names: Sequence[str]) -> Table:
    """Materialize harvested auxiliary records as a :class:`Table` (paper Table IV).

    Missing attributes are stored as ``None``; the name column is an identifier
    so the resulting table can be joined with the release on names.
    """
    schema = Schema(
        [Attribute("name", AttributeRole.IDENTIFIER, AttributeKind.TEXT)]
        + [Attribute(name, AttributeRole.QUASI_IDENTIFIER) for name in attribute_names]
    )
    rows = []
    for record in records:
        row: dict[str, object] = {"name": record.name}
        for name in attribute_names:
            row[name] = record.attributes.get(name)
        rows.append(row)
    return Table.from_rows(schema, rows)
