"""Auxiliary-data source abstraction.

The auxiliary data ``Q`` of the paper is whatever the adversary can gather
about the individuals named in the release — web pages, blogs, property
records.  The :class:`AuxiliarySource` interface abstracts over such channels
so that the attack pipeline can be exercised against the simulated web corpus
(:mod:`repro.fusion.web`), a CSV of scraped attributes, or any custom source.

Columnar harvest path
---------------------
The bulk-harvest entry point is :meth:`AuxiliarySource.harvest_records`,
which returns a :class:`HarvestRecords` batch — a plain
``list[AuxiliaryRecord | None]`` that additionally carries (or lazily
computes, exactly once) the ``(n_names,)`` float columns of every harvested
numeric attribute.  Sources backed by columnar storage
(:class:`TableAuxiliarySource`, the simulated web corpus) produce those
columns by array gather, so the attack's assemble step reads NaN-masked
arrays instead of looping per-record dicts — and a FRED sweep sharing one
harvest across levels pays the column extraction once, not once per level.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.dataset.schema import Attribute, AttributeKind, AttributeRole, Schema
from repro.dataset.table import Table
from repro.exceptions import AuxiliarySourceError
from repro.linkage.index import LinkageIndex

__all__ = [
    "AuxiliaryRecord",
    "AuxiliarySource",
    "ColumnRowAttributes",
    "HarvestRecords",
    "TableAuxiliarySource",
    "auxiliary_table",
]


@dataclass(frozen=True)
class AuxiliaryRecord:
    """One person's auxiliary attributes as harvested from a source.

    Attributes
    ----------
    name:
        The name under which the record was found (the web page owner).
    attributes:
        Harvested attribute values keyed by attribute name (e.g.
        ``{"employment_seniority": 8, "property_holdings": 3560}``).
    confidence:
        The source's own confidence that the record belongs to the queried
        person (linkage score, search ranking, ...), in ``[0, 1]``.
    source:
        Free-text provenance (page URL, index name, ...).
    """

    name: str
    attributes: Mapping[str, float | str]
    confidence: float = 1.0
    source: str = ""

    def __post_init__(self) -> None:
        if not 0.0 <= self.confidence <= 1.0:
            raise AuxiliarySourceError(
                f"confidence must lie in [0, 1], got {self.confidence}"
            )

    def numeric_attribute(self, name: str) -> float | None:
        """A numeric attribute value, or ``None`` if absent / non-numeric."""
        value = self.attributes.get(name)
        if value is None or isinstance(value, str):
            return None
        return float(value)


class HarvestRecords(list):
    """A bulk harvest: ``list[AuxiliaryRecord | None]`` plus cached columns.

    Behaves exactly like the historical record list (iteration, ``len``,
    indexing, equality, pickling), so every existing consumer of a harvest —
    the attack's alignment checks, the service cache, ablation code — keeps
    working.  On top of that, :meth:`numeric_column` exposes each harvested
    attribute as one NaN-masked ``(n_names,)`` float array.  Columnar sources
    pre-seed those arrays with a single gather; otherwise they are derived
    from the records on first use and memoized, so a sweep sharing one
    harvest across many anonymization levels extracts each column once.
    """

    def __init__(
        self,
        records: Sequence["AuxiliaryRecord | None"] = (),
        numeric_columns: Mapping[str, np.ndarray] | None = None,
    ) -> None:
        super().__init__(records)
        self._numeric: dict[str, np.ndarray] = dict(numeric_columns or {})

    def numeric_column(self, name: str) -> np.ndarray:
        """Attribute ``name`` as a float column (NaN where unmatched/absent).

        The returned array is the cached buffer — callers must copy before
        mutating.
        """
        column = self._numeric.get(name)
        if column is None:
            column = np.full(len(self), np.nan)
            for i, record in enumerate(self):
                if record is None:
                    continue
                value = record.numeric_attribute(name)
                if value is not None:
                    column[i] = value
            self._numeric[name] = column
        return column


class AuxiliarySource(abc.ABC):
    """A channel from which the adversary can harvest auxiliary records."""

    #: Names of the numeric attributes this source can provide.
    attribute_names: tuple[str, ...] = ()

    @property
    def linkage_index(self) -> "LinkageIndex | None":
        """The source's record-linkage index, if it resolves names through one.

        Linkage-backed sources override this (building their index if it is
        lazy), which lets process-pool sweeps publish the index to shared
        memory (:mod:`repro.linkage.shm`) instead of pickling a replica per
        worker.  ``None`` means the source has nothing to share.
        """
        return None

    @abc.abstractmethod
    def search(self, name: str) -> list[AuxiliaryRecord]:
        """Records plausibly describing the person called ``name`` (best first)."""

    def lookup(self, name: str) -> AuxiliaryRecord | None:
        """The best record for ``name``, or ``None`` when nothing is found."""
        records = self.search(name)
        return records[0] if records else None

    def search_many(self, names: Sequence[str]) -> list[list[AuxiliaryRecord]]:
        """Search results for every name, in name order.

        The default loops over :meth:`search`; sources backed by a batched
        linkage engine override this (or :meth:`lookup_many`) to resolve the
        whole batch in one pass.
        """
        return [self.search(str(name)) for name in names]

    def lookup_many(self, names: Sequence[str]) -> list[AuxiliaryRecord | None]:
        """The best record per name (``None`` where nothing is found).

        This is the batched lookup primitive: the attack resolves a release's
        whole identifier column through one call, so a batched source pays its
        linkage cost once per corpus instead of once per (name, level) pair.
        """
        return [records[0] if records else None for records in self.search_many(names)]

    def harvest_records(self, names: Sequence[str]) -> HarvestRecords:
        """Best record per name as a :class:`HarvestRecords` batch.

        This is the harvest entry point used by
        :func:`repro.fusion.attack.harvest_auxiliary`.  The default wraps
        :meth:`lookup_many`; columnar sources override it to also attach
        array-gathered numeric fact columns.
        """
        return HarvestRecords(self.lookup_many(list(names)))


def _py_cell(value: object) -> object:
    """Unwrap numpy scalars so record attributes hold plain Python values."""
    return value.item() if isinstance(value, np.generic) else value


class ColumnRowAttributes(Mapping):
    """One storage row viewed as a record attribute mapping, fully lazily.

    Columnar sources hand each :class:`AuxiliaryRecord` one of these instead
    of materializing a per-row dict: a cell is read from the source's column
    arrays only when something actually asks for it (``reader(name, row)``;
    a ``None`` return means the cell is absent).  Since the attack's
    assemble step reads whole :meth:`HarvestRecords.numeric_column` arrays
    and never touches per-record attributes, the harvest path now builds
    zero dicts.

    The view compares equal to the dict it stands for (the :class:`Mapping`
    mixin contract), and pickling materializes it to a plain dict — a
    pickled record must not drag the source's column arrays along.
    """

    __slots__ = ("_reader", "_names", "_row")

    def __init__(
        self,
        reader: "Callable[[str, int], object]",
        names: tuple[str, ...],
        row: int,
    ) -> None:
        self._reader = reader
        self._names = names
        self._row = row

    def __getitem__(self, key: str) -> object:
        if key in self._names:
            value = self._reader(key, self._row)
            if value is not None:
                return value
        raise KeyError(key)

    def __iter__(self):
        for name in self._names:
            if self._reader(name, self._row) is not None:
                yield name

    def __len__(self) -> int:
        return sum(1 for _ in self)

    def __repr__(self) -> str:
        return repr(dict(self))

    def __reduce__(self):
        return (dict, (dict(self),))


def _gather_numeric_column(column: np.ndarray, rows: np.ndarray) -> np.ndarray:
    """Gather storage-array cells at ``rows`` into a float column.

    ``rows`` holds one storage row per queried name (``-1`` = no match).
    Cells follow :meth:`AuxiliaryRecord.numeric_attribute` semantics: numbers
    coerce to float, strings / ``None`` / misses become NaN.
    """
    out = np.full(rows.shape[0], np.nan)
    hit = rows >= 0
    if not bool(hit.any()):
        return out
    taken = column[np.where(hit, rows, 0)]
    if column.dtype.kind in "if":
        out[hit] = taken[hit].astype(np.float64)
        return out
    converted = np.full(rows.shape[0], np.nan)
    for i in np.nonzero(hit)[0]:
        value = taken[i]
        if value is None or isinstance(value, str):
            continue
        converted[i] = float(value)
    out[hit] = converted[hit]
    return out


@dataclass
class TableAuxiliarySource(AuxiliarySource):
    """An auxiliary source backed by an in-memory table keyed by a name column.

    Useful for loading previously harvested auxiliary data from CSV (via
    :func:`repro.dataset.io.read_csv`) and replaying an attack offline.

    By default names are looked up **exactly** (the table is assumed to be
    keyed by the same spellings the release uses).  Setting
    ``linkage_threshold`` switches the source to approximate record linkage:
    a :class:`~repro.linkage.LinkageIndex` is built over the name column once
    and queries resolve through blocked, batched similarity scoring — the
    right mode when the auxiliary CSV holds scraped web names.

    The source is fully columnar: it keeps references to the table's typed
    column buffers and assembles records (or whole harvest columns) by array
    gather — the table's rows are never materialized as per-row dicts.

    Parameters
    ----------
    table:
        The auxiliary table.
    name_column:
        The identifier column the table is keyed by.
    attribute_names:
        Harvestable numeric attributes (default: every numeric column except
        the name column).
    linkage_threshold:
        When set, minimum composite name similarity for a row to match;
        ``None`` (default) keeps exact lookups.
    blocking / qgram_size:
        Blocking knobs of the linkage index (approximate mode only).
    """

    table: Table
    name_column: str
    attribute_names: tuple[str, ...] = field(default_factory=tuple)
    linkage_threshold: float | None = None
    blocking: str = "qgram"
    qgram_size: int = 2

    def __post_init__(self) -> None:
        if self.name_column not in self.table.schema:
            raise AuxiliarySourceError(
                f"name column {self.name_column!r} not present in the auxiliary table"
            )
        if not self.attribute_names:
            self.attribute_names = tuple(
                attribute.name
                for attribute in self.table.schema.attributes
                if attribute.name != self.name_column and attribute.is_numeric
            )
        self._names = [str(name) for name in self.table.column(self.name_column)]
        # Last occurrence wins on duplicate names, like the historical
        # row-dict index did.
        self._by_name = {name: row for row, name in enumerate(self._names)}
        self._columns = {
            name: self.table.column_array(name) for name in self.attribute_names
        }
        self._index: LinkageIndex | None = None
        if self.linkage_threshold is not None:
            self._index = LinkageIndex(
                self._names,
                threshold=self.linkage_threshold,
                blocking=self.blocking,
                qgram_size=self.qgram_size,
            )

    def __getstate__(self) -> dict:
        # The name list, exact-lookup dict and column gathers all duplicate
        # table data; ship only the table plus the (buffer-backed, cheap to
        # pickle) linkage index and rebuild the rest on load.
        state = dict(self.__dict__)
        for derived in ("_names", "_by_name", "_columns"):
            state.pop(derived, None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        # Only the exact-lookup mode ever reads the name list / dict, and they
        # duplicate the table's name column — rebuild them on first use
        # instead of eagerly, so a linkage-backed source unpickled into a
        # process-pool worker (or attached over shared memory) never pays a
        # per-worker allocation proportional to the corpus.
        self._names = None
        self._by_name = None
        self._columns = {
            name: self.table.column_array(name) for name in self.attribute_names
        }

    def append_rows(self, delta: Table) -> None:
        """Append ``delta``'s rows in place, growing the source incrementally.

        The backing table is replaced by its chained-fingerprint append
        (:meth:`~repro.dataset.table.Table.append`) and every derived
        structure grows by the delta only: the exact-lookup dict gains the
        new names (later rows win on duplicates, preserving the historical
        last-occurrence rule) and the approximate-mode
        :class:`~repro.linkage.LinkageIndex` is extended via its delta path
        instead of being rebuilt over the whole corpus.
        """
        appended = self.table.append(delta)  # TableError on schema mismatch
        delta_names = [str(name) for name in delta.column(self.name_column)]
        if self._names is not None:
            offset = len(self._names)
            self._names.extend(delta_names)
            for i, name in enumerate(delta_names):
                self._by_name[name] = offset + i
        self.table = appended
        self._columns = {
            name: appended.column_array(name) for name in self.attribute_names
        }
        if self._index is not None:
            self._index.extend(delta_names)

    def _name_lookup(self) -> dict[str, int]:
        """The exact-mode name -> row dict, rebuilt lazily after unpickling."""
        if self._by_name is None:
            self._names = [str(name) for name in self.table.column(self.name_column)]
            self._by_name = {name: row for row, name in enumerate(self._names)}
        return self._by_name

    @property
    def linkage_index(self) -> LinkageIndex | None:
        """The approximate-mode linkage index (``None`` in exact-lookup mode)."""
        return self._index

    def _cell(self, attribute_name: str, row: int) -> object:
        return _py_cell(self._columns[attribute_name][row])

    def _record_at(
        self, row: int, name: str, confidence: float = 1.0
    ) -> AuxiliaryRecord:
        # The record's attributes are a lazy view over the column buffers:
        # cells are read on access, so building a harvest of N records
        # allocates N views and zero dicts.
        return AuxiliaryRecord(
            name=name,
            attributes=ColumnRowAttributes(self._cell, self.attribute_names, row),
            confidence=confidence,
            source="table",
        )

    def search(self, name: str) -> list[AuxiliaryRecord]:
        if self._index is None:
            row = self._name_lookup().get(str(name))
            if row is None:
                return []
            return [self._record_at(row, str(name))]
        return [
            self._record_at(
                match.candidate_index,
                match.candidate,
                confidence=min(match.score, 1.0),
            )
            for match in self._index.candidates(str(name))
        ]

    def lookup_many(self, names: Sequence[str]) -> list[AuxiliaryRecord | None]:
        """Best record per name; approximate mode resolves the batch at once."""
        if self._index is None:
            results: list[AuxiliaryRecord | None] = []
            by_name = self._name_lookup()
            for name in names:
                row = by_name.get(str(name))
                results.append(None if row is None else self._record_at(row, str(name)))
            return results
        matches = self._index.match_many([str(name) for name in names])
        return [
            None
            if match is None
            else self._record_at(
                match.candidate_index,
                match.candidate,
                confidence=min(match.score, 1.0),
            )
            for match in matches
        ]

    def harvest_records(self, names: Sequence[str]) -> HarvestRecords:
        """Bulk harvest with numeric fact columns gathered straight from storage."""
        queried = [str(name) for name in names]
        if self._index is None:
            by_name = self._name_lookup()
            rows = np.fromiter(
                (by_name.get(name, -1) for name in queried),
                dtype=np.intp,
                count=len(queried),
            )
            records = [
                None if row < 0 else self._record_at(int(row), name)
                for row, name in zip(rows, queried)
            ]
        else:
            matches = self._index.match_many(queried)
            rows = np.fromiter(
                (-1 if match is None else match.candidate_index for match in matches),
                dtype=np.intp,
                count=len(matches),
            )
            records = [
                None
                if match is None
                else self._record_at(
                    match.candidate_index,
                    match.candidate,
                    confidence=min(match.score, 1.0),
                )
                for match in matches
            ]
        numeric = {
            name: _gather_numeric_column(column, rows)
            for name, column in self._columns.items()
        }
        return HarvestRecords(records, numeric)


def auxiliary_table(records: Sequence[AuxiliaryRecord], attribute_names: Sequence[str]) -> Table:
    """Materialize harvested auxiliary records as a :class:`Table` (paper Table IV).

    The table is assembled column-wise — one value list per attribute, handed
    to the columnar constructor — rather than through per-row dicts.  Missing
    attributes are stored as ``None``; the name column is an identifier so the
    resulting table can be joined with the release on names.
    """
    schema = Schema(
        [Attribute("name", AttributeRole.IDENTIFIER, AttributeKind.TEXT)]
        + [Attribute(name, AttributeRole.QUASI_IDENTIFIER) for name in attribute_names]
    )
    columns: dict[str, list[object]] = {
        "name": [record.name for record in records]
    }
    for name in attribute_names:
        columns[name] = [record.attributes.get(name) for record in records]
    return Table(schema, columns)
