"""Auxiliary-data source abstraction.

The auxiliary data ``Q`` of the paper is whatever the adversary can gather
about the individuals named in the release — web pages, blogs, property
records.  The :class:`AuxiliarySource` interface abstracts over such channels
so that the attack pipeline can be exercised against the simulated web corpus
(:mod:`repro.fusion.web`), a CSV of scraped attributes, or any custom source.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.dataset.schema import Attribute, AttributeKind, AttributeRole, Schema
from repro.dataset.table import Table
from repro.exceptions import AuxiliarySourceError

__all__ = ["AuxiliaryRecord", "AuxiliarySource", "TableAuxiliarySource", "auxiliary_table"]


@dataclass(frozen=True)
class AuxiliaryRecord:
    """One person's auxiliary attributes as harvested from a source.

    Attributes
    ----------
    name:
        The name under which the record was found (the web page owner).
    attributes:
        Harvested attribute values keyed by attribute name (e.g.
        ``{"employment_seniority": 8, "property_holdings": 3560}``).
    confidence:
        The source's own confidence that the record belongs to the queried
        person (linkage score, search ranking, ...), in ``[0, 1]``.
    source:
        Free-text provenance (page URL, index name, ...).
    """

    name: str
    attributes: Mapping[str, float | str]
    confidence: float = 1.0
    source: str = ""

    def __post_init__(self) -> None:
        if not 0.0 <= self.confidence <= 1.0:
            raise AuxiliarySourceError(
                f"confidence must lie in [0, 1], got {self.confidence}"
            )

    def numeric_attribute(self, name: str) -> float | None:
        """A numeric attribute value, or ``None`` if absent / non-numeric."""
        value = self.attributes.get(name)
        if value is None or isinstance(value, str):
            return None
        return float(value)


class AuxiliarySource(abc.ABC):
    """A channel from which the adversary can harvest auxiliary records."""

    #: Names of the numeric attributes this source can provide.
    attribute_names: tuple[str, ...] = ()

    @abc.abstractmethod
    def search(self, name: str) -> list[AuxiliaryRecord]:
        """Records plausibly describing the person called ``name`` (best first)."""

    def lookup(self, name: str) -> AuxiliaryRecord | None:
        """The best record for ``name``, or ``None`` when nothing is found."""
        records = self.search(name)
        return records[0] if records else None


@dataclass
class TableAuxiliarySource(AuxiliarySource):
    """An auxiliary source backed by an in-memory table keyed by a name column.

    Useful for loading previously harvested auxiliary data from CSV (via
    :func:`repro.dataset.io.read_csv`) and replaying an attack offline.
    """

    table: Table
    name_column: str
    attribute_names: tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.name_column not in self.table.schema:
            raise AuxiliarySourceError(
                f"name column {self.name_column!r} not present in the auxiliary table"
            )
        if not self.attribute_names:
            self.attribute_names = tuple(
                attribute.name
                for attribute in self.table.schema.attributes
                if attribute.name != self.name_column and attribute.is_numeric
            )
        self._by_name = {
            str(row[self.name_column]): row for row in self.table.rows()
        }

    def search(self, name: str) -> list[AuxiliaryRecord]:
        row = self._by_name.get(str(name))
        if row is None:
            return []
        attributes = {
            attribute_name: row[attribute_name]
            for attribute_name in self.attribute_names
            if row.get(attribute_name) is not None
        }
        return [AuxiliaryRecord(name=str(name), attributes=attributes, source="table")]


def auxiliary_table(records: Sequence[AuxiliaryRecord], attribute_names: Sequence[str]) -> Table:
    """Materialize harvested auxiliary records as a :class:`Table` (paper Table IV).

    Missing attributes are stored as ``None``; the name column is an identifier
    so the resulting table can be joined with the release on names.
    """
    schema = Schema(
        [Attribute("name", AttributeRole.IDENTIFIER, AttributeKind.TEXT)]
        + [Attribute(name, AttributeRole.QUASI_IDENTIFIER) for name in attribute_names]
    )
    rows = []
    for record in records:
        row: dict[str, object] = {"name": record.name}
        for name in attribute_names:
            row[name] = record.attributes.get(name)
        rows.append(row)
    return Table.from_rows(schema, rows)
