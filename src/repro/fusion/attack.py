"""The Web-Based Information-Fusion Attack (Figure 1 of the paper).

The attack pipeline takes an anonymized enterprise release ``P'`` (identifiers
kept, quasi-identifiers generalized, sensitive column dropped) and an auxiliary
source (the simulated web), and produces an estimate ``P̂`` of the sensitive
attribute for every release record:

1. **Harvest** — use the identifiers in the release to query the auxiliary
   source; keep the best-linked record per person (Table IV of the paper).
2. **Assemble** — merge the numeric representatives of the release
   quasi-identifiers (interval midpoints) with the harvested auxiliary
   attributes into one crisp input record per person.
3. **Calibrate** — build linguistic variables for every fusion input from the
   observed marginals (or explicit ranges), and for the output from the
   adversary's assumed sensitive range (Section I's ``[$40,000 - $100,000]``).
4. **Fuse** — evaluate a fuzzy inference system (Mamdani by default, Sugeno as
   an ablation) or a non-fuzzy estimator over the merged inputs.

The result bundles ``P̂`` with the harvested auxiliary table, the per-record
inputs and the fusion system itself so downstream metrics (dissimilarity,
information gain) and the FRED optimizer can consume it.

Batch data layout
-----------------
The fusion step is fully vectorized.  :meth:`WebFusionAttack.assemble_columns`
builds one ``(N,)`` float array per fusion input — release quasi-identifiers
come straight from :meth:`repro.dataset.table.Table.numeric_columns` (interval
midpoints; NaN for suppressed cells) and auxiliary inputs from the harvested
records (NaN when a person has no web match or the attribute is absent).
NaN-masked columns replace the historical per-record ``None`` handling: the
fuzzy engines fuzzify a NaN cell to full membership in every term, exactly as
the scalar path treats ``None``.  The column block feeds
``evaluate_batch``, which forms the ``(N, n_rules)`` firing-strength matrix
and aggregates/defuzzifies all records at once; per-record dicts are only
materialized for :attr:`AttackResult.records` (API compatibility and
explanations).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.dataset.table import Table
from repro.exceptions import AttackConfigurationError
from repro.fusion.auxiliary import (
    AuxiliaryRecord,
    AuxiliarySource,
    HarvestRecords,
    auxiliary_table,
)
from repro.fusion.estimators import SensitiveEstimator
from repro.fusion.rulegen import monotone_rules
from repro.fuzzy.batch import as_columns, columns_to_records
from repro.fuzzy.inference import MamdaniSystem
from repro.fuzzy.rules import FuzzyRule, parse_rules
from repro.fuzzy.tsk import SugenoSystem
from repro.fuzzy.variables import LinguisticVariable

__all__ = [
    "AttackConfig",
    "AttackResult",
    "WebFusionAttack",
    "build_income_fusion_system",
    "harvest_auxiliary",
]

_DEFAULT_TERMS = ("low", "medium", "high")


@dataclass
class AttackConfig:
    """Configuration of a web-based information-fusion attack.

    Parameters
    ----------
    release_inputs:
        Names of release quasi-identifier columns used as fusion inputs.
    auxiliary_inputs:
        Names of auxiliary attributes harvested from the web source.
    output_name:
        Name of the sensitive attribute being estimated (``income``/``salary``).
    output_universe:
        The adversary's assumed range of the sensitive attribute.
    output_ranges:
        Optional explicit linguistic ranges for the output (paper Section I:
        ``{"low": (40e3, 60e3), "medium": (60e3, 80e3), "high": (80e3, 100e3)}``).
        When omitted, terms are spread uniformly over ``output_universe``.
    input_ranges:
        Optional fixed universes for individual inputs, e.g. ``{"valuation":
        (1, 10)}``.  An input with a fixed range gets evenly spaced terms over
        that range — this models the adversary's *domain knowledge* of the
        attribute scale (the paper's Figure 2 uses fixed ranges such as
        ``Level 1 – [1-3]``).  Inputs without a fixed range are calibrated from
        the observed marginal distribution instead.
    input_terms / output_terms:
        Linguistic term names for inputs and output.
    rules:
        Explicit rule objects.  When neither ``rules`` nor ``rule_texts`` is
        given, ordinal "monotone" rules are generated automatically from
        ``directions``.
    rule_texts:
        Rules in the textual ``IF ... THEN ...`` language.
    directions:
        Per-input monotonicity (+1 / -1) used by the automatic rule generator
        and the rank-scaling baseline.
    engine:
        ``"mamdani"`` (paper), ``"sugeno"``, or ``"custom"`` (use ``estimator``).
    estimator:
        A pre-built :class:`~repro.fusion.estimators.SensitiveEstimator` used
        when ``engine == "custom"``.
    defuzzification:
        Defuzzification strategy for the Mamdani engine.
    input_term_count:
        Number of quantile-calibrated terms per input variable.
    """

    release_inputs: tuple[str, ...]
    auxiliary_inputs: tuple[str, ...]
    output_name: str
    output_universe: tuple[float, float]
    output_ranges: Mapping[str, tuple[float, float]] | None = None
    input_ranges: Mapping[str, tuple[float, float]] | None = None
    input_terms: tuple[str, ...] = _DEFAULT_TERMS
    output_terms: tuple[str, ...] = _DEFAULT_TERMS
    rules: Sequence[FuzzyRule] | None = None
    rule_texts: Sequence[str] | None = None
    directions: Mapping[str, int] = field(default_factory=dict)
    engine: str = "mamdani"
    estimator: SensitiveEstimator | None = None
    defuzzification: str = "centroid"
    input_term_count: int = 3

    def __post_init__(self) -> None:
        if not self.release_inputs and not self.auxiliary_inputs:
            raise AttackConfigurationError(
                "the attack needs at least one release or auxiliary input"
            )
        if self.output_universe[0] >= self.output_universe[1]:
            raise AttackConfigurationError("output_universe must satisfy low < high")
        if self.engine not in ("mamdani", "sugeno", "custom"):
            raise AttackConfigurationError(f"unknown fusion engine: {self.engine!r}")
        if self.engine == "custom" and self.estimator is None:
            raise AttackConfigurationError("engine='custom' requires an estimator")
        if self.rules is not None and self.rule_texts is not None:
            raise AttackConfigurationError("pass either rules or rule_texts, not both")
        if self.input_term_count < 2:
            raise AttackConfigurationError("input_term_count must be at least 2")

    @property
    def all_inputs(self) -> tuple[str, ...]:
        """Release inputs followed by auxiliary inputs."""
        return tuple(self.release_inputs) + tuple(self.auxiliary_inputs)


@dataclass
class AttackResult:
    """Outcome of one fusion attack on one release."""

    estimates: np.ndarray
    records: list[dict[str, float | None]]
    matched: list[bool]
    auxiliary: Table
    system: object
    config: AttackConfig

    @property
    def match_rate(self) -> float:
        """Fraction of release records for which auxiliary data was found."""
        if not self.matched:
            return 0.0
        return sum(self.matched) / len(self.matched)


def harvest_auxiliary(
    source: AuxiliarySource,
    names: Sequence[str],
    attribute_names: Sequence[str],
) -> tuple[list[AuxiliaryRecord | None], Table]:
    """Resolve every name against the auxiliary source in one batched pass.

    This is step 1 of the attack (and its linkage-dominated hot path): the
    whole identifier column goes through
    :meth:`~repro.fusion.auxiliary.AuxiliarySource.harvest_records`, so a
    source backed by a :class:`~repro.linkage.LinkageIndex` amortizes
    blocking and batch scoring across the release, and columnar sources
    attach array-gathered numeric fact columns that the assemble step reads
    directly.  Returns the per-name best records
    (a :class:`~repro.fusion.auxiliary.HarvestRecords` list, ``None`` where
    nothing linked) plus the harvested auxiliary table (paper Table IV).
    The harvest depends only on the identifier column and the source — not on
    the anonymization level — so callers sweeping levels (FRED, the service)
    compute it once and pass it to :meth:`WebFusionAttack.run`.
    """
    queried = [str(name) for name in names]
    harvested = source.harvest_records(queried)
    found = [
        AuxiliaryRecord(
            name=name,
            attributes=record.attributes,
            confidence=record.confidence,
            source=record.source,
        )
        for name, record in zip(queried, harvested)
        if record is not None
    ]
    table = auxiliary_table(found, list(attribute_names))
    return harvested, table


def build_income_fusion_system(
    input_variables: Mapping[str, LinguisticVariable],
    output_variable: LinguisticVariable,
    rules: Sequence[FuzzyRule],
    engine: str = "mamdani",
    defuzzification: str = "centroid",
) -> MamdaniSystem | SugenoSystem:
    """Assemble the Figure-2 style fusion system from calibrated variables and rules."""
    if engine == "mamdani":
        return MamdaniSystem(
            inputs=dict(input_variables),
            output=output_variable,
            rules=list(rules),
            defuzzification=defuzzification,
        )
    if engine == "sugeno":
        return SugenoSystem(
            inputs=dict(input_variables), output=output_variable, rules=list(rules)
        )
    raise AttackConfigurationError(f"unknown fusion engine: {engine!r}")


class WebFusionAttack:
    """End-to-end web-based information-fusion attack.

    Parameters
    ----------
    source:
        The auxiliary channel (simulated web corpus, table of harvested data, ...).
    config:
        Attack configuration.
    """

    def __init__(self, source: AuxiliarySource, config: AttackConfig) -> None:
        self.source = source
        self.config = config

    # Pipeline steps -------------------------------------------------------------

    def harvest(self, names: Sequence[str]) -> tuple[list[AuxiliaryRecord | None], Table]:
        """Query the auxiliary source for every name; best record or ``None`` each.

        Delegates to :func:`harvest_auxiliary`, which resolves the whole name
        batch through the source's batched lookup path.
        """
        return harvest_auxiliary(self.source, names, self.config.auxiliary_inputs)

    def assemble_columns(
        self, release: Table, harvested: Sequence[AuxiliaryRecord | None]
    ) -> dict[str, np.ndarray]:
        """Merge release and harvested inputs column-wise into ``(N,)`` arrays.

        Release inputs resolve generalized cells to numeric representatives
        (NaN when suppressed); auxiliary inputs are NaN wherever the harvest
        found nothing.  This is the batch layout the fusion engines consume.
        A :class:`~repro.fusion.auxiliary.HarvestRecords` batch hands its
        auxiliary columns over as cached arrays (gathered once per harvest,
        shared across every level of a sweep); a plain record sequence falls
        back to the per-record extraction.
        """
        missing = [
            name for name in self.config.release_inputs if name not in release.schema
        ]
        if missing:
            raise AttackConfigurationError(
                f"release is missing configured input columns: {missing}"
            )
        columns = release.numeric_columns(self.config.release_inputs)
        if isinstance(harvested, HarvestRecords):
            for name in self.config.auxiliary_inputs:
                columns[name] = harvested.numeric_column(name).copy()
            return columns
        for name in self.config.auxiliary_inputs:
            column = np.full(len(harvested), np.nan)
            for i, auxiliary in enumerate(harvested):
                if auxiliary is None:
                    continue
                value = auxiliary.numeric_attribute(name)
                if value is not None:
                    column[i] = value
            columns[name] = column
        return columns

    def assemble_records(
        self, release: Table, harvested: Sequence[AuxiliaryRecord | None]
    ) -> list[dict[str, float | None]]:
        """Merge release quasi-identifiers and harvested attributes per record.

        Per-record view of :meth:`assemble_columns`, kept for explanations and
        API compatibility (``NaN`` cells surface as ``None``).
        """
        return columns_to_records(self.assemble_columns(release, harvested))

    def calibrate_variables(
        self,
        records: Mapping[str, np.ndarray] | Sequence[Mapping[str, float | None]],
    ) -> tuple[dict[str, LinguisticVariable], LinguisticVariable]:
        """Build input variables from observed marginals and the output variable.

        ``records`` is a column block (or per-record mappings, normalized to
        one); inputs without a fixed range are quantile-calibrated from the
        non-NaN entries of their column.
        """
        _, columns = as_columns(records, self.config.all_inputs)
        term_names = tuple(self.config.input_terms)[: max(self.config.input_term_count, 2)]
        if len(term_names) < self.config.input_term_count:
            term_names = tuple(
                f"level{i + 1}" for i in range(self.config.input_term_count)
            )
        fixed_ranges = dict(self.config.input_ranges or {})
        inputs: dict[str, LinguisticVariable] = {}
        for name in self.config.all_inputs:
            if name in fixed_ranges:
                inputs[name] = LinguisticVariable.with_uniform_terms(
                    name, fixed_ranges[name], term_names
                )
                continue
            column = columns[name]
            values = column[~np.isnan(column)]
            if values.size >= 2:
                inputs[name] = LinguisticVariable.from_values(name, values, term_names)
            else:
                inputs[name] = LinguisticVariable.with_uniform_terms(
                    name, (0.0, 1.0), term_names
                )
        if self.config.output_ranges is not None:
            output = LinguisticVariable.from_ranges(
                self.config.output_name, self.config.output_ranges
            )
        else:
            output = LinguisticVariable.with_uniform_terms(
                self.config.output_name,
                self.config.output_universe,
                tuple(self.config.output_terms),
            )
        return inputs, output

    def build_rules(
        self,
        inputs: Mapping[str, LinguisticVariable],
        output: LinguisticVariable,
    ) -> list[FuzzyRule]:
        """Resolve the rule base: explicit rules, textual rules, or monotone rules."""
        if self.config.rules is not None:
            return list(self.config.rules)
        if self.config.rule_texts is not None:
            return parse_rules(self.config.rule_texts, output_variable=output.name)
        return monotone_rules(inputs, output, directions=self.config.directions)

    # End-to-end ---------------------------------------------------------------------

    def run(
        self,
        release: Table,
        harvest: tuple[list[AuxiliaryRecord | None], Table] | None = None,
    ) -> AttackResult:
        """Execute the attack on a release and return the adversary's estimates.

        The fusion inputs are assembled and evaluated column-wise (see the
        module docstring's *Batch data layout*); the per-record dict view is
        derived from the same columns for :attr:`AttackResult.records`.

        ``harvest`` injects a precomputed harvest (the ``(records, table)``
        pair returned by :meth:`harvest` / :func:`harvest_auxiliary` for this
        release's identifier column).  The harvest is level-independent, so
        FRED sweeps and the service compute it once and reuse it across every
        release of the same dataset.
        """
        names = [str(n) for n in release.identifier_column()]
        if harvest is None:
            harvest = self.harvest(names)
        harvested, harvested_table = harvest
        if len(harvested) != len(names):
            raise AttackConfigurationError(
                f"precomputed harvest covers {len(harvested)} names but the "
                f"release has {len(names)} records"
            )
        # The harvested table's identifier column holds the queried names in
        # match order; it must agree with this release's matched rows, or the
        # harvest was built for a different (e.g. row-reordered) release.
        matched_names = [n for n, record in zip(names, harvested) if record is not None]
        if matched_names != [str(n) for n in harvested_table.identifier_column()]:
            raise AttackConfigurationError(
                "precomputed harvest does not align with the release's "
                "identifier column (was it harvested for a different row order?)"
            )
        columns = self.assemble_columns(release, harvested)
        records = columns_to_records(columns)

        if self.config.engine == "custom":
            system: object = self.config.estimator
            # Custom estimators keep the historical per-record contract (the
            # built-in engines and estimators accept the column block too,
            # but user-supplied ones may not).
            estimates = self.config.estimator.evaluate_batch(records)
        else:
            inputs, output = self.calibrate_variables(columns)
            rules = self.build_rules(inputs, output)
            system = build_income_fusion_system(
                inputs,
                output,
                rules,
                engine=self.config.engine,
                defuzzification=self.config.defuzzification,
            )
            estimates = system.evaluate_batch(columns)

        return AttackResult(
            estimates=np.asarray(estimates, dtype=float),
            records=records,
            matched=[record is not None for record in harvested],
            auxiliary=harvested_table,
            system=system,
            config=self.config,
        )
