"""Simulated web corpus — the substitute for the adversary's live-web channel.

The paper's adversary harvests auxiliary data (employment, property holdings)
from employee home pages, blogs and the links reachable from them.  A live web
crawl is neither reproducible nor available offline, so this module simulates
the channel end to end while preserving every property the attack relies on:

* pages are **indexed by person name**, and the displayed name may be a
  variant of the enterprise-database name (initials, reordered, titled), so the
  adversary must run approximate record linkage;
* pages expose **noisy numeric facts** correlated with the sensitive attribute
  (the generator in :mod:`repro.data.webgen` controls that correlation);
* a configurable fraction of people have **no web presence** at all, and the
  corpus may also contain **distractor pages** about unrelated people.

The corpus implements :class:`~repro.fusion.auxiliary.AuxiliarySource`, so the
attack pipeline is agnostic to whether it talks to this simulation or to a
table of genuinely harvested data.

Columnar construction
---------------------
:meth:`SimulatedWebCorpus.from_profiles` is fully vectorized: **one** RNG pass
draws every coverage, name-variant and noise value up front as arrays
(``coverage``, ``variant``, ``variant choice``, an ``(n, attrs)`` noise block,
and the distractor fact block — in that fixed order), and page facts are
stored as NaN-masked column arrays rather than per-page dicts.
:class:`WebPage` objects are **lazy views**: the ``pages`` list is only
materialized when someone actually asks for it (examples, rendering), so
building and harvesting a million-page corpus never constructs a million fact
dicts.  Because all draws happen up front, each person's page content depends
only on the seed, the profile order and the attribute count — not on which
other people happen to be covered.

.. note::
   The historical implementation drew random values per profile inside a
   Python loop; the vectorized pass consumes the RNG stream in a different
   order, so corpora built by this version differ (for the same seed) from
   pre-vectorization corpora.  Golden tests were re-baselined accordingly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.exceptions import AuxiliarySourceError
from repro.fusion.auxiliary import (
    AuxiliaryRecord,
    AuxiliarySource,
    ColumnRowAttributes,
    HarvestRecords,
)
from repro.fusion.linkage import NameMatcher

__all__ = ["WebPage", "SimulatedWebCorpus", "name_variant"]

_EXTRA_FACT_KEYS = ("employer", "position")

#: Sentinel distinguishing "key absent" from an explicit ``None`` value.
_MISSING = object()


@dataclass(frozen=True)
class WebPage:
    """One synthetic person page in the simulated web."""

    owner: str
    displayed_name: str
    url: str
    facts: Mapping[str, float | str]

    def render(self) -> str:
        """A small pseudo-HTML rendering (used by examples to show what the adversary sees)."""
        lines = [f"<title>{self.displayed_name}</title>"]
        for key, value in self.facts.items():
            lines.append(f"<p>{key.replace('_', ' ')}: {value}</p>")
        return "\n".join(lines)


def _apply_variant(name: str, choice: int) -> str:
    """The deterministic variant of ``name`` selected by ``choice`` (0..4)."""
    tokens = name.split()
    if len(tokens) < 2:
        return name
    first, last = tokens[0], tokens[-1]
    if choice == 0:
        return f"{first} {last}"
    if choice == 1:
        return f"{first[0]}. {last}"
    if choice == 2:
        return f"{last}, {first}"
    if choice == 3:
        return f"Dr. {first} {last}"
    return f"{first} {tokens[1][0]}. {last}" if len(tokens) > 2 else f"{first} {last}"


def name_variant(name: str, rng: np.random.Generator) -> str:
    """A plausible web rendering of ``name`` (initials, reordering, titles)."""
    name = str(name)
    if len(name.split()) < 2:
        return name
    return _apply_variant(name, int(rng.integers(0, 5)))


class SimulatedWebCorpus(AuxiliarySource):
    """A searchable corpus of synthetic person pages.

    Page content lives in column arrays — owner/displayed-name lists, one
    NaN-masked float array per numeric fact, object arrays only for the rare
    non-numeric facts — and :attr:`pages` is a lazily materialized view.  The
    linkage index over displayed names is also built lazily, on the first
    search: corpus *construction* is pure data-plane work.

    Parameters
    ----------
    pages:
        The person pages making up the corpus (the compatibility
        constructor; :meth:`from_profiles` builds columnar corpora directly).
    attribute_names:
        Numeric fact names the corpus exposes (harvestable auxiliary attributes).
    linkage_threshold:
        Minimum composite name similarity for a page to be returned by
        :meth:`search`.
    blocking / qgram_size:
        Blocking knobs of the underlying :class:`~repro.linkage.LinkageIndex`
        (``"qgram"``, ``"first-letter"`` or ``"none"``).
    """

    def __init__(
        self,
        pages: Sequence[WebPage] | None = None,
        attribute_names: Sequence[str] = (),
        linkage_threshold: float = 0.82,
        blocking: str = "qgram",
        qgram_size: int = 2,
    ) -> None:
        self.attribute_names = tuple(attribute_names)
        self.linkage_threshold = linkage_threshold
        self.blocking = blocking
        self.qgram_size = qgram_size
        self._matcher_cache: NameMatcher | None = None
        self._pages_cache: list[WebPage] | None = None
        if pages is None:
            raise AuxiliarySourceError("a web corpus needs at least one page")
        pages = list(pages)
        if not pages:
            raise AuxiliarySourceError("a web corpus needs at least one page")
        # Decompose the given pages into the canonical columnar layout.
        self._owners = [page.owner for page in pages]
        self._displayed = [page.displayed_name for page in pages]
        self._urls: list[str] | None = [page.url for page in pages]
        self._url_numbers: np.ndarray | None = None
        self._url_distractor_offset = 0
        n = len(pages)
        extra_keys = list(_EXTRA_FACT_KEYS)
        for page in pages:
            for key in page.facts:
                if key not in self.attribute_names and key not in extra_keys:
                    extra_keys.append(key)
        self._fact_numeric: dict[str, np.ndarray] = {}
        self._fact_objects: dict[str, np.ndarray] = {}
        for name in self.attribute_names:
            numeric = np.full(n, np.nan)
            objects = None
            for i, page in enumerate(pages):
                value = page.facts.get(name)
                if value is None:
                    continue
                if not isinstance(value, str):
                    # The float view feeds the numeric harvest block (bools
                    # and ints count as numbers there, exactly like
                    # AuxiliaryRecord.numeric_attribute).
                    numeric[i] = float(value)
                if type(value) is not float:
                    # Preserve the original object (str, int, bool, ...) so
                    # record attributes and page views round-trip the given
                    # facts verbatim.
                    if objects is None:
                        objects = np.full(n, None, dtype=object)
                    objects[i] = value
            self._fact_numeric[name] = numeric
            if objects is not None:
                self._fact_objects[name] = objects
        self._extras: dict[str, np.ndarray] = {}
        for key in extra_keys:
            values = np.full(n, None, dtype=object)
            present = False
            for i, page in enumerate(pages):
                if key in page.facts:
                    values[i] = page.facts[key]
                    present = True
            if present:
                self._extras[key] = values
        self._pages_cache = pages

    @classmethod
    def _from_columns(
        cls,
        owners: list[str],
        displayed: list[str],
        urls: list[str] | None,
        fact_numeric: dict[str, np.ndarray],
        fact_objects: dict[str, np.ndarray],
        extras: dict[str, np.ndarray],
        attribute_names: tuple[str, ...],
        linkage_threshold: float,
        blocking: str,
        qgram_size: int,
        url_numbers: np.ndarray | None = None,
        url_distractor_offset: int = 0,
    ) -> "SimulatedWebCorpus":
        corpus = cls.__new__(cls)
        corpus.attribute_names = attribute_names
        corpus.linkage_threshold = linkage_threshold
        corpus.blocking = blocking
        corpus.qgram_size = qgram_size
        corpus._matcher_cache = None
        corpus._pages_cache = None
        corpus._owners = owners
        corpus._displayed = displayed
        corpus._urls = urls
        corpus._url_numbers = url_numbers
        corpus._url_distractor_offset = url_distractor_offset
        corpus._fact_numeric = fact_numeric
        corpus._fact_objects = fact_objects
        corpus._extras = extras
        return corpus

    # Lazy views -------------------------------------------------------------------

    def _url(self, index: int) -> str:
        """The page URL, synthesized on demand for generated corpora."""
        if self._urls is not None:
            return self._urls[index]
        number = int(self._url_numbers[index])
        if index >= self._url_distractor_offset:
            return f"https://blogs.example.com/post{number}"
        return f"https://people.example.edu/~person{number}"

    @property
    def _matcher(self) -> NameMatcher:
        """The linkage index over displayed names, built on first use."""
        if self._matcher_cache is None:
            self._matcher_cache = NameMatcher(
                self._displayed,
                threshold=self.linkage_threshold,
                use_blocking=self.blocking != "none",
                blocking=self.blocking if self.blocking != "none" else "qgram",
                qgram_size=self.qgram_size,
            )
        return self._matcher_cache

    @property
    def linkage_index(self):
        """The corpus's linkage index (built if still lazy).

        Overrides :attr:`AuxiliarySource.linkage_index` so process-pool FRED
        sweeps can publish the index to shared memory.
        """
        return self._matcher.index

    def _fact_cell(self, name: str, index: int) -> object:
        """One page's value for fact ``name`` (``None`` = absent)."""
        objects = self._fact_objects.get(name)
        if objects is not None and objects[index] is not None:
            return objects[index]
        numeric = self._fact_numeric.get(name)
        if numeric is not None:
            value = numeric[index]
            if not np.isnan(value):
                return float(value)
        values = self._extras.get(name)
        return None if values is None else values[index]

    @property
    def _fact_names(self) -> tuple[str, ...]:
        return tuple(self.attribute_names) + tuple(
            key for key in self._extras if key not in self.attribute_names
        )

    def _facts_of(self, index: int) -> Mapping[str, float | str]:
        """One page's facts as a lazy view over the fact columns.

        Cells are read on access (:class:`ColumnRowAttributes`), so
        harvesting or listing a million-page corpus builds no fact dicts
        at all; pickling a record materializes its view to a plain dict.
        """
        return ColumnRowAttributes(self._fact_cell, self._fact_names, index)

    def _page(self, index: int) -> WebPage:
        return WebPage(
            owner=self._owners[index],
            displayed_name=self._displayed[index],
            url=self._url(index),
            facts=self._facts_of(index),
        )

    @property
    def pages(self) -> list[WebPage]:
        """The corpus pages as :class:`WebPage` views (materialized lazily)."""
        if self._pages_cache is None:
            self._pages_cache = [self._page(i) for i in range(len(self._owners))]
        return self._pages_cache

    # Construction ----------------------------------------------------------------

    @classmethod
    def from_profiles(
        cls,
        profiles: Sequence[Mapping[str, object]],
        attribute_names: Sequence[str],
        noise_level: float = 0.05,
        coverage: float = 1.0,
        name_variant_probability: float = 0.5,
        distractor_count: int = 0,
        linkage_threshold: float = 0.82,
        blocking: str = "qgram",
        qgram_size: int = 2,
        seed: int = 0,
    ) -> "SimulatedWebCorpus":
        """Generate a corpus from ground-truth person profiles.

        Parameters
        ----------
        profiles:
            Mappings with a ``"name"`` key plus the true auxiliary attribute
            values for each person.
        attribute_names:
            Which attributes become harvestable page facts.
        noise_level:
            Relative (multiplicative) Gaussian noise applied to numeric facts,
            modelling imprecise or stale web information.
        coverage:
            Probability that a person has a page at all.
        name_variant_probability:
            Probability that the page displays a variant of the person's name
            instead of the exact enterprise-database spelling.
        distractor_count:
            Number of unrelated pages (random names, random facts) added to the
            corpus to stress the linkage step.
        blocking / qgram_size:
            Blocking knobs of the corpus's linkage index.
        seed:
            RNG seed; the corpus is fully deterministic given the seed (every
            draw is made up front in one vectorized pass — see the module
            docstring).
        """
        if not 0.0 <= coverage <= 1.0:
            raise AuxiliarySourceError("coverage must lie in [0, 1]")
        if noise_level < 0.0:
            raise AuxiliarySourceError("noise_level must be non-negative")
        attribute_names = tuple(attribute_names)
        try:
            raw_names = [profile["name"] for profile in profiles]
        except KeyError as exc:
            raise AuxiliarySourceError("every profile needs a 'name' entry") from exc

        n = len(profiles)
        rng = np.random.default_rng(seed)
        coverage_draws = rng.random(n)
        variant_draws = rng.random(n)
        variant_choices = rng.integers(0, 5, size=n)
        noise_factors = 1.0 + rng.normal(0.0, noise_level, size=(n, len(attribute_names)))
        distractor_facts = rng.uniform(
            0.0, 1.0, size=(distractor_count, len(attribute_names))
        )

        covered = np.nonzero(coverage_draws <= coverage)[0]
        covered_list = covered.tolist()
        covered_profiles = [profiles[i] for i in covered_list]

        owners: list[str] = []
        displayed: list[str] = []
        for i, variant, choice in zip(
            covered_list,
            (variant_draws[covered] < name_variant_probability).tolist(),
            variant_choices[covered].tolist(),
        ):
            name = str(raw_names[i])
            owners.append(name)
            displayed.append(_apply_variant(name, choice) if variant else name)

        fact_numeric: dict[str, np.ndarray] = {}
        fact_objects: dict[str, np.ndarray] = {}
        for column, attribute in enumerate(attribute_names):
            raw = [profile.get(attribute) for profile in covered_profiles]
            numeric, objects = _fact_column(raw, noise_factors[covered, column])
            fact_numeric[attribute] = numeric
            if objects is not None:
                fact_objects[attribute] = objects

        extras: dict[str, np.ndarray] = {}
        for key in _EXTRA_FACT_KEYS:
            if key in attribute_names:
                continue
            raw = [profile.get(key, _MISSING) for profile in covered_profiles]
            values = [
                None
                if value is _MISSING
                else (value if type(value) is str else str(value))
                for value in raw
            ]
            if values.count(None) != len(values):
                column = np.empty(len(values), dtype=object)
                column[:] = values
                extras[key] = column

        # Distractor pages: deterministic fake names, uniform random facts.
        page_count = len(owners)
        if distractor_count:
            for d in range(distractor_count):
                fake_name = (
                    f"{_DISTRACTOR_FIRST[d % len(_DISTRACTOR_FIRST)]} "
                    f"{_DISTRACTOR_LAST[(d * 7) % len(_DISTRACTOR_LAST)]}"
                )
                owners.append(fake_name)
                displayed.append(fake_name)
            for column, attribute in enumerate(attribute_names):
                fact_numeric[attribute] = np.concatenate(
                    [fact_numeric[attribute], distractor_facts[:, column]]
                )
                if attribute in fact_objects:
                    fact_objects[attribute] = np.concatenate(
                        [
                            fact_objects[attribute],
                            np.full(distractor_count, None, dtype=object),
                        ]
                    )
            for key in list(extras):
                extras[key] = np.concatenate(
                    [extras[key], np.full(distractor_count, None, dtype=object)]
                )
            page_count += distractor_count

        if not page_count:
            raise AuxiliarySourceError(
                "corpus generation produced no pages; increase coverage or profile count"
            )
        return cls._from_columns(
            owners=owners,
            displayed=displayed,
            urls=None,
            url_numbers=np.concatenate(
                [covered, np.arange(distractor_count, dtype=np.intp)]
            ),
            url_distractor_offset=len(covered_list),
            fact_numeric=fact_numeric,
            fact_objects=fact_objects,
            extras=extras,
            attribute_names=attribute_names,
            linkage_threshold=linkage_threshold,
            blocking=blocking,
            qgram_size=qgram_size,
        )

    # AuxiliarySource interface ------------------------------------------------------

    def _record_for_page(self, page_index: int, score: float) -> AuxiliaryRecord:
        return AuxiliaryRecord(
            name=self._displayed[page_index],
            attributes=self._facts_of(page_index),
            confidence=min(score, 1.0),
            source=self._url(page_index),
        )

    def search(self, name: str) -> list[AuxiliaryRecord]:
        """Pages plausibly belonging to ``name``, best linkage score first."""
        return [
            self._record_for_page(match.candidate_index, match.score)
            for match in self._matcher.candidates(name)
        ]

    def lookup_many(self, names: Sequence[str]) -> list[AuxiliaryRecord | None]:
        """Best page per name, resolved through one batched linkage pass."""
        return [
            None
            if match is None
            else self._record_for_page(match.candidate_index, match.score)
            for match in self._matcher.match_many(names)
        ]

    def harvest_records(self, names: Sequence[str]) -> HarvestRecords:
        """Bulk harvest with numeric fact columns gathered straight from storage."""
        queried = [str(name) for name in names]
        matches = self._matcher.match_many(queried)
        rows = np.fromiter(
            (-1 if match is None else match.candidate_index for match in matches),
            dtype=np.intp,
            count=len(matches),
        )
        records = [
            None
            if match is None
            else self._record_for_page(match.candidate_index, match.score)
            for match in matches
        ]
        hit = rows >= 0
        gather = np.where(hit, rows, 0)
        numeric = {}
        for name in self.attribute_names:
            column = self._fact_numeric[name][gather]
            column[~hit] = np.nan
            numeric[name] = column
        return HarvestRecords(records, numeric)

    # Introspection helpers ------------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of pages in the corpus."""
        return len(self._owners)

    def coverage_of(self, names: Sequence[str]) -> float:
        """Fraction of ``names`` for which at least one page links above threshold."""
        if not names:
            return 0.0
        hits = sum(1 for record in self.lookup_many(list(names)) if record is not None)
        return hits / len(names)


def _fact_column(
    raw: list[object], noise_factor: np.ndarray
) -> tuple[np.ndarray, np.ndarray | None]:
    """One attribute's raw profile values as (noisy numeric, object overrides).

    Numeric values (bools excluded) are noised multiplicatively; strings and
    other non-numeric values keep their ``str()`` form in a sparse object
    column; ``None`` / absent values are NaN in the numeric column.

    The common all-numeric case is detected by one ``np.asarray`` dtype probe
    (no per-value type dispatch); only columns with missing or non-numeric
    values pay the per-cell loop.
    """
    n = len(raw)
    try:
        probe = np.asarray(raw)
    except ValueError:  # ragged cells numpy cannot even box
        probe = np.empty(0, dtype=object)
    if (
        probe.shape == (n,)
        and probe.dtype.kind in "fiu"
        # np.asarray silently coerces a bool mixed into a numeric column
        # (an all-bool column probes as kind "b"); keep the bools-are-text
        # contract by sending such columns through the per-cell path.
        and not any(isinstance(value, (bool, np.bool_)) for value in raw)
    ):
        return probe.astype(np.float64, copy=False) * noise_factor, None
    numeric = np.full(n, np.nan)
    objects = np.full(n, None, dtype=object)
    any_object = False
    for i, value in enumerate(raw):
        if value is None:
            continue
        if isinstance(value, (bool, np.bool_)) or not isinstance(
            value, (int, float, np.integer, np.floating)
        ):
            objects[i] = str(value)
            any_object = True
        else:
            numeric[i] = float(value) * noise_factor[i]
    return numeric, objects if any_object else None


_DISTRACTOR_FIRST = (
    "Avery", "Blake", "Casey", "Devon", "Emery", "Finley", "Harper", "Jordan",
    "Kendall", "Logan", "Morgan", "Parker", "Quinn", "Reese", "Skyler", "Taylor",
)
_DISTRACTOR_LAST = (
    "Abbott", "Barton", "Chandler", "Dalton", "Ellison", "Forsythe", "Granger",
    "Holloway", "Irving", "Jennings", "Kessler", "Lockwood", "Mercer", "Norwood",
)
