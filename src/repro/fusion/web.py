"""Simulated web corpus — the substitute for the adversary's live-web channel.

The paper's adversary harvests auxiliary data (employment, property holdings)
from employee home pages, blogs and the links reachable from them.  A live web
crawl is neither reproducible nor available offline, so this module simulates
the channel end to end while preserving every property the attack relies on:

* pages are **indexed by person name**, and the displayed name may be a
  variant of the enterprise-database name (initials, reordered, titled), so the
  adversary must run approximate record linkage;
* pages expose **noisy numeric facts** correlated with the sensitive attribute
  (the generator in :mod:`repro.data.webgen` controls that correlation);
* a configurable fraction of people have **no web presence** at all, and the
  corpus may also contain **distractor pages** about unrelated people.

The corpus implements :class:`~repro.fusion.auxiliary.AuxiliarySource`, so the
attack pipeline is agnostic to whether it talks to this simulation or to a
table of genuinely harvested data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.exceptions import AuxiliarySourceError
from repro.fusion.auxiliary import AuxiliaryRecord, AuxiliarySource
from repro.fusion.linkage import NameMatcher

__all__ = ["WebPage", "SimulatedWebCorpus", "name_variant"]


@dataclass(frozen=True)
class WebPage:
    """One synthetic person page in the simulated web."""

    owner: str
    displayed_name: str
    url: str
    facts: Mapping[str, float | str]

    def render(self) -> str:
        """A small pseudo-HTML rendering (used by examples to show what the adversary sees)."""
        lines = [f"<title>{self.displayed_name}</title>"]
        for key, value in self.facts.items():
            lines.append(f"<p>{key.replace('_', ' ')}: {value}</p>")
        return "\n".join(lines)


def name_variant(name: str, rng: np.random.Generator) -> str:
    """A plausible web rendering of ``name`` (initials, reordering, titles)."""
    tokens = str(name).split()
    if len(tokens) < 2:
        return str(name)
    first, last = tokens[0], tokens[-1]
    choice = rng.integers(0, 5)
    if choice == 0:
        return f"{first} {last}"
    if choice == 1:
        return f"{first[0]}. {last}"
    if choice == 2:
        return f"{last}, {first}"
    if choice == 3:
        return f"Dr. {first} {last}"
    return f"{first} {tokens[1][0]}. {last}" if len(tokens) > 2 else f"{first} {last}"


@dataclass
class SimulatedWebCorpus(AuxiliarySource):
    """A searchable corpus of synthetic person pages.

    Parameters
    ----------
    pages:
        The person pages making up the corpus.
    attribute_names:
        Numeric fact names the corpus exposes (harvestable auxiliary attributes).
    linkage_threshold:
        Minimum composite name similarity for a page to be returned by
        :meth:`search`.
    blocking / qgram_size:
        Blocking knobs of the underlying :class:`~repro.linkage.LinkageIndex`
        (``"qgram"``, ``"first-letter"`` or ``"none"``).
    """

    pages: list[WebPage]
    attribute_names: tuple[str, ...]
    linkage_threshold: float = 0.82
    blocking: str = "qgram"
    qgram_size: int = 2
    _matcher: NameMatcher = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not self.pages:
            raise AuxiliarySourceError("a web corpus needs at least one page")
        self._matcher = NameMatcher(
            [page.displayed_name for page in self.pages],
            threshold=self.linkage_threshold,
            use_blocking=self.blocking != "none",
            blocking=self.blocking if self.blocking != "none" else "qgram",
            qgram_size=self.qgram_size,
        )

    # Construction ----------------------------------------------------------------

    @classmethod
    def from_profiles(
        cls,
        profiles: Sequence[Mapping[str, object]],
        attribute_names: Sequence[str],
        noise_level: float = 0.05,
        coverage: float = 1.0,
        name_variant_probability: float = 0.5,
        distractor_count: int = 0,
        linkage_threshold: float = 0.82,
        blocking: str = "qgram",
        qgram_size: int = 2,
        seed: int = 0,
    ) -> "SimulatedWebCorpus":
        """Generate a corpus from ground-truth person profiles.

        Parameters
        ----------
        profiles:
            Mappings with a ``"name"`` key plus the true auxiliary attribute
            values for each person.
        attribute_names:
            Which attributes become harvestable page facts.
        noise_level:
            Relative (multiplicative) Gaussian noise applied to numeric facts,
            modelling imprecise or stale web information.
        coverage:
            Probability that a person has a page at all.
        name_variant_probability:
            Probability that the page displays a variant of the person's name
            instead of the exact enterprise-database spelling.
        distractor_count:
            Number of unrelated pages (random names, random facts) added to the
            corpus to stress the linkage step.
        blocking / qgram_size:
            Blocking knobs of the corpus's linkage index.
        seed:
            RNG seed; the corpus is fully deterministic given the seed.
        """
        if not 0.0 <= coverage <= 1.0:
            raise AuxiliarySourceError("coverage must lie in [0, 1]")
        if noise_level < 0.0:
            raise AuxiliarySourceError("noise_level must be non-negative")
        rng = np.random.default_rng(seed)
        pages: list[WebPage] = []
        for index, profile in enumerate(profiles):
            if "name" not in profile:
                raise AuxiliarySourceError("every profile needs a 'name' entry")
            if rng.random() > coverage:
                continue
            name = str(profile["name"])
            displayed = (
                name_variant(name, rng)
                if rng.random() < name_variant_probability
                else name
            )
            facts: dict[str, float | str] = {}
            for attribute in attribute_names:
                value = profile.get(attribute)
                if value is None:
                    continue
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    noisy = float(value) * (1.0 + rng.normal(0.0, noise_level))
                    facts[attribute] = float(noisy)
                else:
                    facts[attribute] = str(value)
            for extra_key in ("employer", "position"):
                if extra_key in profile and extra_key not in facts:
                    facts[extra_key] = str(profile[extra_key])
            pages.append(
                WebPage(
                    owner=name,
                    displayed_name=displayed,
                    url=f"https://people.example.edu/~person{index}",
                    facts=facts,
                )
            )

        for d in range(distractor_count):
            fake_name = f"{_DISTRACTOR_FIRST[d % len(_DISTRACTOR_FIRST)]} {_DISTRACTOR_LAST[(d * 7) % len(_DISTRACTOR_LAST)]}"
            facts = {
                attribute: float(rng.uniform(0.0, 1.0)) for attribute in attribute_names
            }
            pages.append(
                WebPage(
                    owner=fake_name,
                    displayed_name=fake_name,
                    url=f"https://blogs.example.com/post{d}",
                    facts=facts,
                )
            )

        if not pages:
            raise AuxiliarySourceError(
                "corpus generation produced no pages; increase coverage or profile count"
            )
        return cls(
            pages=pages,
            attribute_names=tuple(attribute_names),
            linkage_threshold=linkage_threshold,
            blocking=blocking,
            qgram_size=qgram_size,
        )

    # AuxiliarySource interface ------------------------------------------------------

    def _record_for_page(self, page_index: int, score: float) -> AuxiliaryRecord:
        page = self.pages[page_index]
        return AuxiliaryRecord(
            name=page.displayed_name,
            attributes=dict(page.facts),
            confidence=min(score, 1.0),
            source=page.url,
        )

    def search(self, name: str) -> list[AuxiliaryRecord]:
        """Pages plausibly belonging to ``name``, best linkage score first."""
        return [
            self._record_for_page(match.candidate_index, match.score)
            for match in self._matcher.candidates(name)
        ]

    def lookup_many(self, names: Sequence[str]) -> list[AuxiliaryRecord | None]:
        """Best page per name, resolved through one batched linkage pass."""
        return [
            None
            if match is None
            else self._record_for_page(match.candidate_index, match.score)
            for match in self._matcher.match_many(names)
        ]

    # Introspection helpers ------------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of pages in the corpus."""
        return len(self.pages)

    def coverage_of(self, names: Sequence[str]) -> float:
        """Fraction of ``names`` for which at least one page links above threshold."""
        if not names:
            return 0.0
        hits = sum(1 for record in self.lookup_many(list(names)) if record is not None)
        return hits / len(names)


_DISTRACTOR_FIRST = (
    "Avery", "Blake", "Casey", "Devon", "Emery", "Finley", "Harper", "Jordan",
    "Kendall", "Logan", "Morgan", "Parker", "Quinn", "Reese", "Skyler", "Taylor",
)
_DISTRACTOR_LAST = (
    "Abbott", "Barton", "Chandler", "Dalton", "Ellison", "Forsythe", "Granger",
    "Holloway", "Irving", "Jennings", "Kessler", "Lockwood", "Mercer", "Norwood",
)
