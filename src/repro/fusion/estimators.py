"""Non-fuzzy estimators of the sensitive attribute.

The paper's fusion system is a fuzzy inference engine; to judge how much of
the breach comes from the *fusion idea* rather than from the particular
engine, the benchmarks compare it against simpler estimators operating on the
same merged inputs (release quasi-identifiers + harvested web attributes):

* :class:`MidpointEstimator` — always guesses the middle of the assumed
  sensitive range (the zero-information floor);
* :class:`RankScalingEstimator` — unsupervised: each record's average
  percentile rank across the available inputs is scaled onto the assumed
  sensitive range.  Like the fuzzy system it needs no labeled data, only the
  ordinal "bigger inputs, bigger income" assumption;
* :class:`LinearRegressionEstimator` — least squares on a leaked labeled
  sample (an adversary who knows a few true salaries);
* :class:`KNNEstimator` — k-nearest-neighbour regression on the same sample.

All estimators consume either a list of ``{input name: value-or-None}``
records or a column mapping of ``(N,)`` float arrays (NaN for missing cells,
the batch layout of :mod:`repro.fuzzy.batch`), so they are drop-in
replacements for the fuzzy engines inside
:class:`repro.fusion.attack.WebFusionAttack`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Protocol, Sequence

import numpy as np

from repro.exceptions import AttackConfigurationError
from repro.fuzzy.batch import BatchRecords, as_columns, batch_length

__all__ = [
    "SensitiveEstimator",
    "MidpointEstimator",
    "RankScalingEstimator",
    "LinearRegressionEstimator",
    "KNNEstimator",
    "records_to_matrix",
]


#: Either per-record mappings or a column mapping of ``(N,)`` float arrays.
FusionRecords = BatchRecords


class SensitiveEstimator(Protocol):
    """Anything that can turn merged fusion inputs into sensitive-value estimates."""

    def evaluate_batch(self, records: "FusionRecords") -> np.ndarray:
        """Estimates for each record, in order."""
        ...  # pragma: no cover - protocol


def records_to_matrix(
    records: "FusionRecords", feature_names: Sequence[str]
) -> np.ndarray:
    """Stack records into a ``(n, features)`` matrix with NaN for missing values.

    Accepts either per-record mappings or an already column-oriented mapping
    of ``(n,)`` arrays (which just gets stacked in ``feature_names`` order).
    """
    n, columns = as_columns(records, feature_names)
    if not feature_names:
        return np.full((n, 0), np.nan, dtype=float)
    return np.column_stack([columns[name] for name in feature_names])


@dataclass
class MidpointEstimator:
    """Always predicts the midpoint of the assumed sensitive range."""

    output_universe: tuple[float, float]

    def evaluate_batch(self, records: "FusionRecords") -> np.ndarray:
        midpoint = (self.output_universe[0] + self.output_universe[1]) / 2.0
        return np.full(batch_length(records), midpoint, dtype=float)


@dataclass
class RankScalingEstimator:
    """Unsupervised rank-average estimator.

    Each available feature value is converted to its percentile rank within the
    batch (reversed for features whose ``direction`` is -1); a record's score is
    the mean rank of its available features, and the estimate is that score
    scaled linearly onto ``output_universe``.  Records with no available
    features fall back to the range midpoint.
    """

    feature_names: tuple[str, ...]
    output_universe: tuple[float, float]
    directions: Mapping[str, int] = field(default_factory=dict)

    def evaluate_batch(self, records: "FusionRecords") -> np.ndarray:
        matrix = records_to_matrix(records, self.feature_names)
        n = matrix.shape[0]
        if n == 0:
            return np.array([], dtype=float)
        ranks = np.full_like(matrix, np.nan)
        for j, name in enumerate(self.feature_names):
            column = matrix[:, j]
            available = ~np.isnan(column)
            if available.sum() <= 1:
                ranks[available, j] = 0.5
                continue
            order = column[available].argsort(kind="stable").argsort(kind="stable")
            normalized = order / (available.sum() - 1)
            if self.directions.get(name, 1) < 0:
                normalized = 1.0 - normalized
            ranks[available, j] = normalized
        low, high = self.output_universe
        midpoint = (low + high) / 2.0
        estimates = np.full(n, midpoint, dtype=float)
        available_counts = (~np.isnan(ranks)).sum(axis=1)
        rank_sums = np.nansum(np.nan_to_num(ranks, nan=0.0), axis=1)
        has_data = available_counts > 0
        mean_rank = np.zeros(n, dtype=float)
        mean_rank[has_data] = rank_sums[has_data] / available_counts[has_data]
        estimates[has_data] = low + mean_rank[has_data] * (high - low)
        return estimates


@dataclass
class LinearRegressionEstimator:
    """Ordinary least squares on a leaked labeled sample.

    Missing feature values are imputed with the training-set column means both
    at fit and at prediction time.
    """

    feature_names: tuple[str, ...]
    output_universe: tuple[float, float]
    _coefficients: np.ndarray | None = field(init=False, default=None, repr=False)
    _column_means: np.ndarray | None = field(init=False, default=None, repr=False)

    def fit(
        self,
        records: "FusionRecords",
        targets: Sequence[float],
    ) -> "LinearRegressionEstimator":
        """Fit the model; returns ``self`` for chaining."""
        n = batch_length(records)
        if n != len(targets):
            raise AttackConfigurationError("records and targets must have equal length")
        if n < 2:
            raise AttackConfigurationError("linear regression needs at least 2 labeled examples")
        matrix = records_to_matrix(records, self.feature_names)
        self._column_means = np.nanmean(
            np.where(np.isnan(matrix), np.nan, matrix), axis=0
        )
        self._column_means = np.nan_to_num(self._column_means, nan=0.0)
        matrix = self._impute(matrix)
        design = np.column_stack([np.ones(matrix.shape[0]), matrix])
        solution, *_ = np.linalg.lstsq(design, np.asarray(targets, dtype=float), rcond=None)
        self._coefficients = solution
        return self

    def _impute(self, matrix: np.ndarray) -> np.ndarray:
        filled = matrix.copy()
        rows, cols = np.where(np.isnan(filled))
        filled[rows, cols] = self._column_means[cols]
        return filled

    def evaluate_batch(self, records: "FusionRecords") -> np.ndarray:
        if self._coefficients is None:
            raise AttackConfigurationError("call fit() before evaluate_batch()")
        matrix = self._impute(records_to_matrix(records, self.feature_names))
        design = np.column_stack([np.ones(matrix.shape[0]), matrix])
        predictions = design @ self._coefficients
        return np.clip(predictions, self.output_universe[0], self.output_universe[1])


@dataclass
class KNNEstimator:
    """k-nearest-neighbour regression on a leaked labeled sample."""

    feature_names: tuple[str, ...]
    output_universe: tuple[float, float]
    neighbors: int = 3
    _train_matrix: np.ndarray | None = field(init=False, default=None, repr=False)
    _train_targets: np.ndarray | None = field(init=False, default=None, repr=False)
    _column_means: np.ndarray | None = field(init=False, default=None, repr=False)
    _column_stds: np.ndarray | None = field(init=False, default=None, repr=False)

    def fit(
        self,
        records: "FusionRecords",
        targets: Sequence[float],
    ) -> "KNNEstimator":
        """Fit (memorize and standardize) the training sample."""
        if self.neighbors < 1:
            raise AttackConfigurationError("neighbors must be >= 1")
        n = batch_length(records)
        if n != len(targets):
            raise AttackConfigurationError("records and targets must have equal length")
        if n < self.neighbors:
            raise AttackConfigurationError(
                f"need at least {self.neighbors} labeled examples, got {n}"
            )
        matrix = records_to_matrix(records, self.feature_names)
        self._column_means = np.nan_to_num(np.nanmean(matrix, axis=0), nan=0.0)
        stds = np.nan_to_num(np.nanstd(matrix, axis=0), nan=1.0)
        self._column_stds = np.where(stds <= 0.0, 1.0, stds)
        self._train_matrix = self._standardize(matrix)
        self._train_targets = np.asarray(targets, dtype=float)
        return self

    def _standardize(self, matrix: np.ndarray) -> np.ndarray:
        filled = matrix.copy()
        rows, cols = np.where(np.isnan(filled))
        filled[rows, cols] = self._column_means[cols]
        return (filled - self._column_means) / self._column_stds

    def evaluate_batch(self, records: "FusionRecords") -> np.ndarray:
        if self._train_matrix is None or self._train_targets is None:
            raise AttackConfigurationError("call fit() before evaluate_batch()")
        queries = self._standardize(records_to_matrix(records, self.feature_names))
        if queries.shape[0] == 0:
            return np.array([], dtype=float)
        # One (queries, train) distance matrix instead of a per-query loop,
        # via ||q - t||^2 = ||q||^2 + ||t||^2 - 2 q.t — no (Q, T, F) delta
        # tensor, so memory stays O(Q*T) even for very large batches.
        squared = (
            (queries**2).sum(axis=1)[:, None]
            + (self._train_matrix**2).sum(axis=1)[None, :]
            - 2.0 * (queries @ self._train_matrix.T)
        )
        distances = np.sqrt(np.maximum(squared, 0.0))
        nearest = np.argsort(distances, axis=1, kind="stable")[:, : self.neighbors]
        estimates = self._train_targets[nearest].mean(axis=1)
        return np.clip(estimates, self.output_universe[0], self.output_universe[1])
