"""Web-based information-fusion attack: auxiliary sources, linkage, fusion."""

from repro.fusion.attack import (
    AttackConfig,
    AttackResult,
    WebFusionAttack,
    build_income_fusion_system,
    harvest_auxiliary,
)
from repro.fusion.auxiliary import (
    AuxiliaryRecord,
    AuxiliarySource,
    TableAuxiliarySource,
    auxiliary_table,
)
from repro.fusion.estimators import (
    KNNEstimator,
    LinearRegressionEstimator,
    MidpointEstimator,
    RankScalingEstimator,
    SensitiveEstimator,
    records_to_matrix,
)
from repro.fusion.linkage import (
    MatchCandidate,
    NameMatcher,
    jaro_similarity,
    jaro_winkler_similarity,
    levenshtein_distance,
    levenshtein_similarity,
    name_similarity,
    normalize_name,
    token_set_similarity,
)
from repro.fusion.rulegen import monotone_rules, wang_mendel_rules
from repro.fusion.web import SimulatedWebCorpus, WebPage, name_variant

__all__ = [
    "AttackConfig",
    "AttackResult",
    "WebFusionAttack",
    "build_income_fusion_system",
    "harvest_auxiliary",
    "AuxiliaryRecord",
    "AuxiliarySource",
    "TableAuxiliarySource",
    "auxiliary_table",
    "SimulatedWebCorpus",
    "WebPage",
    "name_variant",
    "NameMatcher",
    "MatchCandidate",
    "normalize_name",
    "levenshtein_distance",
    "levenshtein_similarity",
    "jaro_similarity",
    "jaro_winkler_similarity",
    "token_set_similarity",
    "name_similarity",
    "monotone_rules",
    "wang_mendel_rules",
    "MidpointEstimator",
    "RankScalingEstimator",
    "LinearRegressionEstimator",
    "KNNEstimator",
    "SensitiveEstimator",
    "records_to_matrix",
]
