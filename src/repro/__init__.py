"""Reproduction of "On Breaching Enterprise Data Privacy Through Adversarial
Information Fusion" (Ganta & Acharya, 2008).

The package provides:

* :mod:`repro.dataset` — the enterprise-database substrate (schemas with
  identifier / quasi-identifier / sensitive roles, tables, generalization);
* :mod:`repro.anonymize` — partitioning-based anonymizers (MDAV
  microaggregation, Mondrian, Datafly, clustering) plus k-anonymity,
  l-diversity and t-closeness predicates;
* :mod:`repro.fuzzy` — the Mamdani / Sugeno fuzzy-inference engines used as
  the information-fusion system;
* :mod:`repro.fusion` — the Web-Based Information-Fusion Attack: simulated web
  corpus, attack pipeline and baseline estimators;
* :mod:`repro.linkage` — the batched record-linkage engine: normalization,
  q-gram blocking and vectorized similarity kernels behind the attack's
  harvest step;
* :mod:`repro.metrics` — dissimilarity, discernibility utility, information
  gain and breach metrics;
* :mod:`repro.core` — the FRED (Fusion Resilient Enterprise Data) optimizer;
* :mod:`repro.data` — synthetic dataset and web-profile generators;
* :mod:`repro.experiments` — runners regenerating every table and figure of
  the paper's evaluation;
* :mod:`repro.service` — the serving tier: a long-lived anonymization service
  with fingerprint-keyed release/result caching and asynchronous FRED jobs.

Quickstart
----------
>>> from repro import (generate_faculty, corpus_for_faculty, MDAVAnonymizer,
...                    AttackConfig, WebFusionAttack)
>>> population = generate_faculty()
>>> release = MDAVAnonymizer().anonymize(population.private, k=5).release
>>> corpus = corpus_for_faculty(population)
>>> config = AttackConfig(
...     release_inputs=("research_score", "teaching_score", "service_score", "years_of_service"),
...     auxiliary_inputs=population.auxiliary_attributes,
...     output_name="salary",
...     output_universe=population.assumed_salary_range,
... )
>>> estimates = WebFusionAttack(corpus, config).run(release).estimates
"""

from repro.anonymize import (
    AnonymizationResult,
    DataflyAnonymizer,
    GreedyClusterAnonymizer,
    MDAVAnonymizer,
    MondrianAnonymizer,
    anonymity_level,
    is_k_anonymous,
    naive_release,
)
from repro.core import FREDAnonymizer, FREDConfig, FREDResult, WeightedObjective
from repro.data import (
    corpus_for_census,
    corpus_for_customers,
    corpus_for_faculty,
    enterprise_customers_example,
    generate_census,
    generate_customers,
    generate_faculty,
)
from repro.dataset import Attribute, AttributeKind, AttributeRole, Interval, Schema, Table
from repro.exceptions import ReproError
from repro.fusion import (
    AttackConfig,
    AttackResult,
    SimulatedWebCorpus,
    WebFusionAttack,
)
from repro.fuzzy import FuzzyRule, LinguisticVariable, MamdaniSystem, SugenoSystem, parse_rules
from repro.linkage import LinkageIndex
from repro.metrics import (
    breach_rate,
    discernibility_utility,
    dissimilarity_after_fusion,
    dissimilarity_before_fusion,
    information_gain,
    mean_square_dissimilarity,
)

from repro.service import AnonymizationService, TwoTierCache, build_server

__version__ = "1.1.0"

__all__ = [
    "__version__",
    "ReproError",
    # dataset
    "Attribute",
    "AttributeKind",
    "AttributeRole",
    "Schema",
    "Table",
    "Interval",
    # anonymize
    "AnonymizationResult",
    "MDAVAnonymizer",
    "MondrianAnonymizer",
    "DataflyAnonymizer",
    "GreedyClusterAnonymizer",
    "anonymity_level",
    "is_k_anonymous",
    "naive_release",
    # fuzzy
    "LinguisticVariable",
    "FuzzyRule",
    "parse_rules",
    "MamdaniSystem",
    "SugenoSystem",
    # fusion
    "AttackConfig",
    "AttackResult",
    "WebFusionAttack",
    "SimulatedWebCorpus",
    # linkage
    "LinkageIndex",
    # metrics
    "mean_square_dissimilarity",
    "dissimilarity_before_fusion",
    "dissimilarity_after_fusion",
    "information_gain",
    "discernibility_utility",
    "breach_rate",
    # core
    "WeightedObjective",
    "FREDConfig",
    "FREDAnonymizer",
    "FREDResult",
    # data
    "generate_faculty",
    "generate_customers",
    "generate_census",
    "enterprise_customers_example",
    "corpus_for_faculty",
    "corpus_for_customers",
    "corpus_for_census",
    # service
    "AnonymizationService",
    "TwoTierCache",
    "build_server",
]
