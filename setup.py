"""Legacy setup shim.

The offline environments this reproduction targets may lack the ``wheel``
package needed by PEP 660 editable installs; keeping a ``setup.py`` allows
``pip install -e . --no-use-pep517 --no-build-isolation`` (and plain
``python setup.py develop``) to work there.
"""

from setuptools import setup

setup()
