"""Unit tests for the Definition-1 dissimilarity and adversary-estimate matrices."""

from __future__ import annotations

import numpy as np
import pytest

from repro.anonymize.mdav import MDAVAnonymizer
from repro.anonymize.suppression import naive_release
from repro.exceptions import MetricError
from repro.metrics.dissimilarity import (
    adversary_estimate_matrix,
    dissimilarity_after_fusion,
    dissimilarity_before_fusion,
    mean_square_dissimilarity,
    private_matrix,
)


class TestMeanSquareDissimilarity:
    def test_identical_matrices_have_zero_dissimilarity(self, rng):
        matrix = rng.normal(size=(10, 3))
        assert mean_square_dissimilarity(matrix, matrix) == pytest.approx(0.0)

    def test_matches_definition(self):
        first = np.array([[1.0, 2.0], [3.0, 4.0]])
        second = np.array([[1.0, 0.0], [0.0, 4.0]])
        delta = first - second
        expected = np.trace(delta.T @ delta) / 2.0
        assert mean_square_dissimilarity(first, second) == pytest.approx(expected)

    def test_symmetry(self, rng):
        a = rng.normal(size=(8, 2))
        b = rng.normal(size=(8, 2))
        assert mean_square_dissimilarity(a, b) == pytest.approx(mean_square_dissimilarity(b, a))

    def test_scales_with_squared_error(self):
        truth = np.zeros((5, 1))
        assert mean_square_dissimilarity(truth, truth + 2.0) == pytest.approx(4.0)
        assert mean_square_dissimilarity(truth, truth + 4.0) == pytest.approx(16.0)

    def test_vector_inputs_accepted(self):
        assert mean_square_dissimilarity(np.zeros(4), np.ones(4)) == pytest.approx(1.0)

    def test_validation(self, rng):
        with pytest.raises(MetricError):
            mean_square_dissimilarity(np.zeros((2, 2)), np.zeros((3, 2)))
        with pytest.raises(MetricError):
            mean_square_dissimilarity(np.zeros((0, 2)), np.zeros((0, 2)))
        with_nan = np.array([[np.nan, 1.0]])
        with pytest.raises(MetricError):
            mean_square_dissimilarity(with_nan, np.zeros((1, 2)))


class TestPrivateMatrix:
    def test_contains_qis_and_sensitive(self, simple_table):
        matrix = private_matrix(simple_table)
        assert matrix.shape == (6, 2)  # age + salary ('city' is categorical)
        assert matrix[0, 1] == 52_000.0


class TestAdversaryEstimateMatrix:
    def test_before_fusion_uses_assumed_midpoint(self, simple_table):
        release = naive_release(simple_table).release
        estimate = adversary_estimate_matrix(
            simple_table, release, assumed_sensitive_range=(0.0, 100_000.0)
        )
        assert np.allclose(estimate[:, -1], 50_000.0)
        # quasi-identifiers pass through exactly for a naive release
        assert np.allclose(estimate[:, 0], simple_table.numeric_column("age"))

    def test_after_fusion_uses_estimates(self, simple_table):
        release = naive_release(simple_table).release
        estimates = np.linspace(10_000.0, 60_000.0, 6)
        matrix = adversary_estimate_matrix(
            simple_table, release, sensitive_estimates=estimates
        )
        assert np.allclose(matrix[:, -1], estimates)

    def test_generalized_release_uses_midpoints(self, simple_table):
        release = MDAVAnonymizer().anonymize(simple_table, 3).release
        matrix = adversary_estimate_matrix(
            simple_table, release, assumed_sensitive_range=(0.0, 1.0)
        )
        assert matrix.shape == (6, 2)
        assert not np.isnan(matrix).any()

    def test_validation(self, simple_table):
        release = naive_release(simple_table).release
        with pytest.raises(MetricError):
            adversary_estimate_matrix(simple_table, release)
        with pytest.raises(MetricError):
            adversary_estimate_matrix(
                simple_table, release, assumed_sensitive_range=(2.0, 1.0)
            )
        with pytest.raises(MetricError):
            adversary_estimate_matrix(
                simple_table, release, sensitive_estimates=np.zeros(3)
            )
        short_release = release.take([0, 1, 2])
        with pytest.raises(MetricError):
            adversary_estimate_matrix(
                simple_table, short_release, assumed_sensitive_range=(0.0, 1.0)
            )


class TestBeforeAfterFusion:
    def test_perfect_estimates_leave_only_generalization_error(self, simple_table):
        release = MDAVAnonymizer().anonymize(simple_table, 2).release
        truth = simple_table.sensitive_vector()
        after = dissimilarity_after_fusion(simple_table, release, truth)
        before = dissimilarity_before_fusion(simple_table, release, (40_000.0, 110_000.0))
        assert after < before
        # perfect sensitive estimates leave only the (small) QI generalization error
        assert after < 1_000.0

    def test_before_fusion_grows_with_worse_assumed_range(self, simple_table):
        release = MDAVAnonymizer().anonymize(simple_table, 2).release
        close = dissimilarity_before_fusion(simple_table, release, (40_000.0, 110_000.0))
        far = dissimilarity_before_fusion(simple_table, release, (200_000.0, 400_000.0))
        assert far > close
