"""Unit tests for the experiment harness (tables, figures, runner, report)."""

from __future__ import annotations

import pytest

from repro.anonymize.kanonymity import is_k_anonymous
from repro.exceptions import ExperimentError
from repro.experiments.figures import (
    default_setup,
    derive_thresholds,
    run_figure4,
    run_figure5,
    run_figure6,
    run_figure7,
    run_figure8,
    run_sweep,
)
from repro.experiments.report import (
    figure_to_markdown,
    render_report,
    sweep_shape_checks,
    table_to_markdown,
)
from repro.experiments.runner import run_all
from repro.experiments.tables import (
    run_all_tables,
    run_example_attack,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
)


@pytest.fixture(scope="module")
def small_sweep():
    """A reduced sweep (small population, few levels) shared by figure tests."""
    setup = default_setup(count=30, seed=5, levels=(2, 4, 6, 8))
    return run_sweep(setup)


class TestTables:
    def test_table1(self):
        result = run_table1()
        assert result.table.num_rows == 4
        assert "Alice" in result.to_text()

    def test_table2(self):
        result = run_table2()
        assert result.table.schema.sensitive_attributes == ("income",)

    def test_table3_is_anonymized_release(self):
        result = run_table3(k=2)
        assert "income" not in result.table.schema
        assert is_k_anonymous(result.table, 2)
        assert result.table.column("name") == run_table2().table.column("name")

    def test_table4(self):
        result = run_table4()
        assert "property_holdings" in result.table.schema

    def test_run_all_tables(self):
        results = run_all_tables()
        assert set(results) == {"table1", "table2", "table3", "table4"}

    def test_example_attack_narrative(self):
        outcome = run_example_attack(k=2)
        estimates = outcome["estimates"]
        # Robert is the highest earner and must receive the highest estimate.
        assert estimates["Robert"] == max(estimates.values())
        assert set(estimates) == {"Alice", "Bob", "Christine", "Robert"}
        for value in estimates.values():
            assert 40_000 <= value <= 100_000


class TestSweepAndFigures:
    def test_sweep_series_lengths(self, small_sweep):
        assert small_sweep.levels == [2, 4, 6, 8]
        for series in (small_sweep.before, small_sweep.after, small_sweep.gain, small_sweep.utility):
            assert len(series) == 4
        as_dict = small_sweep.as_dict()
        assert set(as_dict) == {"before", "after", "gain", "utility"}

    def test_fusion_always_helps(self, small_sweep):
        assert all(a < b for a, b in zip(small_sweep.after, small_sweep.before))
        assert all(g > 0 for g in small_sweep.gain)

    def test_utility_decreases(self, small_sweep):
        assert small_sweep.utility[-1] < small_sweep.utility[0]

    def test_figures_4_to_7_extract_series(self, small_sweep):
        assert run_figure4(small_sweep).series["P o P' (without Q)"] == small_sweep.before
        assert run_figure5(small_sweep).series["P o P^ (with Q)"] == small_sweep.after
        assert run_figure6(small_sweep).series["Information Gain (G)"] == small_sweep.gain
        assert run_figure7(small_sweep).series["Utility (U)"] == small_sweep.utility

    def test_figure_text_rendering(self, small_sweep):
        text = run_figure4(small_sweep).to_text()
        assert "figure4" in text
        assert str(small_sweep.levels[0]) in text

    def test_derive_thresholds(self, small_sweep):
        protection_threshold, utility_threshold = derive_thresholds(small_sweep)
        assert protection_threshold in small_sweep.after
        assert utility_threshold in small_sweep.utility
        with pytest.raises(ExperimentError):
            derive_thresholds(small_sweep, lower_fraction=0.9, upper_fraction=0.5)

    def test_figure8_optimum_in_feasible_band(self, small_sweep):
        figure = run_figure8(small_sweep)
        assert len(figure.x) >= 1
        assert "optimal k=" in figure.notes
        assert all(40 >= x >= 2 for x in figure.x)

    def test_figure8_with_impossible_thresholds(self, small_sweep):
        with pytest.raises(ExperimentError):
            run_figure8(small_sweep, thresholds=(float("inf"), float("inf")))


class TestReporting:
    def test_shape_checks_structure(self, small_sweep):
        checks = sweep_shape_checks(small_sweep)
        assert len(checks) == 5
        assert all(isinstance(passed, bool) for _, passed in checks)

    def test_figure_markdown(self, small_sweep):
        text = figure_to_markdown(run_figure4(small_sweep))
        assert text.startswith("###")
        assert "|" in text

    def test_table_markdown(self):
        text = table_to_markdown(run_table2())
        assert "| name |" in text or "| name " in text

    def test_render_report_and_runner(self, small_sweep):
        setup = default_setup(count=30, seed=5, levels=(2, 4, 6, 8))
        report = run_all(setup)
        assert set(report.figures) == {"figure4", "figure5", "figure6", "figure7", "figure8"}
        assert set(report.tables) == {"table1", "table2", "table3", "table4"}
        markdown = report.to_markdown()
        assert "# Reproduced experiments" in markdown
        assert "figure8" in markdown.lower()
        standalone = render_report(report.figures, report.tables, report.sweep)
        assert "## Figures" in standalone
