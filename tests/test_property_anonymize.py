"""Property-based tests (hypothesis) for anonymizers and privacy metrics."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.anonymize.clustering import GreedyClusterAnonymizer
from repro.anonymize.datafly import DataflyAnonymizer
from repro.anonymize.kanonymity import anonymity_level, is_k_anonymous
from repro.anonymize.mdav import MDAVAnonymizer, _mdav_groups
from repro.anonymize.mondrian import MondrianAnonymizer
from repro.dataset.schema import Attribute, AttributeKind, AttributeRole, Schema
from repro.dataset.table import Table
from repro.metrics.dissimilarity import mean_square_dissimilarity
from repro.metrics.utility import discernibility_cost


def _random_table(values: list[list[float]]) -> Table:
    schema = Schema(
        [
            Attribute("name", AttributeRole.IDENTIFIER, AttributeKind.TEXT),
            Attribute("q1", AttributeRole.QUASI_IDENTIFIER),
            Attribute("q2", AttributeRole.QUASI_IDENTIFIER),
            Attribute("sensitive", AttributeRole.SENSITIVE),
        ]
    )
    rows = [
        {"name": f"person {i}", "q1": row[0], "q2": row[1], "sensitive": row[2]}
        for i, row in enumerate(values)
    ]
    return Table.from_rows(schema, rows)


row_strategy = st.lists(
    st.lists(
        st.floats(min_value=-1e4, max_value=1e4, allow_nan=False, allow_infinity=False),
        min_size=3,
        max_size=3,
    ),
    min_size=4,
    max_size=24,
)


class TestMDAVProperties:
    @given(row_strategy, st.integers(min_value=2, max_value=4))
    @settings(max_examples=40, deadline=None)
    def test_partition_is_valid_and_release_k_anonymous(self, rows, k):
        table = _random_table(rows)
        if k > table.num_rows:
            return
        result = MDAVAnonymizer().anonymize(table, k)
        covered = sorted(i for c in result.classes for i in c.indices)
        assert covered == list(range(table.num_rows))
        assert result.minimum_class_size >= k
        assert is_k_anonymous(result.release, k)
        assert anonymity_level(result.release) >= k

    @given(
        st.integers(min_value=6, max_value=40),
        st.integers(min_value=2, max_value=5),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_group_size_bounds(self, n, k, seed):
        if k > n:
            return
        points = np.random.default_rng(seed).normal(size=(n, 3))
        groups = _mdav_groups(points, k)
        sizes = [len(g) for g in groups]
        assert sum(sizes) == n
        assert min(sizes) >= k
        assert max(sizes) <= 2 * k - 1


class TestMondrianProperties:
    @given(row_strategy, st.integers(min_value=2, max_value=3))
    @settings(max_examples=30, deadline=None)
    def test_partition_respects_k(self, rows, k):
        table = _random_table(rows)
        if k > table.num_rows:
            return
        result = MondrianAnonymizer().anonymize(table, k)
        assert result.minimum_class_size >= k
        assert sum(result.class_sizes) == table.num_rows


def _assert_valid_partition(result, table, k, suppression_exempt=()):
    """The invariants every partitioning anonymizer must satisfy.

    Classes are pairwise disjoint, cover every row exactly once, and each
    class has at least ``k`` members — except classes holding suppressed rows
    (Datafly), which may be smaller.
    """
    covered = [i for c in result.classes for i in c.indices]
    assert sorted(covered) == list(range(table.num_rows))  # disjoint + covering
    exempt = set(suppression_exempt)
    for equivalence_class in result.classes:
        if set(equivalence_class.indices) & exempt:
            continue
        assert equivalence_class.size >= k


class TestCrossAnonymizerInvariants:
    """Partition invariants pinned across all four partitioning schemes."""

    @given(row_strategy, st.integers(min_value=2, max_value=4))
    @settings(max_examples=25, deadline=None)
    def test_mdav_partition_invariants(self, rows, k):
        table = _random_table(rows)
        if k > table.num_rows:
            return
        result = MDAVAnonymizer().anonymize(table, k)
        _assert_valid_partition(result, table, k)
        # MDAV's fixed-size grouping additionally bounds classes above.
        assert max(result.class_sizes) <= 2 * k - 1

    @given(row_strategy, st.integers(min_value=2, max_value=4))
    @settings(max_examples=25, deadline=None)
    def test_mondrian_partition_invariants(self, rows, k):
        table = _random_table(rows)
        if k > table.num_rows:
            return
        result = MondrianAnonymizer().anonymize(table, k)
        _assert_valid_partition(result, table, k)

    @given(row_strategy, st.integers(min_value=2, max_value=4))
    @settings(max_examples=25, deadline=None)
    def test_clustering_partition_invariants(self, rows, k):
        table = _random_table(rows)
        if k > table.num_rows:
            return
        result = GreedyClusterAnonymizer().anonymize(table, k)
        _assert_valid_partition(result, table, k)

    @given(row_strategy, st.integers(min_value=2, max_value=3))
    @settings(max_examples=15, deadline=None)
    def test_datafly_partition_invariants(self, rows, k):
        table = _random_table(rows)
        if k > table.num_rows:
            return
        result = DataflyAnonymizer(max_suppression_fraction=1.0).anonymize(table, k)
        _assert_valid_partition(result, table, k, suppression_exempt=result.suppressed)


class TestMetricProperties:
    @given(
        st.lists(
            st.floats(min_value=-1e5, max_value=1e5, allow_nan=False, allow_infinity=False),
            min_size=2,
            max_size=30,
        )
    )
    @settings(max_examples=60)
    def test_dissimilarity_nonnegative_and_zero_on_identity(self, values):
        vector = np.asarray(values, dtype=float)
        assert mean_square_dissimilarity(vector, vector) == 0.0
        shifted = vector + 1.0
        assert mean_square_dissimilarity(vector, shifted) > 0.0

    @given(st.lists(st.integers(min_value=1, max_value=30), min_size=1, max_size=20),
           st.integers(min_value=1, max_value=10))
    @settings(max_examples=60)
    def test_discernibility_cost_bounds(self, sizes, k):
        total = sum(sizes)
        cost = discernibility_cost(sizes, total_records=total, k=k)
        # lower bound: every record in a size-1 class at k=1; upper bound: one
        # giant class (n^2) or full penalty (n * n)
        assert total <= cost <= float(total) ** 2
