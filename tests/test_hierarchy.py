"""Unit tests for repro.dataset.hierarchy."""

from __future__ import annotations

import pytest

from repro.dataset.generalization import SUPPRESSED, CategorySet, Interval
from repro.dataset.hierarchy import NumericHierarchy, TaxonomyHierarchy
from repro.exceptions import HierarchyError


class TestNumericHierarchy:
    def test_level_zero_is_identity(self):
        hierarchy = NumericHierarchy(low=0, high=100, base_width=10)
        assert hierarchy.generalize(42, 0) == 42

    def test_top_level_is_suppression(self):
        hierarchy = NumericHierarchy(low=0, high=100, base_width=10, levels=4)
        assert hierarchy.generalize(42, 3) is SUPPRESSED

    def test_intermediate_levels_are_intervals(self):
        hierarchy = NumericHierarchy(low=0, high=100, base_width=10, branching=2, levels=5)
        cell = hierarchy.generalize(42, 1)
        assert isinstance(cell, Interval)
        assert cell == Interval(40, 50)
        wider = hierarchy.generalize(42, 2)
        assert wider == Interval(40, 60)
        assert wider.width > cell.width

    def test_interval_contains_the_value(self):
        hierarchy = NumericHierarchy(low=0, high=100, base_width=7, levels=5)
        for level in (1, 2, 3):
            for value in (0, 13, 55.5, 100):
                cell = hierarchy.generalize(value, level)
                assert isinstance(cell, Interval)
                assert cell.contains(min(max(value, 0), 100))

    def test_out_of_domain_values_are_clamped(self):
        hierarchy = NumericHierarchy(low=0, high=10, base_width=2, levels=4)
        cell = hierarchy.generalize(25, 1)
        assert isinstance(cell, Interval)
        assert cell.high <= 10

    def test_width_grows_with_level(self):
        hierarchy = NumericHierarchy(low=0, high=64, base_width=4, branching=2, levels=5)
        assert hierarchy.width_at(1) == 4
        assert hierarchy.width_at(2) == 8
        assert hierarchy.width_at(3) == 16

    def test_level_out_of_range(self):
        hierarchy = NumericHierarchy(low=0, high=10, base_width=1, levels=3)
        with pytest.raises(HierarchyError):
            hierarchy.generalize(5, 3)
        with pytest.raises(HierarchyError):
            hierarchy.generalize(5, -1)

    def test_invalid_construction(self):
        with pytest.raises(HierarchyError):
            NumericHierarchy(low=10, high=0, base_width=1)
        with pytest.raises(HierarchyError):
            NumericHierarchy(low=0, high=10, base_width=0)
        with pytest.raises(HierarchyError):
            NumericHierarchy(low=0, high=10, base_width=1, branching=1)
        with pytest.raises(HierarchyError):
            NumericHierarchy(low=0, high=10, base_width=1, levels=1)


@pytest.fixture()
def department_taxonomy() -> TaxonomyHierarchy:
    return TaxonomyHierarchy(
        parents={
            "CSE": "Engineering",
            "ECE": "Engineering",
            "Math": "Science",
            "Physics": "Science",
            "Engineering": "University",
            "Science": "University",
        }
    )


class TestTaxonomyHierarchy:
    def test_level_zero_is_identity(self, department_taxonomy):
        assert department_taxonomy.generalize("CSE", 0) == "CSE"

    def test_one_level_up(self, department_taxonomy):
        cell = department_taxonomy.generalize("CSE", 1)
        assert isinstance(cell, CategorySet)
        assert cell.label == "Engineering"
        assert cell.members == ("CSE", "ECE")

    def test_two_levels_up_reaches_root(self, department_taxonomy):
        cell = department_taxonomy.generalize("CSE", 2)
        assert isinstance(cell, CategorySet)
        assert cell.label == "University"
        assert set(cell.members) == {"CSE", "ECE", "Math", "Physics"}

    def test_top_level_is_suppression(self, department_taxonomy):
        assert department_taxonomy.generalize("CSE", department_taxonomy.levels - 1) is SUPPRESSED

    def test_levels_inferred_from_depth(self, department_taxonomy):
        # depth 2 (leaf -> mid -> root) => levels = 4 (exact, mid, root, suppressed)
        assert department_taxonomy.levels == 4

    def test_unknown_value_rejected(self, department_taxonomy):
        with pytest.raises(HierarchyError):
            department_taxonomy.generalize("History", 1)

    def test_cycle_detection(self):
        with pytest.raises(HierarchyError, match="cycle"):
            TaxonomyHierarchy(parents={"a": "b", "b": "a"})

    def test_empty_rejected(self):
        with pytest.raises(HierarchyError):
            TaxonomyHierarchy(parents={})
