"""End-to-end tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.dataset.io import read_csv, write_csv
from repro.dataset.schema import Attribute, AttributeKind, AttributeRole, Schema
from repro.dataset.table import Table
from repro.anonymize.kanonymity import is_k_anonymous


@pytest.fixture()
def csv_paths(tmp_path, faculty_population):
    """Write the faculty private table and its auxiliary web data as CSVs."""
    private_path = tmp_path / "private.csv"
    write_csv(faculty_population.private, private_path)

    aux_schema = Schema(
        [Attribute("name", AttributeRole.IDENTIFIER, AttributeKind.TEXT)]
        + [
            Attribute(name, AttributeRole.QUASI_IDENTIFIER)
            for name in faculty_population.auxiliary_attributes
        ]
    )
    aux_rows = [
        {
            "name": profile["name"],
            **{name: profile[name] for name in faculty_population.auxiliary_attributes},
        }
        for profile in faculty_population.profiles
    ]
    aux_path = tmp_path / "web.csv"
    write_csv(Table.from_rows(aux_schema, aux_rows), aux_path)
    return private_path, aux_path


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_parses_anonymize(self):
        arguments = build_parser().parse_args(
            ["anonymize", "--input", "a.csv", "--output", "b.csv", "--k", "3"]
        )
        assert arguments.command == "anonymize"
        assert arguments.k == 3
        assert arguments.algorithm == "mdav"

    def test_help_lists_every_subcommand(self):
        help_text = build_parser().format_help()
        for command in ("anonymize", "append", "attack", "fred", "serve"):
            assert command in help_text

    def test_parses_serve_with_defaults(self):
        arguments = build_parser().parse_args(["serve"])
        assert arguments.command == "serve"
        assert arguments.host == "127.0.0.1"
        assert arguments.port == 8080
        assert arguments.cache_size == 128
        assert arguments.cache_dir is None
        assert arguments.job_workers == 2
        assert arguments.fred_parallelism == 1
        assert arguments.verbose is False

    def test_parses_serve_overrides(self):
        arguments = build_parser().parse_args(
            ["serve", "--port", "0", "--cache-size", "16", "--cache-dir", "/tmp/c"]
        )
        assert arguments.port == 0
        assert arguments.cache_size == 16
        assert str(arguments.cache_dir) == "/tmp/c"


class TestAnonymizeCommand:
    def test_writes_k_anonymous_release(self, csv_paths, tmp_path, capsys):
        private_path, _ = csv_paths
        output = tmp_path / "release.csv"
        exit_code = main(
            ["anonymize", "--input", str(private_path), "--output", str(output), "--k", "4"]
        )
        assert exit_code == 0
        release = read_csv(output)
        assert "salary" not in release.schema
        assert is_k_anonymous(release, 4)
        assert "wrote" in capsys.readouterr().out

    @pytest.mark.parametrize("algorithm", ["mondrian", "greedy-cluster"])
    def test_other_algorithms(self, csv_paths, tmp_path, algorithm):
        private_path, _ = csv_paths
        output = tmp_path / "release.csv"
        exit_code = main(
            [
                "anonymize", "--input", str(private_path), "--output", str(output),
                "--k", "3", "--algorithm", algorithm,
            ]
        )
        assert exit_code == 0
        assert is_k_anonymous(read_csv(output), 3)

    def test_infeasible_k_reports_error(self, csv_paths, tmp_path, capsys):
        private_path, _ = csv_paths
        exit_code = main(
            [
                "anonymize", "--input", str(private_path),
                "--output", str(tmp_path / "r.csv"), "--k", "10000",
            ]
        )
        assert exit_code == 2
        assert "error:" in capsys.readouterr().err


class TestAppendCommand:
    def test_appends_delta_under_a_chained_fingerprint(
        self, csv_paths, tmp_path, capsys
    ):
        from repro.dataset.table import chain_fingerprints

        private_path, _ = csv_paths
        base = read_csv(private_path)
        delta = base.take([0, 1, 2])
        delta_path = tmp_path / "delta.csv"
        write_csv(delta, delta_path)
        output = tmp_path / "combined.csv"
        exit_code = main(
            [
                "append", "--base", str(private_path),
                "--delta", str(delta_path), "--output", str(output),
            ]
        )
        assert exit_code == 0
        combined = read_csv(output)
        assert combined.num_rows == base.num_rows + 3
        printed = capsys.readouterr().out
        assert chain_fingerprints(base.fingerprint, delta.fingerprint) in printed

    def test_schema_mismatch_reports_error(self, csv_paths, tmp_path, capsys):
        private_path, aux_path = csv_paths
        exit_code = main(
            [
                "append", "--base", str(private_path),
                "--delta", str(aux_path), "--output", str(tmp_path / "out.csv"),
            ]
        )
        assert exit_code == 2
        assert "error:" in capsys.readouterr().err


class TestAttackCommand:
    def test_estimates_written(self, csv_paths, tmp_path, faculty_population, capsys):
        private_path, aux_path = csv_paths
        release_path = tmp_path / "release.csv"
        main(["anonymize", "--input", str(private_path), "--output", str(release_path), "--k", "3"])

        estimates_path = tmp_path / "estimates.csv"
        low, high = faculty_population.assumed_salary_range
        exit_code = main(
            [
                "attack", "--release", str(release_path), "--auxiliary", str(aux_path),
                "--sensitive-low", str(low), "--sensitive-high", str(high),
                "--output", str(estimates_path), "--sensitive-name", "salary_estimate",
            ]
        )
        assert exit_code == 0
        estimates = read_csv(estimates_path)
        assert estimates.num_rows == faculty_population.private.num_rows
        values = estimates.numeric_column("salary_estimate")
        assert (values >= low).all() and (values <= high).all()
        assert "matched auxiliary data" in capsys.readouterr().out

    def test_prints_when_no_output(self, csv_paths, tmp_path, faculty_population, capsys):
        private_path, aux_path = csv_paths
        release_path = tmp_path / "release.csv"
        main(["anonymize", "--input", str(private_path), "--output", str(release_path), "--k", "3"])
        low, high = faculty_population.assumed_salary_range
        exit_code = main(
            [
                "attack", "--release", str(release_path), "--auxiliary", str(aux_path),
                "--sensitive-low", str(low), "--sensitive-high", str(high),
            ]
        )
        assert exit_code == 0
        assert "sensitive_estimate" in capsys.readouterr().out

    def test_invalid_range(self, csv_paths, tmp_path, capsys):
        private_path, aux_path = csv_paths
        release_path = tmp_path / "release.csv"
        main(["anonymize", "--input", str(private_path), "--output", str(release_path), "--k", "3"])
        exit_code = main(
            [
                "attack", "--release", str(release_path), "--auxiliary", str(aux_path),
                "--sensitive-low", "10", "--sensitive-high", "5",
            ]
        )
        assert exit_code == 2


class TestFredCommand:
    def test_selects_level_and_writes_release(self, csv_paths, tmp_path, capsys):
        private_path, aux_path = csv_paths
        output = tmp_path / "fused.csv"
        exit_code = main(
            [
                "fred", "--input", str(private_path), "--auxiliary", str(aux_path),
                "--kmin", "2", "--kmax", "5", "--output", str(output),
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "optimal level" in out
        release = read_csv(output)
        assert "salary" not in release.schema
        assert is_k_anonymous(release, 2)

    def test_parallel_sweep_matches_serial(self, csv_paths, capsys):
        private_path, aux_path = csv_paths
        base = [
            "fred", "--input", str(private_path), "--auxiliary", str(aux_path),
            "--kmin", "2", "--kmax", "5",
        ]
        assert main(base) == 0
        serial_out = capsys.readouterr().out
        assert main(base + ["--parallelism", "4"]) == 0
        parallel_out = capsys.readouterr().out
        assert parallel_out == serial_out


class TestServeCommand:
    def test_serve_subprocess_answers_http(self, csv_paths, tmp_path):
        """``repro serve`` boots, registers a dataset, serves a release, dies."""
        import json
        import os
        import signal
        import subprocess
        import sys
        import urllib.request

        private_path, _ = csv_paths
        env = dict(os.environ)
        env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
             "--cache-dir", str(tmp_path / "spill")],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
        try:
            banner = process.stdout.readline()
            assert "serving on http://" in banner
            port = int(banner.strip().rsplit(":", 1)[1])
            base = f"http://127.0.0.1:{port}"

            with urllib.request.urlopen(f"{base}/healthz", timeout=30) as response:
                assert json.loads(response.read()) == {"status": "ok"}

            request = urllib.request.Request(
                f"{base}/datasets",
                data=private_path.read_bytes(),
                headers={"Content-Type": "text/csv"},
                method="POST",
            )
            with urllib.request.urlopen(request, timeout=30) as response:
                fingerprint = json.loads(response.read())["fingerprint"]

            release_request = urllib.request.Request(
                f"{base}/release",
                data=json.dumps({"dataset": fingerprint, "k": 3}).encode(),
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            with urllib.request.urlopen(release_request, timeout=60) as response:
                first = response.read()
            with urllib.request.urlopen(release_request, timeout=60) as response:
                second = response.read()
            assert first == second and b"salary" not in first

            process.send_signal(signal.SIGINT)
            assert process.wait(timeout=30) == 0
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=30)
            process.stdout.close()
