"""Unit tests for the Web-Based Information-Fusion Attack pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.anonymize.mdav import MDAVAnonymizer
from repro.anonymize.suppression import naive_release
from repro.data.customers import adversary_auxiliary_example, enterprise_customers_example
from repro.exceptions import AttackConfigurationError
from repro.fusion.attack import AttackConfig, WebFusionAttack, build_income_fusion_system
from repro.fusion.estimators import MidpointEstimator
from repro.fusion.web import SimulatedWebCorpus
from repro.fuzzy.inference import MamdaniSystem
from repro.fuzzy.tsk import SugenoSystem
from repro.fuzzy.variables import LinguisticVariable
from repro.metrics.privacy import rank_correlation


@pytest.fixture()
def customer_corpus() -> SimulatedWebCorpus:
    auxiliary = adversary_auxiliary_example()
    profiles = [
        {
            "name": row["name"],
            "position": row["employment"],
            "property_holdings": float(row["property_holdings"]),
        }
        for row in auxiliary.rows()
    ]
    return SimulatedWebCorpus.from_profiles(
        profiles, ("property_holdings",), noise_level=0.0, coverage=1.0,
        name_variant_probability=0.0, seed=1,
    )


@pytest.fixture()
def customer_config() -> AttackConfig:
    return AttackConfig(
        release_inputs=("invst_vol", "invst_amt", "valuation"),
        auxiliary_inputs=("property_holdings",),
        output_name="income",
        output_universe=(40_000.0, 100_000.0),
        output_ranges={
            "low": (40_000.0, 60_000.0),
            "medium": (60_000.0, 80_000.0),
            "high": (80_000.0, 100_000.0),
        },
        input_ranges={
            "invst_vol": (1.0, 10.0),
            "invst_amt": (1.0, 10.0),
            "valuation": (1.0, 10.0),
            "property_holdings": (500.0, 6_000.0),
        },
    )


class TestAttackConfig:
    def test_requires_some_inputs(self):
        with pytest.raises(AttackConfigurationError):
            AttackConfig(
                release_inputs=(), auxiliary_inputs=(), output_name="y",
                output_universe=(0.0, 1.0),
            )

    def test_output_universe_validation(self):
        with pytest.raises(AttackConfigurationError):
            AttackConfig(
                release_inputs=("a",), auxiliary_inputs=(), output_name="y",
                output_universe=(1.0, 1.0),
            )

    def test_engine_validation(self):
        with pytest.raises(AttackConfigurationError):
            AttackConfig(
                release_inputs=("a",), auxiliary_inputs=(), output_name="y",
                output_universe=(0.0, 1.0), engine="neural",
            )
        with pytest.raises(AttackConfigurationError):
            AttackConfig(
                release_inputs=("a",), auxiliary_inputs=(), output_name="y",
                output_universe=(0.0, 1.0), engine="custom",
            )

    def test_rules_and_rule_texts_mutually_exclusive(self):
        from repro.fuzzy.rules import parse_rule

        with pytest.raises(AttackConfigurationError):
            AttackConfig(
                release_inputs=("a",), auxiliary_inputs=(), output_name="y",
                output_universe=(0.0, 1.0),
                rules=[parse_rule("IF a IS low THEN y IS low")],
                rule_texts=["IF a IS low THEN y IS low"],
            )

    def test_all_inputs_order(self, customer_config):
        assert customer_config.all_inputs == (
            "invst_vol", "invst_amt", "valuation", "property_holdings",
        )


class TestBuildSystem:
    def test_engine_dispatch(self):
        inputs = {"x": LinguisticVariable.with_uniform_terms("x", (0, 1), ("low", "high"))}
        output = LinguisticVariable.with_uniform_terms("y", (0, 1), ("low", "high"))
        from repro.fusion.rulegen import monotone_rules

        rules = monotone_rules(inputs, output)
        assert isinstance(
            build_income_fusion_system(inputs, output, rules, engine="mamdani"), MamdaniSystem
        )
        assert isinstance(
            build_income_fusion_system(inputs, output, rules, engine="sugeno"), SugenoSystem
        )
        with pytest.raises(AttackConfigurationError):
            build_income_fusion_system(inputs, output, rules, engine="bogus")


class TestAttackOnCustomers:
    def test_end_to_end_estimates(self, customer_corpus, customer_config):
        private = enterprise_customers_example()
        release = MDAVAnonymizer().anonymize(private, 2).release
        result = WebFusionAttack(customer_corpus, customer_config).run(release)

        assert result.estimates.shape == (4,)
        assert result.match_rate == 1.0
        assert (result.estimates >= 40_000).all() and (result.estimates <= 100_000).all()

        # The paper's narrative: Robert (highest valuation, largest holdings)
        # must land in the top income band of the estimates.
        names = [str(n) for n in release.identifier_column()]
        by_name = dict(zip(names, result.estimates))
        assert by_name["Robert"] == max(result.estimates)
        truth = [float(row["income"]) for row in private.rows()]
        assert rank_correlation(truth, result.estimates) > 0.5

    def test_auxiliary_table_matches_harvest(self, customer_corpus, customer_config):
        private = enterprise_customers_example()
        release = MDAVAnonymizer().anonymize(private, 2).release
        result = WebFusionAttack(customer_corpus, customer_config).run(release)
        assert result.auxiliary.num_rows == 4
        assert "property_holdings" in result.auxiliary.schema

    def test_missing_release_column_rejected(self, customer_corpus, customer_config):
        private = enterprise_customers_example()
        release = MDAVAnonymizer().anonymize(private, 2).release.drop_columns(["valuation"])
        with pytest.raises(AttackConfigurationError, match="missing configured input"):
            WebFusionAttack(customer_corpus, customer_config).run(release)

    def test_attack_works_on_naive_and_anonymized_releases(self, customer_corpus, customer_config):
        private = enterprise_customers_example()
        anonymized = MDAVAnonymizer().anonymize(private, 2).release
        naive = naive_release(private).release
        attack = WebFusionAttack(customer_corpus, customer_config)
        truth = [float(row["income"]) for row in private.rows()]
        # Whichever release the enterprise publishes, the fused estimates
        # recover the income ordering — dropping the income column alone is
        # not enough to hide who the high earners are.
        for release in (naive, anonymized):
            estimates = attack.run(release).estimates
            assert rank_correlation(truth, estimates) > 0.5
            names = [str(n) for n in release.identifier_column()]
            by_name = dict(zip(names, estimates))
            assert by_name["Robert"] == max(estimates)

    def test_custom_estimator_engine(self, customer_corpus, customer_config):
        config = AttackConfig(
            release_inputs=customer_config.release_inputs,
            auxiliary_inputs=customer_config.auxiliary_inputs,
            output_name="income",
            output_universe=(40_000.0, 100_000.0),
            engine="custom",
            estimator=MidpointEstimator((40_000.0, 100_000.0)),
        )
        private = enterprise_customers_example()
        release = MDAVAnonymizer().anonymize(private, 2).release
        result = WebFusionAttack(customer_corpus, config).run(release)
        assert np.allclose(result.estimates, 70_000.0)

    def test_custom_estimator_keeps_per_record_contract(
        self, customer_corpus, customer_config
    ):
        # User-supplied estimators were written against a sequence of
        # per-record dicts; the batch rewrite must keep handing them that.
        seen: list = []

        class RecordingEstimator:
            def evaluate_batch(self, records):
                seen.append(records)
                return np.array(
                    [50_000.0 + (record.get("age") or 0.0) for record in records]
                )

        config = AttackConfig(
            release_inputs=customer_config.release_inputs,
            auxiliary_inputs=customer_config.auxiliary_inputs,
            output_name="income",
            output_universe=(40_000.0, 100_000.0),
            engine="custom",
            estimator=RecordingEstimator(),
        )
        private = enterprise_customers_example()
        release = MDAVAnonymizer().anonymize(private, 2).release
        result = WebFusionAttack(customer_corpus, config).run(release)
        assert len(seen) == 1
        assert isinstance(seen[0], list)
        assert all(isinstance(record, dict) for record in seen[0])
        assert result.estimates.shape == (release.num_rows,)

    def test_sugeno_engine(self, customer_corpus, customer_config):
        config = AttackConfig(
            release_inputs=customer_config.release_inputs,
            auxiliary_inputs=customer_config.auxiliary_inputs,
            output_name="income",
            output_universe=(40_000.0, 100_000.0),
            input_ranges=customer_config.input_ranges,
            engine="sugeno",
        )
        private = enterprise_customers_example()
        release = MDAVAnonymizer().anonymize(private, 2).release
        result = WebFusionAttack(customer_corpus, config).run(release)
        truth = [float(row["income"]) for row in private.rows()]
        assert rank_correlation(truth, result.estimates) > 0.5

    def test_explicit_rule_texts(self, customer_corpus, customer_config):
        config = AttackConfig(
            release_inputs=("valuation",),
            auxiliary_inputs=("property_holdings",),
            output_name="income",
            output_universe=(40_000.0, 100_000.0),
            input_ranges={"valuation": (1.0, 10.0), "property_holdings": (500.0, 6_000.0)},
            rule_texts=[
                "IF valuation IS high AND property_holdings IS high THEN income IS high",
                "IF valuation IS low THEN income IS low",
                "IF property_holdings IS low THEN income IS low",
                "IF valuation IS medium THEN income IS medium",
            ],
        )
        private = enterprise_customers_example()
        release = MDAVAnonymizer().anonymize(private, 2).release
        result = WebFusionAttack(customer_corpus, config).run(release)
        names = [str(n) for n in release.identifier_column()]
        by_name = dict(zip(names, result.estimates))
        assert by_name["Robert"] > by_name["Christine"]


class TestAttackOnFaculty:
    def test_missing_web_pages_lower_match_rate(self, faculty_population, faculty_attack_config):
        from repro.data.webgen import corpus_for_faculty

        sparse = corpus_for_faculty(faculty_population, coverage=0.4)
        release = MDAVAnonymizer().anonymize(faculty_population.private, 3).release
        result = WebFusionAttack(sparse, faculty_attack_config).run(release)
        assert result.match_rate < 0.95
        assert result.estimates.shape == (faculty_population.private.num_rows,)
        assert not np.isnan(result.estimates).any()

    def test_fusion_beats_midpoint_guess(
        self, faculty_population, faculty_corpus, faculty_attack_config
    ):
        release = MDAVAnonymizer().anonymize(faculty_population.private, 3).release
        fused = WebFusionAttack(faculty_corpus, faculty_attack_config).run(release)
        truth = faculty_population.private.sensitive_vector()
        low, high = faculty_attack_config.output_universe
        midpoint_error = np.mean((truth - (low + high) / 2.0) ** 2)
        fused_error = np.mean((truth - fused.estimates) ** 2)
        assert fused_error < midpoint_error
