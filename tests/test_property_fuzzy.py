"""Property-based tests (hypothesis) for the fuzzy inference substrate."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fusion.rulegen import monotone_rules
from repro.fuzzy.inference import MamdaniSystem
from repro.fuzzy.membership import GaussianMF, TrapezoidalMF, TriangularMF
from repro.fuzzy.tsk import SugenoSystem
from repro.fuzzy.variables import LinguisticVariable

finite = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)


class TestMembershipProperties:
    @given(st.lists(finite, min_size=3, max_size=3).map(sorted), finite)
    def test_triangular_in_unit_interval(self, abc, x):
        a, b, c = abc
        if a == c:
            return
        mf = TriangularMF(a, b, c)
        assert 0.0 <= mf.degree(x) <= 1.0

    @given(st.lists(finite, min_size=4, max_size=4).map(sorted), finite)
    def test_trapezoidal_in_unit_interval_and_plateau_full(self, abcd, x):
        a, b, c, d = abcd
        if a == d:
            return
        mf = TrapezoidalMF(a, b, c, d)
        assert 0.0 <= mf.degree(x) <= 1.0
        assert mf.degree((b + c) / 2.0) == 1.0

    @given(finite, st.floats(min_value=1e-3, max_value=1e4), finite)
    def test_gaussian_bounded_and_peak_at_mean(self, mean, sigma, x):
        mf = GaussianMF(mean, sigma)
        assert 0.0 <= mf.degree(x) <= 1.0
        assert mf.degree(mean) == 1.0
        assert mf.degree(x) <= mf.degree(mean)


def _build_systems(term_count: int):
    terms = tuple(f"t{i}" for i in range(term_count))
    inputs = {
        "a": LinguisticVariable.with_uniform_terms("a", (0.0, 10.0), terms),
        "b": LinguisticVariable.with_uniform_terms("b", (0.0, 100.0), terms),
    }
    output = LinguisticVariable.with_uniform_terms("y", (0.0, 1000.0), terms)
    rules = monotone_rules(inputs, output)
    mamdani = MamdaniSystem(inputs=inputs, output=output, rules=rules)
    sugeno = SugenoSystem(inputs=dict(inputs), output=output, rules=list(rules))
    return mamdani, sugeno


class TestInferenceProperties:
    @given(
        st.integers(min_value=2, max_value=5),
        st.floats(min_value=0, max_value=10, allow_nan=False),
        st.floats(min_value=0, max_value=100, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_outputs_stay_inside_output_universe(self, term_count, a, b):
        mamdani, sugeno = _build_systems(term_count)
        for system in (mamdani, sugeno):
            estimate = system.evaluate({"a": a, "b": b})
            assert 0.0 <= estimate <= 1000.0

    @given(
        st.floats(min_value=0, max_value=10, allow_nan=False),
        st.floats(min_value=0, max_value=10, allow_nan=False),
        st.floats(min_value=0, max_value=100, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_sugeno_monotone_in_each_input(self, a1, a2, b):
        _, sugeno = _build_systems(3)
        low_a, high_a = min(a1, a2), max(a1, a2)
        assert sugeno.evaluate({"a": low_a, "b": b}) <= sugeno.evaluate({"a": high_a, "b": b}) + 1e-9

    @given(
        st.floats(min_value=0, max_value=10, allow_nan=False),
        st.floats(min_value=0, max_value=100, allow_nan=False),
    )
    @settings(max_examples=40, deadline=None)
    def test_missing_input_equivalent_to_none_and_nan(self, a, b):
        mamdani, _ = _build_systems(3)
        assert mamdani.evaluate({"a": a, "b": None}) == mamdani.evaluate(
            {"a": a, "b": float("nan")}
        )

    @given(st.lists(st.floats(min_value=0, max_value=10, allow_nan=False), min_size=1, max_size=8))
    @settings(max_examples=30, deadline=None)
    def test_batch_matches_pointwise(self, values):
        mamdani, _ = _build_systems(3)
        records = [{"a": v, "b": v * 10} for v in values]
        batch = mamdani.evaluate_batch(records)
        pointwise = np.array([mamdani.evaluate(r) for r in records])
        assert np.allclose(batch, pointwise)
