"""Integration tests: the paper's end-to-end claims on the default experiment.

These tests exercise the full pipeline — data generation, web-corpus
simulation, MDAV anonymization, fusion attack, metrics and the FRED optimizer
— exactly the way the benchmark harness regenerates the paper's figures, and
assert the qualitative *shape* claims listed in DESIGN.md §3.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.fred import FREDAnonymizer, FREDConfig
from repro.core.objective import WeightedObjective
from repro.experiments.figures import default_setup, derive_thresholds, run_figure8, run_sweep
from repro.experiments.report import sweep_shape_checks


@pytest.fixture(scope="module")
def paper_sweep():
    """The default (paper-scale) sweep; computed once for the whole module."""
    return run_sweep(default_setup())


class TestPaperShapeClaims:
    def test_all_shape_checks_pass(self, paper_sweep):
        failures = [desc for desc, ok in sweep_shape_checks(paper_sweep) if not ok]
        assert not failures, f"shape checks failed: {failures}"

    def test_fusion_reduces_dissimilarity_substantially(self, paper_sweep):
        # The paper reports roughly a 35-43% drop at small k; we accept any
        # clearly material reduction (>15%) to stay robust to the synthetic
        # substitution of the proprietary dataset.
        reduction = 1.0 - paper_sweep.after[0] / paper_sweep.before[0]
        assert reduction > 0.15

    def test_before_fusion_is_nearly_flat(self, paper_sweep):
        spread = max(paper_sweep.before) - min(paper_sweep.before)
        assert spread / max(paper_sweep.before) < 0.05

    def test_information_gain_positive_and_non_increasing_endpoints(self, paper_sweep):
        assert min(paper_sweep.gain) > 0
        assert paper_sweep.gain[-1] <= paper_sweep.gain[0]

    def test_utility_strictly_decays_endpoints(self, paper_sweep):
        assert paper_sweep.utility[-1] < paper_sweep.utility[0]
        # and is weakly decreasing overall in the large
        assert np.mean(np.diff(paper_sweep.utility)) < 0

    def test_figure8_band_and_optimum(self, paper_sweep):
        protection_threshold, utility_threshold = derive_thresholds(paper_sweep)
        figure = run_figure8(paper_sweep, (protection_threshold, utility_threshold))
        band = [int(x) for x in figure.x]
        # the feasible band excludes the weakest anonymization levels
        assert min(band) > paper_sweep.levels[0]
        # the optimum is a member of the band
        optimal_k = int(figure.notes.rsplit("optimal k=", 1)[1])
        assert optimal_k in band


class TestFREDOnPaperSetup:
    def test_fred_selects_level_inside_band(self, paper_sweep):
        setup = paper_sweep.setup
        protection_threshold, utility_threshold = derive_thresholds(paper_sweep)
        fred = FREDAnonymizer(
            setup.corpus,
            setup.attack_config,
            FREDConfig(
                levels=setup.levels,
                protection_threshold=protection_threshold,
                utility_threshold=utility_threshold,
                objective=WeightedObjective(0.5, 0.5),
                stop_below_utility=False,
            ),
        )
        result = fred.run(setup.population.private)
        band = result.feasible_levels()
        assert result.optimal_level in band
        assert min(band) > setup.levels[0]
        # The selected release is genuinely k-anonymous at the selected level.
        from repro.anonymize.kanonymity import anonymity_level

        assert anonymity_level(result.optimal_release) >= result.optimal_level

    def test_fred_trace_matches_standalone_sweep(self, paper_sweep):
        # FREDAnonymizer.sweep and the experiment harness must agree — they are
        # two views of the same computation.
        setup = paper_sweep.setup
        fred = FREDAnonymizer(
            setup.corpus,
            setup.attack_config,
            FREDConfig(levels=setup.levels[:3], stop_below_utility=False),
        )
        outcomes = fred.sweep(setup.population.private)
        assert [o.level for o in outcomes] == list(setup.levels[:3])
        assert [o.protection_after for o in outcomes] == pytest.approx(
            paper_sweep.after[:3]
        )
        assert [o.utility for o in outcomes] == pytest.approx(paper_sweep.utility[:3])
