"""Incremental data plane: append-mode ingest and delta LinkageIndex updates.

The executable specification is *equivalence with a cold rebuild*: a table
assembled by :meth:`~repro.dataset.table.Table.append` must hold the same
content as a one-shot ingest, and a :class:`~repro.linkage.LinkageIndex`
grown by :meth:`~repro.linkage.LinkageIndex.extend` must be **bit-identical**
— every flat buffer, both padded matrices, the token postings, the blocking
postings and every query answer — to an index built from scratch over the
full corpus.  The hypothesis suites pin that equivalence over arbitrary
append chunkings, unicode names, duplicates and empty/degenerate deltas;
the regression classes pin the sharding and shared-memory interactions
(extending a shard works, extending a read-only attacher raises a clear
:class:`~repro.exceptions.LinkageError`).
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataset.schema import Attribute, AttributeKind, AttributeRole, Schema
from repro.dataset.table import Table, chain_fingerprints
from repro.exceptions import LinkageError, TableError
from repro.linkage import LinkageIndex
from repro.linkage.shm import SharedLinkageIndex, shared_memory_available

# Names wider than ASCII on purpose: accents, CJK, empty strings, whitespace
# runs and punctuation all flow through normalize/encode/tokenize.
name_strategy = st.text(
    alphabet=st.characters(
        codec="utf-8", categories=("Lu", "Ll", "Zs", "Pd", "Po")
    ),
    max_size=20,
)
corpus_strategy = st.lists(name_strategy, min_size=0, max_size=12)


def _chunked(names: list[str], boundaries: list[int]) -> list[list[str]]:
    """Split ``names`` at the (sorted, deduped, clamped) boundary offsets."""
    cuts = sorted({min(b, len(names)) for b in boundaries})
    chunks, start = [], 0
    for cut in cuts:
        chunks.append(names[start:cut])
        start = cut
    chunks.append(names[start:])
    return chunks


def _index_artifacts(index: LinkageIndex) -> dict[str, object]:
    """Every derived artifact, for exact (values *and* dtypes) comparison."""
    return {
        "names": list(index.names),
        "vocab": list(index._vocab),
        "name_offsets": index._name_offsets,
        "flat_codes": index._flat_codes,
        "lengths": index._lengths,
        "codes": index._codes,
        "token_ids": index._token_ids,
        "token_counts": index._token_counts,
        "token_matrix": index._token_matrix,
        "post_rows": index._token_post_rows,
        "post_offsets": index._token_post_offsets,
        "blocking_size": index._blocking._size,
        "blocking": dict(index._blocking._postings),
    }


def _assert_artifacts_identical(grown: LinkageIndex, rebuilt: LinkageIndex) -> None:
    left, right = _index_artifacts(grown), _index_artifacts(rebuilt)
    assert left["names"] == right["names"]
    assert left["vocab"] == right["vocab"]
    assert left["blocking_size"] == right["blocking_size"]
    for key in (
        "name_offsets", "flat_codes", "lengths", "codes", "token_ids",
        "token_counts", "token_matrix", "post_rows", "post_offsets",
    ):
        assert left[key].dtype == right[key].dtype, key
        assert np.array_equal(left[key], right[key]), key
    assert left["blocking"].keys() == right["blocking"].keys()
    for block_key, rows in right["blocking"].items():
        assert np.array_equal(left["blocking"][block_key], rows), block_key


def _assert_queries_identical(
    grown: LinkageIndex, rebuilt: LinkageIndex, queries: list[str]
) -> None:
    assert grown.match_many(queries) == rebuilt.match_many(queries)
    for query in queries:
        assert grown.candidates(query) == rebuilt.candidates(query)


class TestExtendEqualsRebuild:
    @given(
        corpus_strategy,
        st.lists(st.integers(min_value=0, max_value=12), max_size=4),
        st.lists(name_strategy, max_size=4),
    )
    @settings(max_examples=60, deadline=None)
    def test_chunked_extends_equal_full_build(self, names, boundaries, queries):
        chunks = _chunked(names, boundaries)
        grown = LinkageIndex(chunks[0])
        for chunk in chunks[1:]:
            grown.extend(chunk)
        rebuilt = LinkageIndex(names)
        _assert_artifacts_identical(grown, rebuilt)
        # Queries include corpus members (exercise perfect-match and scoring
        # paths) plus arbitrary text.
        _assert_queries_identical(grown, rebuilt, list(names[:3]) + list(queries))

    @given(corpus_strategy, corpus_strategy)
    @settings(max_examples=40, deadline=None)
    def test_extend_patches_lazy_caches_correctly(self, base, delta):
        grown = LinkageIndex(base)
        # Force both lazy caches to exist *before* the append, so extend must
        # patch or invalidate them rather than starting from scratch.
        grown.match_many(list(base[:2]) + ["probe"])
        grown.extend(delta)
        rebuilt = LinkageIndex(list(base) + list(delta))
        _assert_queries_identical(
            grown, rebuilt, list(base[:2]) + list(delta[:2]) + ["probe"]
        )

    def test_empty_delta_is_a_no_op(self):
        index = LinkageIndex(["maria lopez", "xu wei"])
        before = _index_artifacts(index)
        index.extend([])
        after = _index_artifacts(index)
        assert before["names"] == after["names"]
        assert np.array_equal(before["post_rows"], after["post_rows"])

    def test_extend_from_empty_index(self):
        grown = LinkageIndex([])
        grown.extend(["maria lopez", "josé álvarez"])
        rebuilt = LinkageIndex(["maria lopez", "josé álvarez"])
        _assert_artifacts_identical(grown, rebuilt)
        _assert_queries_identical(grown, rebuilt, ["maria lopez", "nobody"])

    def test_extend_with_degenerate_names(self):
        grown = LinkageIndex(["maria lopez"])
        grown.extend(["", "   ", "maria lopez"])
        rebuilt = LinkageIndex(["maria lopez", "", "   ", "maria lopez"])
        _assert_artifacts_identical(grown, rebuilt)
        _assert_queries_identical(grown, rebuilt, ["maria lopez", ""])


class TestShardAndShmInteractions:
    def test_extending_a_shard_appends_at_the_shard_end(self):
        full = LinkageIndex(["maria lopez", "xu wei", "nils møller", "ada byron"])
        left, right = full.shard(2)
        left.extend(["grace hopper"])
        assert left.size == 3
        match = left.match_many(["grace hopper"])[0]
        assert match is not None and match.candidate == "grace hopper"
        # The untouched shard keeps its global row offset semantics.
        offset_match = right.match_many(["ada byron"])[0]
        assert offset_match is not None and offset_match.candidate_index == 3

    @pytest.mark.skipif(
        not shared_memory_available(),
        reason="multiprocessing.shared_memory unavailable",
    )
    def test_extending_an_attacher_raises_a_clear_error(self):
        index = LinkageIndex(["maria lopez", "xu wei"])
        with SharedLinkageIndex.publish(index):
            attached = pickle.loads(pickle.dumps(index))
            with pytest.raises(LinkageError, match="read-only"):
                attached.extend(["ada byron"])

    @pytest.mark.skipif(
        not shared_memory_available(),
        reason="multiprocessing.shared_memory unavailable",
    )
    def test_owner_extend_refreshes_the_publication(self):
        index = LinkageIndex(["maria lopez", "xu wei"])
        with SharedLinkageIndex.publish(index):
            index.extend(["grace hopper"])
            attached = pickle.loads(pickle.dumps(index))
            match = attached.match_many(["grace hopper"])[0]
            assert match is not None and match.candidate == "grace hopper"
            _assert_artifacts_identical(
                attached, LinkageIndex(["maria lopez", "xu wei", "grace hopper"])
            )


def _people(names: list[str], offset: int = 0) -> Table:
    schema = Schema(
        [
            Attribute("name", AttributeRole.IDENTIFIER, AttributeKind.TEXT),
            Attribute("age", AttributeRole.QUASI_IDENTIFIER),
            Attribute("salary", AttributeRole.SENSITIVE),
        ]
    )
    return Table(
        schema,
        {
            "name": names,
            "age": [20 + offset + i for i in range(len(names))],
            "salary": [1000.0 + offset + i for i in range(len(names))],
        },
    )


class TestTableAppendEqualsFullIngest:
    @given(
        st.lists(name_strategy, min_size=1, max_size=10),
        st.lists(st.integers(min_value=1, max_value=10), max_size=3),
    )
    @settings(max_examples=40, deadline=None)
    def test_chunked_appends_hold_full_ingest_content(self, names, boundaries):
        chunks = [c for c in _chunked(names, boundaries) if c]
        offsets = np.cumsum([0] + [len(c) for c in chunks])
        combined = _people(chunks[0])
        for chunk, offset in zip(chunks[1:], offsets[1:]):
            combined = combined.append(_people(chunk, offset=int(offset)))
        full = _people(names)
        assert combined.num_rows == full.num_rows
        for column in full.schema.names:
            left = combined.column_array(column)
            right = full.column_array(column)
            assert left.dtype == right.dtype
            assert np.array_equal(left, right)

    @given(
        st.lists(name_strategy, min_size=1, max_size=6),
        st.lists(name_strategy, min_size=1, max_size=6),
    )
    @settings(max_examples=40, deadline=None)
    def test_chained_fingerprint_is_deterministic_and_fresh(self, base, delta):
        base_table, delta_table = _people(base), _people(delta, offset=100)
        once = base_table.append(delta_table)
        twice = _people(base).append(_people(delta, offset=100))
        assert once.fingerprint == twice.fingerprint
        assert once.fingerprint == chain_fingerprints(
            base_table.fingerprint, delta_table.fingerprint
        )
        # The chained identity names the append, not either parent.
        assert once.fingerprint != base_table.fingerprint
        assert once.fingerprint != delta_table.fingerprint

    def test_append_rejects_schema_mismatch(self):
        base = _people(["maria"])
        other = Table(
            Schema([Attribute("name", AttributeRole.IDENTIFIER, AttributeKind.TEXT)]),
            {"name": ["xu"]},
        )
        with pytest.raises(TableError):
            base.append(other)
