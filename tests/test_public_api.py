"""Sanity checks of the public API surface and documentation hygiene."""

from __future__ import annotations

import importlib
import inspect

import pytest

import repro

SUBPACKAGES = [
    "repro.dataset",
    "repro.anonymize",
    "repro.fuzzy",
    "repro.fusion",
    "repro.linkage",
    "repro.metrics",
    "repro.core",
    "repro.data",
    "repro.experiments",
    "repro.service",
]


class TestTopLevelExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version_is_a_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") >= 1

    def test_quickstart_symbols_present(self):
        for name in (
            "Table", "Schema", "MDAVAnonymizer", "WebFusionAttack", "AttackConfig",
            "FREDAnonymizer", "generate_faculty", "corpus_for_faculty",
        ):
            assert name in repro.__all__


class TestSubpackages:
    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_importable_with_docstring_and_all(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} is missing a module docstring"
        assert hasattr(module, "__all__")
        for name in module.__all__:
            assert hasattr(module, name), f"{module_name}.{name} missing"

    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_public_objects_documented(self, module_name):
        module = importlib.import_module(module_name)
        for name in module.__all__:
            obj = getattr(module, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                assert obj.__doc__, f"{module_name}.{name} has no docstring"


class TestErrorHierarchy:
    def test_every_library_exception_is_a_repro_error(self):
        from repro import exceptions

        for name in exceptions.__all__:
            error_class = getattr(exceptions, name)
            assert issubclass(error_class, exceptions.ReproError)

    def test_catching_repro_error_catches_subsystem_errors(self, simple_table):
        from repro.anonymize.mdav import MDAVAnonymizer
        from repro.exceptions import ReproError

        with pytest.raises(ReproError):
            MDAVAnonymizer().anonymize(simple_table, 100)
