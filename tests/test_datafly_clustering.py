"""Unit tests for the Datafly and greedy-clustering anonymizers."""

from __future__ import annotations

import pytest

from repro.anonymize.clustering import GreedyClusterAnonymizer
from repro.anonymize.datafly import DataflyAnonymizer, default_hierarchies
from repro.anonymize.kanonymity import anonymity_level
from repro.dataset.hierarchy import NumericHierarchy
from repro.exceptions import AnonymizationError


class TestDefaultHierarchies:
    def test_one_hierarchy_per_numeric_qi(self, faculty_population):
        hierarchies = default_hierarchies(faculty_population.private)
        assert set(hierarchies) == set(
            faculty_population.private.schema.numeric_quasi_identifiers
        )
        for hierarchy in hierarchies.values():
            assert isinstance(hierarchy, NumericHierarchy)
            assert hierarchy.levels >= 2


class TestDatafly:
    @pytest.mark.parametrize("k", [2, 4])
    def test_release_meets_k_up_to_suppression(self, faculty_population, k):
        result = DataflyAnonymizer(max_suppression_fraction=0.1).anonymize(
            faculty_population.private, k
        )
        # Non-suppressed records must satisfy k; the (single) suppressed class
        # is allowed to be smaller.
        suppressed = set(result.suppressed)
        for equivalence_class in result.classes:
            if set(equivalence_class.indices) & suppressed:
                continue
            assert equivalence_class.size >= k

    def test_suppression_budget_respected(self, faculty_population):
        result = DataflyAnonymizer(max_suppression_fraction=0.1).anonymize(
            faculty_population.private, 3
        )
        assert len(result.suppressed) <= 0.1 * faculty_population.private.num_rows + 1

    def test_k1_release_is_untouched(self, faculty_population):
        result = DataflyAnonymizer().anonymize(faculty_population.private, 1)
        assert anonymity_level(result.release) >= 1
        assert result.suppressed == ()

    def test_invalid_suppression_fraction(self):
        with pytest.raises(AnonymizationError):
            DataflyAnonymizer(max_suppression_fraction=1.5)

    def test_requires_hierarchy_for_some_qi(self, simple_table):
        anonymizer = DataflyAnonymizer(hierarchies={"missing": NumericHierarchy(0, 1, 0.1)})
        with pytest.raises(AnonymizationError):
            anonymizer.anonymize(simple_table, 2)

    def test_sensitive_column_removed(self, faculty_population):
        result = DataflyAnonymizer().anonymize(faculty_population.private, 2)
        assert "salary" not in result.release.schema


class TestGreedyCluster:
    @pytest.mark.parametrize("k", [2, 3, 6])
    def test_cluster_sizes_at_least_k(self, faculty_population, k):
        result = GreedyClusterAnonymizer().anonymize(faculty_population.private, k)
        assert result.minimum_class_size >= k
        assert sum(result.class_sizes) == faculty_population.private.num_rows

    def test_differs_from_mdav_in_general(self, faculty_population):
        from repro.anonymize.mdav import MDAVAnonymizer

        greedy = GreedyClusterAnonymizer().anonymize(faculty_population.private, 4)
        mdav = MDAVAnonymizer().anonymize(faculty_population.private, 4)
        greedy_sets = {frozenset(c.indices) for c in greedy.classes}
        mdav_sets = {frozenset(c.indices) for c in mdav.classes}
        # The two heuristics need not agree; what matters is both are valid.
        assert greedy_sets and mdav_sets

    def test_missing_values_rejected(self, simple_table):
        from repro.dataset.generalization import SUPPRESSED

        broken = simple_table.replace_column("age", [SUPPRESSED, 31, 37, 44, 52, 58])
        with pytest.raises(AnonymizationError):
            GreedyClusterAnonymizer().anonymize(broken, 2)
