"""Unit tests for linguistic variables and fuzzy sets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import FuzzyDefinitionError
from repro.fuzzy.membership import TriangularMF
from repro.fuzzy.variables import FuzzySet, LinguisticVariable


class TestFuzzySet:
    def test_degree_delegates_to_membership(self):
        fuzzy_set = FuzzySet("mid", TriangularMF(0, 5, 10))
        assert fuzzy_set.degree(5) == pytest.approx(1.0)


class TestLinguisticVariable:
    def test_add_and_lookup_terms(self):
        variable = LinguisticVariable("x", (0, 10))
        variable.add_term("low", TriangularMF(0, 0, 5)).add_term("high", TriangularMF(5, 10, 10))
        assert variable.term_names == ("low", "high")
        assert variable.term("low").name == "low"
        with pytest.raises(FuzzyDefinitionError):
            variable.term("missing")
        with pytest.raises(FuzzyDefinitionError):
            variable.add_term("low", TriangularMF(0, 1, 2))

    def test_invalid_universe(self):
        with pytest.raises(FuzzyDefinitionError):
            LinguisticVariable("x", (5, 5))

    def test_fuzzify_returns_all_terms(self):
        variable = LinguisticVariable.with_uniform_terms("x", (0, 10), ("low", "medium", "high"))
        memberships = variable.fuzzify(5.0)
        assert set(memberships) == {"low", "medium", "high"}
        assert memberships["medium"] == pytest.approx(1.0)
        assert all(0.0 <= degree <= 1.0 for degree in memberships.values())

    def test_fuzzify_requires_terms(self):
        with pytest.raises(FuzzyDefinitionError):
            LinguisticVariable("x", (0, 1)).fuzzify(0.5)

    def test_grid(self):
        variable = LinguisticVariable("x", (0, 10))
        grid = variable.grid(11)
        assert grid[0] == 0 and grid[-1] == 10 and len(grid) == 11
        with pytest.raises(FuzzyDefinitionError):
            variable.grid(2)


class TestUniformTerms:
    def test_extremes_are_shoulders(self):
        variable = LinguisticVariable.with_uniform_terms("x", (0, 10), ("low", "medium", "high"))
        assert variable.term("low").degree(0) == pytest.approx(1.0)
        assert variable.term("high").degree(10) == pytest.approx(1.0)

    def test_every_point_has_some_membership(self):
        variable = LinguisticVariable.with_uniform_terms("x", (0, 10), ("a", "b", "c", "d"))
        for value in np.linspace(0, 10, 50):
            assert max(variable.fuzzify(float(value)).values()) > 0.0

    def test_requires_two_terms(self):
        with pytest.raises(FuzzyDefinitionError):
            LinguisticVariable.with_uniform_terms("x", (0, 1), ("only",))


class TestFromValues:
    def test_universe_covers_data_with_padding(self, rng):
        data = rng.normal(50, 10, size=200)
        variable = LinguisticVariable.from_values("x", data, ("low", "medium", "high"))
        low, high = variable.universe
        assert low <= data.min()
        assert high >= data.max()

    def test_median_value_is_mostly_medium(self, rng):
        data = rng.normal(0, 1, size=500)
        variable = LinguisticVariable.from_values("x", data, ("low", "medium", "high"))
        memberships = variable.fuzzify(float(np.median(data)))
        assert memberships["medium"] == max(memberships.values())

    def test_handles_constant_data(self):
        variable = LinguisticVariable.from_values("x", [5.0, 5.0, 5.0], ("low", "high"))
        assert variable.universe[0] < variable.universe[1]

    def test_nan_values_ignored(self):
        variable = LinguisticVariable.from_values(
            "x", [1.0, float("nan"), 2.0, 3.0], ("low", "high")
        )
        assert variable.universe[0] <= 1.0

    def test_needs_two_finite_values(self):
        with pytest.raises(FuzzyDefinitionError):
            LinguisticVariable.from_values("x", [float("nan")], ("low", "high"))


class TestFromRanges:
    def test_paper_income_classes(self):
        variable = LinguisticVariable.from_ranges(
            "income",
            {
                "low": (40_000, 60_000),
                "medium": (60_000, 80_000),
                "high": (80_000, 100_000),
            },
        )
        assert variable.universe == (40_000, 100_000)
        assert variable.term("low").degree(50_000) == pytest.approx(1.0)
        assert variable.term("high").degree(95_000) == pytest.approx(1.0)
        # overlap: the boundary value belongs partially to both neighbours
        assert variable.term("medium").degree(61_000) > 0.0

    def test_empty_and_invalid_ranges(self):
        with pytest.raises(FuzzyDefinitionError):
            LinguisticVariable.from_ranges("x", {})
        with pytest.raises(FuzzyDefinitionError):
            LinguisticVariable.from_ranges("x", {"bad": (5, 5)})
