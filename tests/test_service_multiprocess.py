"""Multi-process serving: SO_REUSEPORT workers sharing one spill directory.

These tests spawn a real sibling worker process (spawn start method), so
they exercise the full path the CLI's ``--workers`` flag uses: the kernel
load-balances fresh connections across processes, the spill directory (and
the dataset store beneath it) is the shared cache tier, and each process
keeps its own in-memory single-flight tier.
"""

from __future__ import annotations

import json
import socket
import time
import urllib.request

import pytest

from repro.dataset.io import render_csv

pytestmark = pytest.mark.skipif(
    not hasattr(socket, "SO_REUSEPORT"),
    reason="multi-process serving requires SO_REUSEPORT",
)

#: Generous budget for reaching both workers: the spawned sibling needs a
#: couple of seconds to import and bind, and SO_REUSEPORT balancing is
#: probabilistic per connection.
_DEADLINE_SECONDS = 120


def _fetch(base: str, path: str, document: dict | None = None):
    """One request on a fresh connection -> (headers, body bytes).

    A fresh connection per call matters: SO_REUSEPORT balances at accept
    time, so keep-alive would pin every request to one worker.
    """
    if document is None:
        request = urllib.request.Request(base + path)
    else:
        request = urllib.request.Request(
            base + path,
            data=json.dumps(document).encode("utf-8"),
            headers={"Content-Type": "application/json", "Connection": "close"},
            method="POST",
        )
    with urllib.request.urlopen(request, timeout=60) as response:
        return dict(response.headers), response.read()


@pytest.fixture()
def cluster(tmp_path, faculty_population):
    """A two-worker server over a shared spill dir, dataset preregistered."""
    from repro.service import AnonymizationService, ServiceConfig, build_server

    config = ServiceConfig(
        cache_capacity=32, cache_dir=str(tmp_path), job_workers=1
    )
    service = AnonymizationService.from_config(config)
    server = build_server(
        port=0, service=service, workers=2, config=config
    ).serve_in_background()
    base = f"http://127.0.0.1:{server.port}"
    # Register through the parent; the sibling adopts the dataset from the
    # shared store on its first miss.
    upload = urllib.request.Request(
        base + "/datasets",
        data=render_csv(faculty_population.private).encode("utf-8"),
        headers={"Content-Type": "text/csv"},
        method="POST",
    )
    with urllib.request.urlopen(upload, timeout=60) as response:
        assert response.status == 201
    yield server, base, faculty_population.private.fingerprint
    server.close()


class TestTwoWorkerCluster:
    def test_workers_share_the_spill_dir_and_serve_identical_bytes(self, cluster):
        server, base, fingerprint = cluster
        assert len(server.worker_pids()) == 2

        bodies_by_pid: dict[str, bytes] = {}
        deadline = time.monotonic() + _DEADLINE_SECONDS
        while len(bodies_by_pid) < 2:
            assert time.monotonic() < deadline, (
                f"only reached workers {sorted(bodies_by_pid)} before the deadline"
            )
            headers, body = _fetch(base, "/release", {"dataset": fingerprint, "k": 3})
            assert headers["Content-Type"].startswith("text/csv")
            pid = headers["X-Repro-Worker"]
            previous = bodies_by_pid.setdefault(pid, body)
            assert previous == body, "a worker must be deterministic with itself"

        distinct = set(bodies_by_pid.values())
        assert len(distinct) == 1, "workers must serve byte-identical releases"
        assert next(iter(distinct)).startswith(b"name,")

        # Every process computed each cache entry at most once: a /release
        # produces two entries (artifact + CSV bytes), and the second worker
        # should adopt the first worker's spill instead of recomputing.
        stats_by_pid: dict[int, dict] = {}
        deadline = time.monotonic() + _DEADLINE_SECONDS
        while len(stats_by_pid) < 2:
            assert time.monotonic() < deadline, "never saw /stats from both workers"
            _, body = _fetch(base, "/stats")
            stats = json.loads(body)
            stats_by_pid[stats["pid"]] = stats
        total_computations = 0
        for pid, stats in stats_by_pid.items():
            computations = stats["cache"]["computations"]
            assert computations <= 2, (
                f"worker {pid} recomputed a cached artifact: {stats['cache']}"
            )
            total_computations += computations
        assert total_computations >= 2, "someone must have computed the release"
        # The sibling that did not compute served the release from the shared
        # spill, so across the cluster the work happened (at most) once per
        # process — and in this serial client pattern, once overall.
        assert total_computations == 2

    def test_requires_a_shared_cache_dir(self):
        from repro.exceptions import ServiceError
        from repro.service import AnonymizationService, ServiceConfig, build_server

        service = AnonymizationService()
        try:
            with pytest.raises(ServiceError, match="cache_dir"):
                build_server(port=0, service=service, workers=2)
            with pytest.raises(ServiceError, match="cache_dir"):
                build_server(
                    port=0,
                    service=service,
                    workers=2,
                    config=ServiceConfig(cache_dir=None),
                )
        finally:
            service.close()
