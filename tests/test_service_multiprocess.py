"""Multi-process serving: SO_REUSEPORT workers sharing one spill directory.

These tests spawn a real sibling worker process (spawn start method), so
they exercise the full path the CLI's ``--workers`` flag uses: the kernel
load-balances fresh connections across processes, the spill directory (and
the dataset store beneath it) is the shared cache tier, each process keeps
its own in-memory single-flight tier, and the shared job store makes every
FRED job pollable from every worker — including after its owner dies.
"""

from __future__ import annotations

import http.client
import json
import os
import signal
import socket
import time
import urllib.error
import urllib.request

import pytest

from repro.dataset.io import render_csv, render_jsonl

pytestmark = pytest.mark.skipif(
    not hasattr(socket, "SO_REUSEPORT"),
    reason="multi-process serving requires SO_REUSEPORT",
)

#: Generous budget for reaching both workers: the spawned sibling needs a
#: couple of seconds to import and bind, and SO_REUSEPORT balancing is
#: probabilistic per connection.
_DEADLINE_SECONDS = 120


def _fetch(base: str, path: str, document: dict | None = None):
    """One request on a fresh connection -> (headers, body bytes).

    A fresh connection per call matters: SO_REUSEPORT balances at accept
    time, so keep-alive would pin every request to one worker.
    """
    if document is None:
        request = urllib.request.Request(base + path)
    else:
        request = urllib.request.Request(
            base + path,
            data=json.dumps(document).encode("utf-8"),
            headers={"Content-Type": "application/json", "Connection": "close"},
            method="POST",
        )
    with urllib.request.urlopen(request, timeout=60) as response:
        return dict(response.headers), response.read()


def _upload(base: str, payload: bytes, content_type: str) -> str:
    request = urllib.request.Request(
        base + "/datasets",
        data=payload,
        headers={"Content-Type": content_type},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=60) as response:
        assert response.status == 201
        return json.loads(response.read())["fingerprint"]


@pytest.fixture()
def cluster(tmp_path, faculty_population, faculty_auxiliary_table):
    """A two-worker server over a shared spill dir, datasets preregistered.

    Heartbeats are fast (stale after 3s) so the kill-the-owner test
    converges quickly; the happy paths never wait on them.
    """
    from repro.service import AnonymizationService, ServiceConfig, build_server

    config = ServiceConfig(
        cache_capacity=32,
        cache_dir=str(tmp_path),
        job_workers=1,
        job_heartbeat_seconds=0.5,
        job_stale_after_seconds=3.0,
    )
    service = AnonymizationService.from_config(config)
    server = build_server(
        port=0, service=service, workers=2, config=config
    ).serve_in_background()
    base = f"http://127.0.0.1:{server.port}"
    # Register through the parent; the sibling adopts the datasets from the
    # shared store on its first miss.
    private = _upload(base, render_csv(faculty_population.private).encode(), "text/csv")
    auxiliary = _upload(
        base, render_jsonl(faculty_auxiliary_table).encode(), "application/jsonl"
    )
    yield server, base, private, auxiliary
    server.close()


class TestTwoWorkerCluster:
    def test_workers_share_the_spill_dir_and_serve_identical_bytes(self, cluster):
        server, base, fingerprint, _ = cluster
        assert len(server.worker_pids()) == 2

        bodies_by_pid: dict[str, bytes] = {}
        deadline = time.monotonic() + _DEADLINE_SECONDS
        while len(bodies_by_pid) < 2:
            assert time.monotonic() < deadline, (
                f"only reached workers {sorted(bodies_by_pid)} before the deadline"
            )
            headers, body = _fetch(base, "/release", {"dataset": fingerprint, "k": 3})
            assert headers["Content-Type"].startswith("text/csv")
            pid = headers["X-Repro-Worker"]
            previous = bodies_by_pid.setdefault(pid, body)
            assert previous == body, "a worker must be deterministic with itself"

        distinct = set(bodies_by_pid.values())
        assert len(distinct) == 1, "workers must serve byte-identical releases"
        assert next(iter(distinct)).startswith(b"name,")

        # Every process computed each cache entry at most once: a /release
        # produces two entries (artifact + CSV bytes), and the second worker
        # should adopt the first worker's spill instead of recomputing.
        stats_by_pid: dict[int, dict] = {}
        deadline = time.monotonic() + _DEADLINE_SECONDS
        while len(stats_by_pid) < 2:
            assert time.monotonic() < deadline, "never saw /stats from both workers"
            _, body = _fetch(base, "/stats")
            stats = json.loads(body)
            stats_by_pid[stats["pid"]] = stats
        total_computations = 0
        for pid, stats in stats_by_pid.items():
            computations = stats["cache"]["computations"]
            assert computations <= 2, (
                f"worker {pid} recomputed a cached artifact: {stats['cache']}"
            )
            total_computations += computations
        assert total_computations >= 2, "someone must have computed the release"
        # The sibling that did not compute served the release from the shared
        # spill, so across the cluster the work happened (at most) once per
        # process — and in this serial client pattern, once overall.
        assert total_computations == 2

    def test_fred_jobs_are_pollable_from_every_worker(self, cluster):
        """The headline bug: submit on one connection, poll on fresh ones.

        SO_REUSEPORT balances per connection, so the polls land on arbitrary
        workers — before the shared job store, any poll reaching the
        non-owning worker was a 404 even while the job was running.
        """
        server, base, private, auxiliary = cluster
        headers, body = _fetch(
            base,
            "/fred",
            {"dataset": private, "auxiliary": auxiliary, "kmin": 2, "kmax": 3},
        )
        ticket = json.loads(body)
        job = ticket["job"]
        owner_pid = headers["X-Repro-Worker"]
        # Store-backed ids are qualified by the owning worker's pid.
        assert job.startswith(f"job-{owner_pid}-")

        snapshot = None
        served_by: set[str] = set()
        deadline = time.monotonic() + _DEADLINE_SECONDS
        while True:
            assert time.monotonic() < deadline, (
                f"job {job} still {snapshot and snapshot['status']}; "
                f"polls answered by {sorted(served_by)}"
            )
            try:
                headers, body = _fetch(base, f"/jobs/{job}")
            except urllib.error.HTTPError as error:
                pytest.fail(
                    f"poll of {job} got HTTP {error.code} from worker "
                    f"{error.headers.get('X-Repro-Worker')} — every worker "
                    "must see every job"
                )
            served_by.add(headers["X-Repro-Worker"])
            snapshot = json.loads(body)
            # Keep polling past completion until both workers answered at
            # least once: done records stay readable, and a non-owner answer
            # is exactly the cross-worker hit this test exists for.
            if snapshot["status"] in ("done", "failed") and len(served_by) == 2:
                break
            time.sleep(0.05)

        assert snapshot["status"] == "done", snapshot.get("error")
        assert snapshot["result"]["optimal_level"] in (2, 3)
        assert len(served_by) == 2

        # The cluster-wide listing knows the job too, from any worker.
        _, body = _fetch(base, "/jobs")
        listed = {entry["job"] for entry in json.loads(body)["jobs"]}
        assert job in listed

    def test_killing_the_owner_mid_job_converges_to_failed(self, cluster):
        """A dead worker's jobs must fail within the heartbeat timeout.

        The job is pushed onto the *spawned* sibling (retrying submits until
        one lands there), the sibling is SIGKILLed, and polls — now served
        by the surviving worker — must converge to ``failed`` instead of
        reporting ``running`` forever.
        """
        server, base, private, auxiliary = cluster
        parent_pid = str(os.getpid())

        job = None
        deadline = time.monotonic() + _DEADLINE_SECONDS
        attempt = 0
        while job is None:
            assert time.monotonic() < deadline, "never reached the sibling worker"
            # A unique weight per attempt keeps the sweep uncacheable, so the
            # sibling's job cannot be answered instantly from the shared spill.
            attempt += 1
            headers, body = _fetch(
                base,
                "/fred",
                {
                    "dataset": private,
                    "auxiliary": auxiliary,
                    "kmin": 2,
                    "kmax": 3,
                    "protection_weight": 0.5 + attempt / 1000.0,
                },
            )
            if headers["X-Repro-Worker"] != parent_pid:
                job = json.loads(body)["job"]
                owner_pid = int(headers["X-Repro-Worker"])

        os.kill(owner_pid, signal.SIGKILL)

        snapshot = None
        deadline = time.monotonic() + _DEADLINE_SECONDS
        while True:
            assert time.monotonic() < deadline, (
                f"job {job} never converged to failed: {snapshot}"
            )
            try:
                _, body = _fetch(base, f"/jobs/{job}")
            except urllib.error.HTTPError as error:
                pytest.fail(f"poll of {job} got HTTP {error.code}")
            except (urllib.error.URLError, ConnectionError, http.client.HTTPException):
                # A connection routed to the dying worker's socket (refused,
                # reset mid-reply, or truncated); retry on a fresh one, which
                # the survivor will accept.
                time.sleep(0.1)
                continue
            snapshot = json.loads(body)
            if snapshot["status"] in ("done", "failed", "cancelled"):
                break
            time.sleep(0.2)

        assert snapshot["status"] == "failed"
        assert "stopped heartbeating" in snapshot["error"]

    def test_requires_a_shared_cache_dir(self):
        from repro.exceptions import ServiceError
        from repro.service import AnonymizationService, ServiceConfig, build_server

        service = AnonymizationService()
        try:
            with pytest.raises(ServiceError, match="cache_dir"):
                build_server(port=0, service=service, workers=2)
            with pytest.raises(ServiceError, match="cache_dir"):
                build_server(
                    port=0,
                    service=service,
                    workers=2,
                    config=ServiceConfig(cache_dir=None),
                )
        finally:
            service.close()


def _post_raw(base: str, path: str, payload: bytes, content_type: str):
    """One raw-body POST on a fresh connection -> (headers, body bytes)."""
    request = urllib.request.Request(
        base + path,
        data=payload,
        headers={"Content-Type": content_type, "Connection": "close"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=60) as response:
        return dict(response.headers), response.read()


class TestAppendAcrossWorkers:
    def test_append_supersedes_and_invalidates_across_workers(
        self, cluster, faculty_population
    ):
        """The acceptance gate: after ``/append`` lands on one worker, *no*
        worker may serve a stale release — neither from its private memory
        tier nor from the shared spill tier — for the appended fingerprint.
        """
        server, base, fingerprint, _ = cluster

        # Warm the release on BOTH workers, so each holds the old artifact in
        # its private memory tier and the spill tier holds it too.
        warmed: set[str] = set()
        deadline = time.monotonic() + _DEADLINE_SECONDS
        while len(warmed) < 2:
            assert time.monotonic() < deadline, "never warmed both workers"
            headers, _ = _fetch(base, "/release", {"dataset": fingerprint, "k": 3})
            warmed.add(headers["X-Repro-Worker"])

        delta = faculty_population.private.take([0, 1])
        headers, body = _post_raw(
            base, f"/append/{fingerprint}", render_csv(delta).encode(), "text/csv"
        )
        info = json.loads(body)
        appended = faculty_population.private.append(delta)
        assert info["superseded"] == fingerprint
        assert info["appended_rows"] == 2
        assert info["fingerprint"] == appended.fingerprint
        # The appending worker purged at least the artifact + CSV twins.
        assert info["invalidated_entries"] >= 2

        # Every worker must now refuse the old fingerprint (naming the
        # successor) and serve the appended dataset — byte-identically.
        refused: set[str] = set()
        bodies_by_pid: dict[str, bytes] = {}
        deadline = time.monotonic() + _DEADLINE_SECONDS
        while len(refused) < 2 or len(bodies_by_pid) < 2:
            assert time.monotonic() < deadline, (
                f"refused by {sorted(refused)}, "
                f"served new release by {sorted(bodies_by_pid)}"
            )
            try:
                headers, _ = _fetch(base, "/release", {"dataset": fingerprint, "k": 3})
                pytest.fail(
                    f"worker {headers['X-Repro-Worker']} served a stale "
                    "release for a superseded fingerprint"
                )
            except urllib.error.HTTPError as error:
                assert error.code == 404
                reply = json.loads(error.read())
                assert info["fingerprint"] in reply["error"]
                refused.add(error.headers["X-Repro-Worker"])
            headers, body = _fetch(
                base, "/release", {"dataset": info["fingerprint"], "k": 3}
            )
            bodies_by_pid.setdefault(headers["X-Repro-Worker"], body)

        assert len(set(bodies_by_pid.values())) == 1, (
            "workers must serve byte-identical post-append releases"
        )
        # The fresh release covers the appended rows.
        row_count = next(iter(bodies_by_pid.values())).count(b"\n") - 2
        assert row_count == appended.num_rows
