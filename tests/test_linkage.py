"""Unit tests for string similarity and name matching."""

from __future__ import annotations

import pytest

from repro.exceptions import LinkageError
from repro.fusion.linkage import (
    NameMatcher,
    jaro_similarity,
    jaro_winkler_similarity,
    levenshtein_distance,
    levenshtein_similarity,
    name_similarity,
    normalize_name,
    token_set_similarity,
)


class TestNormalization:
    def test_case_and_punctuation(self):
        assert normalize_name("  Alice   MILLER ") == "alice miller"
        assert normalize_name("O'Brien, James") == "o brien james"

    def test_titles_stripped(self):
        assert normalize_name("Dr. Alice Miller") == "alice miller"
        assert normalize_name("Prof Alice Miller PhD") == "alice miller"

    def test_empty(self):
        assert normalize_name("...") == ""


class TestLevenshtein:
    @pytest.mark.parametrize(
        "left,right,distance",
        [
            ("", "", 0),
            ("abc", "abc", 0),
            ("abc", "abd", 1),
            ("abc", "ab", 1),
            ("", "abc", 3),
            ("kitten", "sitting", 3),
            ("flaw", "lawn", 2),
        ],
    )
    def test_distances(self, left, right, distance):
        assert levenshtein_distance(left, right) == distance
        assert levenshtein_distance(right, left) == distance

    def test_similarity_range(self):
        assert levenshtein_similarity("abc", "abc") == 1.0
        assert levenshtein_similarity("abc", "xyz") == 0.0
        assert levenshtein_similarity("", "") == 1.0
        assert 0.0 < levenshtein_similarity("abcd", "abce") < 1.0


class TestJaro:
    def test_identical_and_disjoint(self):
        assert jaro_similarity("martha", "martha") == 1.0
        assert jaro_similarity("abc", "xyz") == 0.0
        assert jaro_similarity("", "abc") == 0.0

    def test_known_value(self):
        assert jaro_similarity("martha", "marhta") == pytest.approx(0.9444, abs=1e-3)

    def test_winkler_boosts_common_prefix(self):
        plain = jaro_similarity("dixon", "dickson")
        boosted = jaro_winkler_similarity("dixon", "dickson")
        assert boosted >= plain

    def test_winkler_prefix_scale_validation(self):
        with pytest.raises(LinkageError):
            jaro_winkler_similarity("a", "b", prefix_scale=0.5)


class TestTokenSet:
    def test_reordered_tokens_match(self):
        assert token_set_similarity("alice miller", "miller alice") == 1.0

    def test_partial_overlap(self):
        assert token_set_similarity("alice miller", "alice chen") == pytest.approx(1 / 3)

    def test_empty(self):
        assert token_set_similarity("", "") == 1.0
        assert token_set_similarity("alice", "") == 0.0


class TestCompositeSimilarity:
    def test_exact_match(self):
        assert name_similarity("Alice Miller", "alice miller") == 1.0

    def test_reordered_with_title(self):
        assert name_similarity("Miller, Alice", "Dr. Alice Miller") == 1.0

    def test_initials_still_similar(self):
        assert name_similarity("Alice Miller", "A. Miller") > 0.6

    def test_unrelated_names_score_low(self):
        assert name_similarity("Alice Miller", "Robert Chen") < 0.6

    def test_empty_scores_zero(self):
        assert name_similarity("...", "Alice") == 0.0


class TestNameMatcher:
    @pytest.fixture()
    def matcher(self):
        return NameMatcher(
            ["Alice Miller", "Robert Chen", "Christine Olsen", "A. Patel"], threshold=0.8
        )

    def test_exact_query(self, matcher):
        best = matcher.best_match("Alice Miller")
        assert best is not None
        assert best.candidate == "Alice Miller"
        assert best.score == 1.0

    def test_variant_query(self, matcher):
        best = matcher.best_match("Miller, Alice")
        assert best is not None
        assert best.candidate == "Alice Miller"

    def test_unknown_query(self, matcher):
        assert matcher.best_match("Zachary Quinto") is None
        assert matcher.candidates("Zachary Quinto") == []

    def test_empty_query(self, matcher):
        assert matcher.best_match("!!!") is None

    def test_candidates_sorted_by_score(self, matcher):
        candidates = matcher.candidates("Alice Millar")
        scores = [c.score for c in candidates]
        assert scores == sorted(scores, reverse=True)

    def test_blocking_matches_full_scan(self):
        corpus = ["Alice Miller", "Robert Chen", "Christine Olsen", "Albert Chen"]
        blocked = NameMatcher(corpus, threshold=0.75, use_blocking=True)
        full = NameMatcher(corpus, threshold=0.75, use_blocking=False)
        for query in ("Alice Miller", "Chen, Robert", "C. Olsen"):
            assert {c.candidate for c in blocked.candidates(query)} == {
                c.candidate for c in full.candidates(query)
            }

    def test_threshold_validation(self):
        with pytest.raises(LinkageError):
            NameMatcher(["a"], threshold=0.0)
        with pytest.raises(LinkageError):
            NameMatcher(["a"], threshold=1.5)
