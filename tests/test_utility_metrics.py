"""Unit tests for the discernibility utility and related metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.anonymize.base import EquivalenceClass, build_release
from repro.anonymize.mdav import MDAVAnonymizer
from repro.exceptions import MetricError
from repro.metrics.utility import (
    average_class_size,
    discernibility_cost,
    discernibility_utility,
    generalized_information_loss,
    per_record_costs,
    per_record_utility,
    utility_of_result,
)


class TestDiscernibility:
    def test_cost_formula_all_classes_above_k(self):
        # two classes of size 3: C_DM = 9 + 9 = 18
        assert discernibility_cost([3, 3], total_records=6, k=3) == 18.0

    def test_cost_penalizes_undersized_classes(self):
        # class of size 2 with k=3 costs |D| * |E| = 6 * 2 = 12
        assert discernibility_cost([2, 4], total_records=6, k=3) == 12.0 + 16.0

    def test_utility_is_inverse_cost(self):
        assert discernibility_utility([3, 3], 6, 3) == pytest.approx(1.0 / 18.0)

    def test_best_case_is_singletons_at_k1(self):
        # k=1: every record its own class -> cost = n, the minimum possible
        assert discernibility_cost([1] * 10, 10, 1) == 10.0

    def test_worst_case_is_one_big_class(self):
        assert discernibility_cost([10], 10, 2) == 100.0

    def test_validation(self):
        with pytest.raises(MetricError):
            discernibility_cost([3, 3], total_records=5, k=3)
        with pytest.raises(MetricError):
            discernibility_cost([3, 0], total_records=3, k=1)
        with pytest.raises(MetricError):
            discernibility_cost([3], total_records=3, k=0)
        with pytest.raises(MetricError):
            discernibility_cost([3], total_records=0, k=1)

    def test_utility_decreases_with_k_on_real_partitions(self, faculty_population):
        utilities = []
        for k in (2, 4, 8):
            result = MDAVAnonymizer().anonymize(faculty_population.private, k)
            utilities.append(utility_of_result(result))
        assert utilities[0] > utilities[1] > utilities[2]


class TestPerRecordCosts:
    def test_each_record_inherits_its_class_cost(self):
        classes = [EquivalenceClass((0, 1)), EquivalenceClass((2, 3, 4))]
        costs = per_record_costs(classes, total_records=5, k=2)
        assert costs.tolist() == [4.0, 4.0, 9.0, 9.0, 9.0]
        utility = per_record_utility(classes, total_records=5, k=2)
        assert np.allclose(utility, 1.0 / costs)

    def test_uncovered_records_rejected(self):
        with pytest.raises(MetricError):
            per_record_costs([EquivalenceClass((0, 1))], total_records=3, k=2)

    def test_out_of_range_index_rejected(self):
        with pytest.raises(MetricError):
            per_record_costs([EquivalenceClass((0, 5))], total_records=2, k=1)


class TestOtherUtilityMetrics:
    def test_average_class_size(self):
        assert average_class_size([2, 4, 6]) == 4.0
        with pytest.raises(MetricError):
            average_class_size([])

    def test_generalized_information_loss_bounds(self, simple_table):
        release_exact = simple_table.release_view()
        assert generalized_information_loss(simple_table, release_exact) == 0.0
        classes = [EquivalenceClass(tuple(range(6)))]
        fully_generalized = build_release(simple_table, classes, k=6)
        loss = generalized_information_loss(simple_table, fully_generalized)
        assert loss == pytest.approx(1.0)

    def test_generalized_information_loss_monotone_in_k(self, faculty_population):
        losses = []
        for k in (2, 5, 10):
            release = MDAVAnonymizer().anonymize(faculty_population.private, k).release
            losses.append(generalized_information_loss(faculty_population.private, release))
        assert losses[0] < losses[-1]

    def test_generalized_information_loss_validation(self, simple_table):
        with pytest.raises(MetricError):
            generalized_information_loss(simple_table, simple_table.take([0, 1]))
