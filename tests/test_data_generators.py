"""Unit tests for the synthetic dataset generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.census import CensusConfig, generate_census
from repro.data.customers import (
    CustomerConfig,
    adversary_auxiliary_example,
    enterprise_customers_example,
    generate_customers,
    sensitive_medical_example,
)
from repro.data.faculty import FacultyConfig, generate_faculty
from repro.data.names import generate_names
from repro.data.webgen import corpus_for_census, corpus_for_customers
from repro.exceptions import ReproError
from repro.metrics.privacy import rank_correlation


class TestNames:
    def test_unique_and_deterministic(self):
        names = generate_names(200, seed=3)
        assert len(names) == len(set(names)) == 200
        assert names == generate_names(200, seed=3)
        assert names != generate_names(200, seed=4)

    def test_two_tokens(self):
        for name in generate_names(50, seed=1):
            assert len(name.split()) == 2

    def test_capacity_and_validation(self):
        with pytest.raises(ReproError):
            generate_names(2_000_000)  # beyond the double-initial-extended space
        with pytest.raises(ReproError):
            generate_names(-1)
        assert generate_names(0) == []

    def test_double_initial_extension_stays_unique_and_prefix_stable(self):
        # Beyond the single-middle-initial space (67,500 for the default name
        # pools) double initials take over; earlier names never change.
        names = generate_names(70_000, seed=0)
        assert len(set(names)) == 70_000
        assert names[:67_500] == generate_names(67_500, seed=0)
        assert all(len(name.split()) == 4 for name in names[67_500:])

    def test_extended_capacity_stays_unique_and_compatible(self):
        # Counts beyond the plain First-Last space extend with middle
        # initials; the base prefix is unchanged for a given seed.
        names = generate_names(10_000, seed=3)
        assert len(set(names)) == 10_000
        assert names[:2_500] == generate_names(2_500, seed=3)
        assert all(len(name.split()) == 3 for name in names[2_500:])


class TestPaperExamples:
    def test_table1_roles(self):
        table = sensitive_medical_example()
        assert table.num_rows == 4
        assert set(table.schema.identifiers) == {"name", "ssn"}
        assert table.schema.sensitive_attributes == ("condition",)

    def test_table2_values_match_paper(self):
        table = enterprise_customers_example()
        by_name = {row["name"]: row for row in table.rows()}
        assert by_name["Alice"]["income"] == 91_250
        assert by_name["Robert"]["valuation"] == 9
        assert by_name["Christine"]["invst_vol"] == 4

    def test_table4_values_match_paper(self):
        table = adversary_auxiliary_example()
        by_name = {row["name"]: row for row in table.rows()}
        assert by_name["Robert"]["property_holdings"] == 5430
        assert by_name["Alice"]["employment"] == "CEO, Deutsche Bank"


class TestFacultyGenerator:
    def test_shape_and_schema(self, faculty_population):
        private = faculty_population.private
        assert private.num_rows == 40
        assert private.schema.sensitive_attribute == "salary"
        assert set(private.schema.quasi_identifiers) == {
            "research_score", "teaching_score", "service_score", "years_of_service",
        }
        assert private.schema.identifiers == ("name",)

    def test_value_ranges(self, faculty_population):
        private = faculty_population.private
        for column in ("research_score", "teaching_score", "service_score"):
            values = private.numeric_column(column)
            assert values.min() >= 1.0 and values.max() <= 10.0
        salary = private.sensitive_vector()
        assert salary.min() > 30_000 and salary.max() < 300_000
        low, high = faculty_population.assumed_salary_range
        assert low <= salary.min() and salary.max() <= high

    def test_reviews_predict_salary(self, faculty_population):
        private = faculty_population.private
        mean_review = (
            private.numeric_column("research_score")
            + private.numeric_column("teaching_score")
            + private.numeric_column("service_score")
        ) / 3.0
        assert rank_correlation(mean_review, private.sensitive_vector()) > 0.2

    def test_profiles_align_with_table(self, faculty_population):
        names = [str(n) for n in faculty_population.private.identifier_column()]
        assert [p["name"] for p in faculty_population.profiles] == names
        for profile in faculty_population.profiles:
            assert set(faculty_population.auxiliary_attributes) <= set(profile)

    def test_web_covariates_track_salary(self, faculty_population):
        salary = faculty_population.private.sensitive_vector()
        property_values = np.array(
            [p["property_holdings"] for p in faculty_population.profiles]
        )
        assert rank_correlation(salary, property_values) > 0.4

    def test_deterministic(self):
        first = generate_faculty(FacultyConfig(count=20, seed=9))
        second = generate_faculty(FacultyConfig(count=20, seed=9))
        assert first.private == second.private

    def test_config_validation(self):
        with pytest.raises(ReproError):
            FacultyConfig(count=2)
        with pytest.raises(ReproError):
            FacultyConfig(web_signal_quality=1.5)
        with pytest.raises(ReproError):
            FacultyConfig(salary_noise=-0.1)


class TestCustomerGenerator:
    def test_shape_and_correlations(self):
        population = generate_customers(CustomerConfig(count=120, seed=2))
        private = population.private
        assert private.num_rows == 120
        income = private.sensitive_vector()
        low, high = population.config.income_range
        assert income.min() >= low and income.max() <= high
        assert rank_correlation(private.numeric_column("valuation"), income) > 0.4
        assert len(population.profiles) == 120

    def test_config_validation(self):
        with pytest.raises(ReproError):
            CustomerConfig(count=1)
        with pytest.raises(ReproError):
            CustomerConfig(income_range=(10.0, 5.0))
        with pytest.raises(ReproError):
            CustomerConfig(web_signal_quality=-0.1)


class TestCensusGenerator:
    def test_shape_and_correlations(self):
        population = generate_census(CensusConfig(count=150, seed=4))
        private = population.private
        assert private.num_rows == 150
        assert private.schema.sensitive_attribute == "income"
        income = private.sensitive_vector()
        education = private.numeric_column("education_years")
        assert rank_correlation(education, income) > 0.2
        low, high = population.assumed_income_range
        assert low <= income.min() and income.max() <= high

    def test_config_validation(self):
        with pytest.raises(ReproError):
            CensusConfig(count=2)


class TestCorpusBuilders:
    def test_faculty_corpus(self, faculty_population, faculty_corpus):
        names = [str(n) for n in faculty_population.private.identifier_column()]
        assert faculty_corpus.coverage_of(names) > 0.7
        assert set(faculty_corpus.attribute_names) == set(
            faculty_population.auxiliary_attributes
        )

    def test_customer_corpus(self):
        population = generate_customers(CustomerConfig(count=60, seed=2))
        corpus = corpus_for_customers(population)
        names = [str(n) for n in population.private.identifier_column()]
        assert 0.4 < corpus.coverage_of(names) <= 1.0

    def test_census_corpus(self):
        population = generate_census(CensusConfig(count=60, seed=4))
        corpus = corpus_for_census(population)
        assert corpus.size > 0
        assert "home_value" in corpus.attribute_names
