"""Unit tests for auxiliary sources and the simulated web corpus."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dataset.io import write_csv
from repro.exceptions import AuxiliarySourceError
from repro.fusion.auxiliary import AuxiliaryRecord, TableAuxiliarySource, auxiliary_table
from repro.fusion.web import SimulatedWebCorpus, WebPage, name_variant


PROFILES = [
    {"name": "Alice Miller", "property_holdings": 3_560.0, "employment_seniority": 20.0,
     "position": "CEO"},
    {"name": "Robert Chen", "property_holdings": 5_430.0, "employment_seniority": 25.0,
     "position": "CEO"},
    {"name": "Christine Olsen", "property_holdings": 720.0, "employment_seniority": 3.0,
     "position": "Assistant"},
    {"name": "Bob Turner", "property_holdings": 1_200.0, "employment_seniority": 10.0,
     "position": "Manager"},
]
ATTRIBUTES = ("property_holdings", "employment_seniority")


class TestAuxiliaryRecord:
    def test_numeric_attribute(self):
        record = AuxiliaryRecord("x", {"a": 5, "b": "text"})
        assert record.numeric_attribute("a") == 5.0
        assert record.numeric_attribute("b") is None
        assert record.numeric_attribute("missing") is None

    def test_confidence_validation(self):
        with pytest.raises(AuxiliarySourceError):
            AuxiliaryRecord("x", {}, confidence=1.5)


class TestAuxiliaryTable:
    def test_builds_paper_table_iv_shape(self):
        records = [
            AuxiliaryRecord("Alice", {"property_holdings": 3560.0}),
            AuxiliaryRecord("Bob", {"property_holdings": 1200.0}),
        ]
        table = auxiliary_table(records, ["property_holdings"])
        assert table.num_rows == 2
        assert table.schema.identifiers == ("name",)
        assert table.column("property_holdings") == [3560.0, 1200.0]

    def test_missing_attributes_are_none(self):
        records = [AuxiliaryRecord("Alice", {})]
        table = auxiliary_table(records, ["property_holdings"])
        assert table.column("property_holdings") == [None]


class TestTableAuxiliarySource:
    def test_lookup_by_exact_name(self, tmp_path):
        records = [AuxiliaryRecord(p["name"], {a: p[a] for a in ATTRIBUTES}) for p in PROFILES]
        table = auxiliary_table(records, list(ATTRIBUTES))
        source = TableAuxiliarySource(table=table, name_column="name")
        hit = source.lookup("Alice Miller")
        assert hit is not None
        assert hit.numeric_attribute("property_holdings") == 3_560.0
        assert source.lookup("Nobody") is None
        # attribute names inferred from numeric columns
        assert set(source.attribute_names) == set(ATTRIBUTES)
        # round-trips through CSV
        path = write_csv(table, tmp_path / "aux.csv")
        assert path.exists()

    def test_unknown_name_column_rejected(self):
        records = [AuxiliaryRecord("Alice", {"property_holdings": 1.0})]
        table = auxiliary_table(records, ["property_holdings"])
        with pytest.raises(AuxiliarySourceError):
            TableAuxiliarySource(table=table, name_column="missing")


class TestNameVariant:
    def test_variant_preserves_last_name(self):
        rng = np.random.default_rng(3)
        for _ in range(20):
            variant = name_variant("Alice Miller", rng)
            assert "Miller" in variant

    def test_single_token_unchanged(self):
        rng = np.random.default_rng(3)
        assert name_variant("Cher", rng) == "Cher"


class TestSimulatedWebCorpus:
    @pytest.fixture()
    def corpus(self) -> SimulatedWebCorpus:
        return SimulatedWebCorpus.from_profiles(
            profiles=PROFILES,
            attribute_names=ATTRIBUTES,
            noise_level=0.0,
            coverage=1.0,
            name_variant_probability=0.0,
            seed=7,
        )

    def test_one_page_per_profile(self, corpus):
        assert corpus.size == len(PROFILES)

    def test_search_returns_exact_facts_without_noise(self, corpus):
        records = corpus.search("Alice Miller")
        assert records
        assert records[0].numeric_attribute("property_holdings") == pytest.approx(3_560.0)
        assert records[0].confidence == 1.0

    def test_search_unknown_person(self, corpus):
        assert corpus.search("Nobody Anywhere") == []

    def test_coverage_of(self, corpus):
        names = [p["name"] for p in PROFILES]
        assert corpus.coverage_of(names) == 1.0
        assert corpus.coverage_of([]) == 0.0

    def test_noise_perturbs_facts(self):
        noisy = SimulatedWebCorpus.from_profiles(
            PROFILES, ATTRIBUTES, noise_level=0.3, coverage=1.0,
            name_variant_probability=0.0, seed=7,
        )
        values = [
            noisy.search(p["name"])[0].numeric_attribute("property_holdings")
            for p in PROFILES
        ]
        exact = [p["property_holdings"] for p in PROFILES]
        assert values != exact

    def test_partial_coverage_drops_pages(self):
        sparse = SimulatedWebCorpus.from_profiles(
            PROFILES * 10, ATTRIBUTES, coverage=0.3, seed=11
        )
        assert sparse.size < len(PROFILES) * 10

    def test_name_variants_still_link(self):
        varied = SimulatedWebCorpus.from_profiles(
            PROFILES, ATTRIBUTES, noise_level=0.0, coverage=1.0,
            name_variant_probability=1.0, seed=5,
        )
        found = sum(1 for p in PROFILES if varied.search(p["name"]))
        assert found >= len(PROFILES) - 1  # variants occasionally too mangled

    def test_distractors_do_not_steal_matches(self):
        with_distractors = SimulatedWebCorpus.from_profiles(
            PROFILES, ATTRIBUTES, noise_level=0.0, coverage=1.0,
            name_variant_probability=0.0, distractor_count=30, seed=3,
        )
        best = with_distractors.search("Alice Miller")[0]
        assert best.numeric_attribute("property_holdings") == pytest.approx(3_560.0)

    def test_page_rendering(self, corpus):
        page = corpus.pages[0]
        assert isinstance(page, WebPage)
        text = page.render()
        assert "<title>" in text
        assert "property holdings" in text

    def test_validation_errors(self):
        with pytest.raises(AuxiliarySourceError):
            SimulatedWebCorpus.from_profiles([], ATTRIBUTES)
        with pytest.raises(AuxiliarySourceError):
            SimulatedWebCorpus.from_profiles(PROFILES, ATTRIBUTES, coverage=2.0)
        with pytest.raises(AuxiliarySourceError):
            SimulatedWebCorpus.from_profiles(PROFILES, ATTRIBUTES, noise_level=-1.0)
        with pytest.raises(AuxiliarySourceError):
            SimulatedWebCorpus.from_profiles([{"nom": "x"}], ATTRIBUTES)

    def test_deterministic_given_seed(self):
        first = SimulatedWebCorpus.from_profiles(PROFILES, ATTRIBUTES, seed=9)
        second = SimulatedWebCorpus.from_profiles(PROFILES, ATTRIBUTES, seed=9)
        assert [p.displayed_name for p in first.pages] == [p.displayed_name for p in second.pages]
        assert [dict(p.facts) for p in first.pages] == [dict(p.facts) for p in second.pages]
