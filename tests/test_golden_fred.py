"""Golden regression tests pinning the paper pipeline numerically.

The batch-fusion rewrite (vectorized membership evaluation, the
``(N, n_rules)`` firing matrix, blockwise defuzzification, the parallel
sweep) must change *nothing* about what FRED computes.  These tests snapshot
the full sweep on the seeded faculty-salary scenario — chosen ``k*``,
per-level ``H_k`` scores, protection before/after fusion and utility — as
hard-coded constants, so any numerical drift in a future rewrite fails loudly
instead of silently shifting the reproduced figures.

The parallel-sweep tests assert the deterministic merge: thread- and
process-pool sweeps return outcomes bit-identical to the serial loop, and the
utility stopping rule truncates the merged sequence at the same level.
"""

from __future__ import annotations

import pytest

from repro.core.fred import FREDAnonymizer, FREDConfig, FREDResult
from repro.exceptions import FREDConfigurationError, InfeasibleAnonymizationError
from repro.experiments.figures import default_setup, derive_thresholds, run_sweep

# Snapshot of the seeded scenario: default_setup(count=40, seed=5,
# levels=(2, 3, 4, 6, 8)) with the default minmax 0.5/0.5 objective.
# Re-baselined when SimulatedWebCorpus.from_profiles switched to one
# vectorized up-front RNG pass (the same seed now yields a different — but
# equally deterministic — corpus, so the attack-side numbers shifted; the
# release-side protection_before/utility values are corpus-independent and
# unchanged, and the chosen k* is the same).
GOLDEN_LEVELS = (2, 3, 4, 6, 8)
GOLDEN_OPTIMAL_LEVEL = 2
GOLDEN_THRESHOLDS = (365460514.83677566, 0.0035714285714285713)
GOLDEN = {
    # level: (protection_before, protection_after, utility, H_k, feasible)
    2: (504918862.975125, 366033013.3112835, 0.0125, 0.594156583538417, True),
    3: (504918872.6788125, 365460514.83677566, 0.008064516129032258, 0.34259088190737785, True),
    4: (504918884.4165, 370712412.09937036, 0.00625, 0.38348154615307045, True),
    6: (504918886.899125, 362440951.3191057, 0.0035714285714285713, 0.02380952380952379, False),
    8: (504918901.49825, 381515889.34886247, 0.003125, 0.5, False),
}
REL = 1e-9


def _make_fred(parallelism: int = 1, executor: str = "thread", **overrides):
    setup = default_setup(count=40, seed=5, levels=GOLDEN_LEVELS)
    config = dict(
        levels=setup.levels,
        protection_threshold=GOLDEN_THRESHOLDS[0],
        utility_threshold=GOLDEN_THRESHOLDS[1],
        objective=setup.objective,
        stop_below_utility=False,
        parallelism=parallelism,
        executor=executor,
    )
    config.update(overrides)
    return setup, FREDAnonymizer(
        source=setup.corpus,
        attack_config=setup.attack_config,
        config=FREDConfig(**config),
    )


@pytest.fixture(scope="module")
def golden_result() -> FREDResult:
    setup, fred = _make_fred()
    return fred.run(setup.population.private)


class TestGoldenSweep:
    def test_chosen_optimal_level(self, golden_result):
        assert golden_result.optimal_level == GOLDEN_OPTIMAL_LEVEL

    def test_levels_swept_in_order(self, golden_result):
        assert tuple(o.level for o in golden_result.outcomes) == GOLDEN_LEVELS

    @pytest.mark.parametrize("level", GOLDEN_LEVELS)
    def test_per_level_measurements(self, golden_result, level):
        before, after, utility, score, feasible = GOLDEN[level]
        outcome = next(o for o in golden_result.outcomes if o.level == level)
        assert outcome.protection_before == pytest.approx(before, rel=REL)
        assert outcome.protection_after == pytest.approx(after, rel=REL)
        assert outcome.information_gain == pytest.approx(before - after, rel=REL)
        assert outcome.utility == pytest.approx(utility, rel=REL)
        assert golden_result.scores[level] == pytest.approx(score, rel=REL)
        assert outcome.feasible is feasible

    def test_derived_thresholds_are_stable(self):
        sweep = run_sweep(default_setup(count=40, seed=5, levels=GOLDEN_LEVELS))
        tp, tu = derive_thresholds(sweep)
        assert tp == pytest.approx(GOLDEN_THRESHOLDS[0], rel=REL)
        assert tu == pytest.approx(GOLDEN_THRESHOLDS[1], rel=REL)


class TestParallelSweepDeterminism:
    """The parallel dispatch must merge to exactly the serial outcomes."""

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_parallel_matches_serial_bitwise(self, golden_result, executor):
        setup, fred = _make_fred(parallelism=4, executor=executor)
        parallel = fred.run(setup.population.private)
        assert parallel.optimal_level == golden_result.optimal_level
        assert parallel.scores == golden_result.scores
        for serial_outcome, parallel_outcome in zip(
            golden_result.outcomes, parallel.outcomes, strict=True
        ):
            assert parallel_outcome.level == serial_outcome.level
            assert parallel_outcome.protection_before == serial_outcome.protection_before
            assert parallel_outcome.protection_after == serial_outcome.protection_after
            assert parallel_outcome.information_gain == serial_outcome.information_gain
            assert parallel_outcome.utility == serial_outcome.utility
            assert parallel_outcome.feasible is serial_outcome.feasible

    def test_parallel_honours_utility_stopping_rule(self):
        # Tu above level 6's utility: the serial do/until loop stops at k=6;
        # the parallel merge must truncate to the same prefix.
        tu = (GOLDEN[4][2] + GOLDEN[6][2]) / 2.0
        setup, serial_fred = _make_fred(
            utility_threshold=tu, stop_below_utility=True
        )
        serial = serial_fred.sweep(setup.population.private)
        setup, parallel_fred = _make_fred(
            parallelism=3, utility_threshold=tu, stop_below_utility=True
        )
        parallel = parallel_fred.sweep(setup.population.private)
        assert [o.level for o in serial] == [2, 3, 4, 6]
        assert [o.level for o in parallel] == [o.level for o in serial]
        assert [o.utility for o in parallel] == [o.utility for o in serial]

    def test_speculative_failure_past_stop_is_discarded(self):
        # Tu above every utility stops the serial loop at k=2, before the
        # infeasible k=50 (> 40 records) is ever attempted.  The parallel
        # sweep evaluates k=50 speculatively and must swallow its failure,
        # returning the same single-outcome prefix instead of raising.
        tu = GOLDEN[2][2] * 2.0
        setup, serial_fred = _make_fred(
            levels=GOLDEN_LEVELS + (50,), utility_threshold=tu, stop_below_utility=True
        )
        serial = serial_fred.sweep(setup.population.private)
        setup, parallel_fred = _make_fred(
            parallelism=4,
            levels=GOLDEN_LEVELS + (50,),
            utility_threshold=tu,
            stop_below_utility=True,
        )
        parallel = parallel_fred.sweep(setup.population.private)
        assert [o.level for o in serial] == [2]
        assert [o.level for o in parallel] == [2]
        assert parallel[0].utility == serial[0].utility

    def test_failure_before_stop_still_raises_in_parallel(self):
        setup, parallel_fred = _make_fred(parallelism=2, levels=(2, 50))
        with pytest.raises(InfeasibleAnonymizationError):
            parallel_fred.sweep(setup.population.private)

    def test_run_sweep_parallelism_reproduces_series(self):
        setup = default_setup(count=40, seed=5, levels=GOLDEN_LEVELS)
        serial = run_sweep(setup)
        parallel = run_sweep(setup, parallelism=4)
        assert parallel.as_dict() == serial.as_dict()
        assert parallel.levels == serial.levels


class TestParallelismConfigValidation:
    def test_rejects_nonpositive_parallelism(self):
        with pytest.raises(FREDConfigurationError):
            FREDConfig(parallelism=0)

    def test_rejects_unknown_executor(self):
        with pytest.raises(FREDConfigurationError):
            FREDConfig(executor="fork-bomb")
