"""Unit tests for fuzzy rules and the textual rule language."""

from __future__ import annotations

import pytest

from repro.exceptions import FuzzyDefinitionError, FuzzyEvaluationError
from repro.fuzzy.rules import Condition, FuzzyRule, parse_rule, parse_rules
from repro.fuzzy.variables import LinguisticVariable


@pytest.fixture()
def fuzzified():
    return {
        "valuation": {"low": 0.1, "medium": 0.3, "high": 0.9},
        "property": {"low": 0.7, "medium": 0.2, "high": 0.05},
    }


class TestCondition:
    def test_evaluate(self, fuzzified):
        assert Condition("valuation", "high").evaluate(fuzzified) == 0.9
        assert Condition("property", "low").evaluate(fuzzified) == 0.7

    def test_negation(self, fuzzified):
        assert Condition("valuation", "high", negated=True).evaluate(fuzzified) == pytest.approx(0.1)

    def test_unknown_variable_or_term(self, fuzzified):
        with pytest.raises(FuzzyEvaluationError):
            Condition("missing", "high").evaluate(fuzzified)
        with pytest.raises(FuzzyEvaluationError):
            Condition("valuation", "missing").evaluate(fuzzified)

    def test_str(self):
        assert str(Condition("x", "low")) == "x IS low"
        assert str(Condition("x", "low", negated=True)) == "x IS NOT low"


class TestFuzzyRule:
    def test_and_uses_min(self, fuzzified):
        rule = FuzzyRule(
            conditions=(Condition("valuation", "high"), Condition("property", "low")),
            consequent_term="medium",
            operator="and",
        )
        assert rule.firing_strength(fuzzified) == pytest.approx(0.7)

    def test_or_uses_max(self, fuzzified):
        rule = FuzzyRule(
            conditions=(Condition("valuation", "high"), Condition("property", "high")),
            consequent_term="high",
            operator="or",
        )
        assert rule.firing_strength(fuzzified) == pytest.approx(0.9)

    def test_weight_scales_strength(self, fuzzified):
        rule = FuzzyRule(
            conditions=(Condition("valuation", "high"),),
            consequent_term="high",
            weight=0.5,
        )
        assert rule.firing_strength(fuzzified) == pytest.approx(0.45)

    def test_validation(self):
        with pytest.raises(FuzzyDefinitionError):
            FuzzyRule(conditions=(), consequent_term="x")
        with pytest.raises(FuzzyDefinitionError):
            FuzzyRule(conditions=(Condition("a", "b"),), consequent_term="x", operator="xor")
        with pytest.raises(FuzzyDefinitionError):
            FuzzyRule(conditions=(Condition("a", "b"),), consequent_term="x", weight=0.0)

    def test_variables_and_str(self):
        rule = FuzzyRule(
            conditions=(Condition("a", "low"), Condition("b", "high")),
            consequent_term="medium",
        )
        assert rule.variables() == {"a", "b"}
        assert "IF a IS low AND b IS high THEN medium" == str(rule)

    def test_validate_against(self):
        inputs = {"x": LinguisticVariable.with_uniform_terms("x", (0, 1), ("low", "high"))}
        output = LinguisticVariable.with_uniform_terms("y", (0, 1), ("low", "high"))
        good = FuzzyRule(conditions=(Condition("x", "low"),), consequent_term="high")
        good.validate_against(inputs, output)
        bad_variable = FuzzyRule(conditions=(Condition("z", "low"),), consequent_term="high")
        with pytest.raises(FuzzyDefinitionError):
            bad_variable.validate_against(inputs, output)
        bad_term = FuzzyRule(conditions=(Condition("x", "tiny"),), consequent_term="high")
        with pytest.raises(FuzzyDefinitionError):
            bad_term.validate_against(inputs, output)


class TestParser:
    def test_single_condition(self):
        rule = parse_rule("IF valuation IS high THEN income IS high")
        assert rule.conditions == (Condition("valuation", "high"),)
        assert rule.consequent_term == "high"
        assert rule.operator == "and"
        assert rule.weight == 1.0

    def test_and_rule(self):
        rule = parse_rule(
            "IF valuation IS high AND property_holdings IS high THEN income IS high"
        )
        assert len(rule.conditions) == 2
        assert rule.operator == "and"

    def test_or_rule(self):
        rule = parse_rule("IF a IS low OR b IS low THEN income IS low")
        assert rule.operator == "or"

    def test_negated_condition(self):
        rule = parse_rule("IF a IS NOT low THEN income IS medium")
        assert rule.conditions[0].negated

    def test_weight_clause(self):
        rule = parse_rule("IF a IS low THEN income IS low WITH 0.4")
        assert rule.weight == pytest.approx(0.4)

    def test_case_insensitive(self):
        rule = parse_rule("if a is LOW then income is high")
        assert rule.conditions[0].term == "LOW"
        assert rule.consequent_term == "high"

    def test_mixed_and_or_rejected(self):
        with pytest.raises(FuzzyDefinitionError):
            parse_rule("IF a IS low AND b IS low OR c IS low THEN y IS low")

    def test_malformed_rejected(self):
        with pytest.raises(FuzzyDefinitionError):
            parse_rule("valuation high means income high")
        with pytest.raises(FuzzyDefinitionError):
            parse_rule("IF THEN income IS high")

    def test_output_variable_check(self):
        with pytest.raises(FuzzyDefinitionError):
            parse_rule("IF a IS low THEN wrong IS high", output_variable="income")
        rule = parse_rule("IF a IS low THEN income IS high", output_variable="income")
        assert rule.consequent_term == "high"

    def test_parse_rules_skips_comments_and_blanks(self):
        rules = parse_rules(
            [
                "# domain knowledge",
                "",
                "IF a IS low THEN income IS low",
                "IF a IS high THEN income IS high",
            ]
        )
        assert len(rules) == 2
